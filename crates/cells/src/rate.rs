//! Link rates and cell-slot timing.
//!
//! AN2 links run at 622 Mb/s, with 155 Mb/s links "also provided, e.g. for
//! connecting a host to a switch" (§1); the paper's guaranteed-latency
//! arithmetic in §4 uses 1 Gb/s links ("With 1 gigabit-per-second links, it
//! takes less than half a millisecond to transmit a frame").

use crate::cell::CELL_BYTES;
use an2_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The link speeds of the AN2 design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkRate {
    /// 155.52 Mb/s (OC-3): host attachment links.
    Mbps155,
    /// 622.08 Mb/s (OC-12): the standard AN2 inter-switch link.
    Mbps622,
    /// 1 Gb/s: the rate the paper's §4 latency arithmetic assumes.
    Gbps1,
}

impl LinkRate {
    /// Bits per second.
    pub fn bits_per_sec(self) -> u64 {
        match self {
            LinkRate::Mbps155 => 155_520_000,
            LinkRate::Mbps622 => 622_080_000,
            LinkRate::Gbps1 => 1_000_000_000,
        }
    }

    /// Time to transmit one 53-byte cell at this rate — the switch's slot
    /// time. At 622 Mb/s this is ~681 ns, consistent with §3's "half
    /// microsecond required to transmit a cell" order of magnitude.
    pub fn slot_duration(self) -> SimDuration {
        let bits = (CELL_BYTES * 8) as u64;
        SimDuration::from_nanos(bits * 1_000_000_000 / self.bits_per_sec())
    }

    /// Time to transmit one 1024-slot frame at this rate (§4).
    pub fn frame_duration(self, slots_per_frame: u32) -> SimDuration {
        self.slot_duration() * slots_per_frame as u64
    }

    /// Cells per second at full utilisation.
    pub fn cells_per_sec(self) -> u64 {
        self.bits_per_sec() / (CELL_BYTES as u64 * 8)
    }
}

impl fmt::Display for LinkRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkRate::Mbps155 => write!(f, "155Mb/s"),
            LinkRate::Mbps622 => write!(f, "622Mb/s"),
            LinkRate::Gbps1 => write!(f, "1Gb/s"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_durations_match_paper_orders() {
        // 424 bits / 622.08 Mb/s = 681.6 ns
        assert_eq!(LinkRate::Mbps622.slot_duration().as_nanos(), 681);
        // 424 bits / 155.52 Mb/s = 2726 ns
        assert_eq!(LinkRate::Mbps155.slot_duration().as_nanos(), 2726);
        // 424 bits / 1 Gb/s = 424 ns
        assert_eq!(LinkRate::Gbps1.slot_duration().as_nanos(), 424);
    }

    #[test]
    fn gigabit_frame_under_half_millisecond() {
        // The paper: "With 1 gigabit-per-second links, it takes less than
        // half a millisecond to transmit a frame" (1024 slots).
        let frame = LinkRate::Gbps1.frame_duration(1024);
        assert!(frame < SimDuration::from_micros(500), "frame = {frame}");
    }

    #[test]
    fn cells_per_second() {
        assert_eq!(LinkRate::Gbps1.cells_per_sec(), 2_358_490);
        assert!(LinkRate::Mbps622.cells_per_sec() > 1_400_000);
    }

    #[test]
    fn display() {
        assert_eq!(LinkRate::Mbps622.to_string(), "622Mb/s");
    }
}
