//! AAL5-style segmentation and reassembly.
//!
//! "It is more convenient for host software to deal with larger data units
//! [...] In AN2 a host presents packets to its controller, which disassembles
//! them into cells to transmit to the network. The controller at the
//! receiving host will re-assemble the cells into packets." (paper, §1)
//!
//! The framing follows AAL5: the payload is padded so that payload + an
//! 8-byte trailer fill a whole number of cells; the trailer carries the true
//! length and a CRC-32 over the padded payload; the last cell of a packet is
//! marked in the cell header's payload-type field.

use crate::cell::{Cell, CellKind, VcId, PAYLOAD_BYTES};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

const TRAILER_BYTES: usize = 8;

/// A variable-length host packet, as presented to an AN2 controller.
///
/// ```
/// use an2_cells::Packet;
/// let p = Packet::from_bytes(vec![1, 2, 3]);
/// assert_eq!(p.len(), 3);
/// assert_eq!(p.cell_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Packet {
    data: Bytes,
}

impl Packet {
    /// Maximum packet size accepted by a controller (64 KiB — a generous
    /// bound for the ethernet-replacement service AN1/AN2 provide).
    pub const MAX_BYTES: usize = 65_536;

    /// Wraps raw bytes as a packet.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`Packet::MAX_BYTES`].
    pub fn from_bytes(data: impl Into<Bytes>) -> Self {
        let data = data.into();
        assert!(data.len() <= Self::MAX_BYTES, "packet exceeds maximum size");
        Packet { data }
    }

    /// The packet's bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Packet length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` for a zero-length packet (legal; still occupies one cell for
    /// its trailer).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of cells this packet occupies on the wire.
    pub fn cell_count(&self) -> usize {
        (self.len() + TRAILER_BYTES).div_ceil(PAYLOAD_BYTES)
    }
}

impl From<Vec<u8>> for Packet {
    fn from(v: Vec<u8>) -> Self {
        Packet::from_bytes(v)
    }
}

/// Byte-at-a-time CRC-32 table for the IEEE 802.3 polynomial (reflected),
/// built at compile time from the same bit-by-bit recurrence the earlier
/// implementation ran per input bit.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3 polynomial, reflected), one table lookup per byte.
/// Line-card hardware would use a parallel circuit; segmentation and
/// reassembly both checksum every packet body, so the simulator uses the
/// classic table form rather than the 8-iterations-per-byte bit loop.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Segments packets into cells for one virtual circuit — the transmit half of
/// an AN2 host controller.
///
/// ```
/// use an2_cells::{Packet, Segmenter, Reassembler, VcId};
/// let vc = VcId::new(9);
/// let cells = Segmenter::new(vc).segment(&Packet::from_bytes(vec![0xAB; 100]));
/// assert_eq!(cells.len(), 3); // 100 B + 8 B trailer => 3 cells
/// let mut r = Reassembler::new();
/// let mut out = None;
/// for c in cells {
///     out = r.push(&c).unwrap();
/// }
/// assert_eq!(out.unwrap().1.len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct Segmenter {
    vc: VcId,
}

impl Segmenter {
    /// A segmenter emitting cells on virtual circuit `vc`.
    pub fn new(vc: VcId) -> Self {
        Segmenter { vc }
    }

    /// The circuit this segmenter emits on.
    pub fn vc(&self) -> VcId {
        self.vc
    }

    /// Converts one packet into its cell sequence. The last cell has
    /// [`CellKind::DataEnd`] and contains the AAL5 trailer in its final
    /// 8 bytes.
    pub fn segment(&self, packet: &Packet) -> Vec<Cell> {
        let body = packet.as_bytes();
        let n_cells = packet.cell_count();
        let padded = n_cells * PAYLOAD_BYTES;
        let mut buf = vec![0u8; padded];
        buf[..body.len()].copy_from_slice(body);
        // Trailer: [len u32 | crc32 u32] over everything before the trailer.
        let crc = crc32(&buf[..padded - TRAILER_BYTES]);
        buf[padded - 8..padded - 4].copy_from_slice(&(body.len() as u32).to_be_bytes());
        buf[padded - 4..].copy_from_slice(&crc.to_be_bytes());

        buf.chunks_exact(PAYLOAD_BYTES)
            .enumerate()
            .map(|(i, chunk)| {
                let mut payload = [0u8; PAYLOAD_BYTES];
                payload.copy_from_slice(chunk);
                let kind = if i == n_cells - 1 {
                    CellKind::DataEnd
                } else {
                    CellKind::Data
                };
                Cell::new(self.vc, kind, payload)
            })
            .collect()
    }
}

/// Why reassembly of a packet failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReassemblyError {
    /// The CRC-32 in the trailer did not match the received payload.
    BadChecksum {
        /// CRC carried in the trailer.
        expected: u32,
        /// CRC computed over the received cells.
        computed: u32,
    },
    /// The length field in the trailer is impossible for the number of cells
    /// received (corrupt trailer, or a lost cell shortened the packet).
    BadLength {
        /// Length claimed by the trailer.
        claimed: usize,
        /// Bytes actually received (before the trailer).
        available: usize,
    },
    /// A non-data cell arrived on a data circuit.
    UnexpectedKind,
}

impl fmt::Display for ReassemblyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReassemblyError::BadChecksum { expected, computed } => write!(
                f,
                "packet checksum mismatch (trailer {expected:#010x}, computed {computed:#010x})"
            ),
            ReassemblyError::BadLength { claimed, available } => write!(
                f,
                "packet trailer claims {claimed} bytes but only {available} arrived"
            ),
            ReassemblyError::UnexpectedKind => write!(f, "non-data cell on a data circuit"),
        }
    }
}

impl std::error::Error for ReassemblyError {}

/// Reassembles cell streams back into packets — the receive half of an AN2
/// host controller. One reassembler handles many virtual circuits, keeping
/// per-VC partial packets, because a controller terminates all of its host's
/// circuits.
#[derive(Debug, Clone, Default)]
pub struct Reassembler {
    /// Per-VC partial packet bodies. A controller terminates a handful of
    /// circuits at a time, so a linear scan over a small vector beats
    /// hashing the id on every arriving cell.
    partial: Vec<(VcId, Vec<u8>)>,
}

impl Reassembler {
    /// An empty reassembler.
    pub fn new() -> Self {
        Reassembler::default()
    }

    /// Accepts the next cell of a circuit. Returns `Ok(Some((vc, packet)))`
    /// when this cell completed a packet.
    ///
    /// # Errors
    ///
    /// Returns a [`ReassemblyError`] if the completed packet fails its CRC or
    /// length check (the partial state for that circuit is discarded, as AAL5
    /// discards corrupt frames), or if the cell is not a data cell.
    pub fn push(&mut self, cell: &Cell) -> Result<Option<(VcId, Packet)>, ReassemblyError> {
        match cell.header.kind {
            CellKind::Data => {
                let buf = match self.partial.iter().position(|(v, _)| *v == cell.vc()) {
                    Some(i) => &mut self.partial[i].1,
                    None => {
                        self.partial.push((cell.vc(), Vec::new()));
                        &mut self.partial.last_mut().expect("just pushed").1
                    }
                };
                buf.extend_from_slice(&cell.payload);
                Ok(None)
            }
            CellKind::DataEnd => {
                let mut buf = match self.partial.iter().position(|(v, _)| *v == cell.vc()) {
                    Some(i) => self.partial.swap_remove(i).1,
                    None => Vec::new(),
                };
                buf.extend_from_slice(&cell.payload);
                let total = buf.len();
                debug_assert_eq!(total % PAYLOAD_BYTES, 0);
                let claimed =
                    u32::from_be_bytes(buf[total - 8..total - 4].try_into().unwrap()) as usize;
                let expected = u32::from_be_bytes(buf[total - 4..].try_into().unwrap());
                let computed = crc32(&buf[..total - TRAILER_BYTES]);
                if computed != expected {
                    return Err(ReassemblyError::BadChecksum { expected, computed });
                }
                if claimed > total - TRAILER_BYTES {
                    return Err(ReassemblyError::BadLength {
                        claimed,
                        available: total - TRAILER_BYTES,
                    });
                }
                buf.truncate(claimed);
                Ok(Some((cell.vc(), Packet::from_bytes(buf))))
            }
            _ => Err(ReassemblyError::UnexpectedKind),
        }
    }

    /// Circuits with partially reassembled packets.
    pub fn partial_circuits(&self) -> usize {
        self.partial.len()
    }

    /// Drops any partial packet state for `vc` (used when a circuit is torn
    /// down or rerouted and in-flight cells were lost).
    pub fn reset_circuit(&mut self, vc: VcId) {
        if let Some(i) = self.partial.iter().position(|(v, _)| *v == vc) {
            self.partial.swap_remove(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(len: usize) {
        let data: Vec<u8> = (0..len).map(|i| (i * 7 + 13) as u8).collect();
        let packet = Packet::from_bytes(data.clone());
        let cells = Segmenter::new(VcId::new(3)).segment(&packet);
        assert_eq!(cells.len(), packet.cell_count());
        let mut r = Reassembler::new();
        let mut done = None;
        for (i, c) in cells.iter().enumerate() {
            let out = r.push(c).unwrap();
            if i + 1 < cells.len() {
                assert!(out.is_none());
            } else {
                done = out;
            }
        }
        let (vc, got) = done.expect("last cell completes the packet");
        assert_eq!(vc, VcId::new(3));
        assert_eq!(got.as_bytes(), &data[..]);
        assert_eq!(r.partial_circuits(), 0);
    }

    #[test]
    fn round_trip_various_sizes() {
        for len in [0, 1, 39, 40, 41, 47, 48, 49, 95, 96, 97, 1500, 4096] {
            round_trip(len);
        }
    }

    #[test]
    fn cell_count_matches_aal5() {
        // 40 bytes + 8 trailer = exactly one cell.
        assert_eq!(Packet::from_bytes(vec![0; 40]).cell_count(), 1);
        // 41 bytes spills into two.
        assert_eq!(Packet::from_bytes(vec![0; 41]).cell_count(), 2);
        assert_eq!(Packet::from_bytes(vec![]).cell_count(), 1);
        assert_eq!(Packet::from_bytes(vec![0; 1500]).cell_count(), 32);
    }

    #[test]
    fn interleaved_circuits_reassemble_independently() {
        let pa = Packet::from_bytes(vec![0xAA; 100]);
        let pb = Packet::from_bytes(vec![0xBB; 100]);
        let ca = Segmenter::new(VcId::new(1)).segment(&pa);
        let cb = Segmenter::new(VcId::new(2)).segment(&pb);
        let mut r = Reassembler::new();
        let mut finished = Vec::new();
        // Interleave a/b cell by cell, as a switch output port would.
        for (x, y) in ca.iter().zip(cb.iter()) {
            if let Some(done) = r.push(x).unwrap() {
                finished.push(done);
            }
            if let Some(done) = r.push(y).unwrap() {
                finished.push(done);
            }
        }
        assert_eq!(finished.len(), 2);
        assert_eq!(finished[0], (VcId::new(1), pa));
        assert_eq!(finished[1], (VcId::new(2), pb));
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let packet = Packet::from_bytes(vec![7; 200]);
        let mut cells = Segmenter::new(VcId::new(4)).segment(&packet);
        cells[1].payload[10] ^= 0xFF;
        let mut r = Reassembler::new();
        let mut result = Ok(None);
        for c in &cells {
            result = r.push(c);
        }
        assert!(matches!(result, Err(ReassemblyError::BadChecksum { .. })));
        // State for the circuit was discarded.
        assert_eq!(r.partial_circuits(), 0);
    }

    #[test]
    fn lost_cell_detected() {
        let packet = Packet::from_bytes(vec![9; 200]);
        let cells = Segmenter::new(VcId::new(5)).segment(&packet);
        let mut r = Reassembler::new();
        let mut result = Ok(None);
        for (i, c) in cells.iter().enumerate() {
            if i == 2 {
                continue; // drop one middle cell
            }
            result = r.push(c);
        }
        // Either the length or the CRC exposes the loss.
        assert!(result.is_err());
    }

    #[test]
    fn management_cell_rejected() {
        let mut r = Reassembler::new();
        let cell = Cell::new(VcId::new(1), CellKind::Management, [0; PAYLOAD_BYTES]);
        assert_eq!(r.push(&cell), Err(ReassemblyError::UnexpectedKind));
    }

    #[test]
    fn reset_circuit_discards_partial() {
        let packet = Packet::from_bytes(vec![1; 200]);
        let cells = Segmenter::new(VcId::new(6)).segment(&packet);
        let mut r = Reassembler::new();
        r.push(&cells[0]).unwrap();
        assert_eq!(r.partial_circuits(), 1);
        r.reset_circuit(VcId::new(6));
        assert_eq!(r.partial_circuits(), 0);
    }

    #[test]
    fn crc32_known_vector() {
        // Standard check value for "123456789" with CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    #[should_panic(expected = "maximum size")]
    fn oversized_packet_panics() {
        Packet::from_bytes(vec![0; Packet::MAX_BYTES + 1]);
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = ReassemblyError::BadLength {
            claimed: 100,
            available: 40,
        };
        assert!(e.to_string().contains("100"));
        let e = ReassemblyError::UnexpectedKind;
        assert!(!e.to_string().is_empty());
    }
}
