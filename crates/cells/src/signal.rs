//! Signaling-cell payloads.
//!
//! "When a new virtual circuit is to be created, a cell containing the ids of
//! the source and destination hosts is sent along a separate signaling
//! circuit. When this cell arrives at a switch, it is passed to the processor
//! on the line card where it arrived." (§2)
//!
//! This module defines the payload encoding of those cells: circuit setup for
//! best-effort traffic, setup/confirm/deny for guaranteed traffic (carrying
//! the cells-per-frame reservation, §4), teardown, and the page-out
//! notification of §2's resource-reclamation extension. Encodings are
//! fixed-layout big-endian so that a decoded value always round-trips.

use crate::cell::{Cell, CellKind, VcId, PAYLOAD_BYTES};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The service class of a virtual circuit (§1: guaranteed / best-effort).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Variable Bit Rate: no setup reservation, no service guarantee.
    BestEffort,
    /// Continuous Bit Rate: reserved bandwidth in cells per 1024-slot frame.
    Guaranteed {
        /// Reserved bandwidth, in cells per frame.
        cells_per_frame: u16,
    },
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficClass::BestEffort => write!(f, "best-effort"),
            TrafficClass::Guaranteed { cells_per_frame } => {
                write!(f, "guaranteed({cells_per_frame} cells/frame)")
            }
        }
    }
}

/// A decoded signaling message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignalMsg {
    /// Establish a circuit along the path this cell travels. Line cards that
    /// forward this cell install a routing-table entry for `circuit`.
    Setup {
        /// The circuit being established.
        circuit: VcId,
        /// Source host id.
        src_host: u32,
        /// Destination host id.
        dst_host: u32,
        /// Service class (and reservation, if guaranteed).
        class: TrafficClass,
    },
    /// Positive acknowledgment, returned to the source host.
    Confirm {
        /// The circuit that was established.
        circuit: VcId,
    },
    /// Negative acknowledgment: admission control denied the reservation.
    Deny {
        /// The circuit that was refused.
        circuit: VcId,
        /// Reason code (0 = no route, 1 = insufficient bandwidth).
        reason: u8,
    },
    /// Tear the circuit down and release its buffers and table entries.
    Teardown {
        /// The circuit being destroyed.
        circuit: VcId,
    },
    /// §2 extension: the upstream switch paged this idle circuit out;
    /// downstream may release its resources too.
    PageOut {
        /// The idle circuit being reclaimed.
        circuit: VcId,
    },
}

/// Error when decoding a signaling payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The unrecognised tag byte.
    pub tag: u8,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown signaling message tag {:#04x}", self.tag)
    }
}

impl std::error::Error for DecodeError {}

const TAG_SETUP: u8 = 1;
const TAG_CONFIRM: u8 = 2;
const TAG_DENY: u8 = 3;
const TAG_TEARDOWN: u8 = 4;
const TAG_PAGEOUT: u8 = 5;

impl SignalMsg {
    /// The circuit this message refers to.
    pub fn circuit(&self) -> VcId {
        match *self {
            SignalMsg::Setup { circuit, .. }
            | SignalMsg::Confirm { circuit }
            | SignalMsg::Deny { circuit, .. }
            | SignalMsg::Teardown { circuit }
            | SignalMsg::PageOut { circuit } => circuit,
        }
    }

    /// Encodes into a 48-byte cell payload.
    pub fn encode(&self) -> [u8; PAYLOAD_BYTES] {
        let mut p = [0u8; PAYLOAD_BYTES];
        match *self {
            SignalMsg::Setup {
                circuit,
                src_host,
                dst_host,
                class,
            } => {
                p[0] = TAG_SETUP;
                p[1..5].copy_from_slice(&circuit.raw().to_be_bytes());
                p[5..9].copy_from_slice(&src_host.to_be_bytes());
                p[9..13].copy_from_slice(&dst_host.to_be_bytes());
                match class {
                    TrafficClass::BestEffort => p[13] = 0,
                    TrafficClass::Guaranteed { cells_per_frame } => {
                        p[13] = 1;
                        p[14..16].copy_from_slice(&cells_per_frame.to_be_bytes());
                    }
                }
            }
            SignalMsg::Confirm { circuit } => {
                p[0] = TAG_CONFIRM;
                p[1..5].copy_from_slice(&circuit.raw().to_be_bytes());
            }
            SignalMsg::Deny { circuit, reason } => {
                p[0] = TAG_DENY;
                p[1..5].copy_from_slice(&circuit.raw().to_be_bytes());
                p[5] = reason;
            }
            SignalMsg::Teardown { circuit } => {
                p[0] = TAG_TEARDOWN;
                p[1..5].copy_from_slice(&circuit.raw().to_be_bytes());
            }
            SignalMsg::PageOut { circuit } => {
                p[0] = TAG_PAGEOUT;
                p[1..5].copy_from_slice(&circuit.raw().to_be_bytes());
            }
        }
        p
    }

    /// Decodes from a 48-byte cell payload.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on an unknown tag byte.
    pub fn decode(payload: &[u8; PAYLOAD_BYTES]) -> Result<Self, DecodeError> {
        let circuit = VcId::new(u32::from_be_bytes(payload[1..5].try_into().unwrap()) & VcId::MAX);
        match payload[0] {
            TAG_SETUP => {
                let src_host = u32::from_be_bytes(payload[5..9].try_into().unwrap());
                let dst_host = u32::from_be_bytes(payload[9..13].try_into().unwrap());
                let class = if payload[13] == 0 {
                    TrafficClass::BestEffort
                } else {
                    TrafficClass::Guaranteed {
                        cells_per_frame: u16::from_be_bytes(payload[14..16].try_into().unwrap()),
                    }
                };
                Ok(SignalMsg::Setup {
                    circuit,
                    src_host,
                    dst_host,
                    class,
                })
            }
            TAG_CONFIRM => Ok(SignalMsg::Confirm { circuit }),
            TAG_DENY => Ok(SignalMsg::Deny {
                circuit,
                reason: payload[5],
            }),
            TAG_TEARDOWN => Ok(SignalMsg::Teardown { circuit }),
            TAG_PAGEOUT => Ok(SignalMsg::PageOut { circuit }),
            tag => Err(DecodeError { tag }),
        }
    }

    /// Wraps this message into a signaling cell on the given signaling
    /// circuit.
    ///
    /// ```
    /// use an2_cells::signal::{SignalMsg, TrafficClass, SIGNALING_VC};
    /// use an2_cells::VcId;
    /// let msg = SignalMsg::Setup {
    ///     circuit: VcId::new(0x99),
    ///     src_host: 1,
    ///     dst_host: 2,
    ///     class: TrafficClass::BestEffort,
    /// };
    /// let cell = msg.to_cell(SIGNALING_VC);
    /// assert_eq!(SignalMsg::from_cell(&cell), Some(msg));
    /// ```
    pub fn to_cell(&self, signaling_vc: VcId) -> Cell {
        Cell::new(signaling_vc, CellKind::Signal, self.encode())
    }

    /// Extracts a signaling message from a cell; `None` if the cell is not a
    /// signaling cell or fails to decode.
    pub fn from_cell(cell: &Cell) -> Option<Self> {
        if cell.header.kind != CellKind::Signal {
            return None;
        }
        SignalMsg::decode(&cell.payload).ok()
    }
}

/// The well-known signaling circuit id (VC 5, as in ATM UNI signaling).
pub const SIGNALING_VC: VcId = VcId::well_known(5);

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<SignalMsg> {
        vec![
            SignalMsg::Setup {
                circuit: VcId::new(0x12_3456),
                src_host: 42,
                dst_host: 97,
                class: TrafficClass::BestEffort,
            },
            SignalMsg::Setup {
                circuit: VcId::new(0x01),
                src_host: 0,
                dst_host: u32::MAX,
                class: TrafficClass::Guaranteed {
                    cells_per_frame: 1024,
                },
            },
            SignalMsg::Confirm {
                circuit: VcId::new(7),
            },
            SignalMsg::Deny {
                circuit: VcId::new(8),
                reason: 1,
            },
            SignalMsg::Teardown {
                circuit: VcId::new(9),
            },
            SignalMsg::PageOut {
                circuit: VcId::new(10),
            },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for msg in all_messages() {
            let decoded = SignalMsg::decode(&msg.encode()).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn cell_round_trip() {
        for msg in all_messages() {
            let cell = msg.to_cell(SIGNALING_VC);
            assert_eq!(cell.vc(), SIGNALING_VC);
            assert_eq!(SignalMsg::from_cell(&cell), Some(msg));
        }
    }

    #[test]
    fn circuit_accessor() {
        for msg in all_messages() {
            let _ = msg.circuit(); // every variant exposes a circuit
        }
        assert_eq!(
            SignalMsg::Confirm {
                circuit: VcId::new(7)
            }
            .circuit(),
            VcId::new(7)
        );
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut p = [0u8; PAYLOAD_BYTES];
        p[0] = 0xEE;
        let err = SignalMsg::decode(&p).unwrap_err();
        assert_eq!(err.tag, 0xEE);
        assert!(err.to_string().contains("0xee"));
    }

    #[test]
    fn data_cell_is_not_signal() {
        let cell = Cell::blank(VcId::new(1));
        assert_eq!(SignalMsg::from_cell(&cell), None);
    }

    #[test]
    fn traffic_class_display() {
        assert_eq!(TrafficClass::BestEffort.to_string(), "best-effort");
        assert_eq!(
            TrafficClass::Guaranteed {
                cells_per_frame: 12
            }
            .to_string(),
            "guaranteed(12 cells/frame)"
        );
    }

    #[test]
    fn well_known_const() {
        assert_eq!(SIGNALING_VC.raw(), 5);
        const OTHER: VcId = VcId::well_known(31);
        assert_eq!(OTHER.raw(), 31);
    }
}
