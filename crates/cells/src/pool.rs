//! A slab-backed pool of [`Cell`]s with intrusive FIFO queues.
//!
//! The switch and fabric data planes keep tens of queues per port (one per
//! virtual circuit). Backing each with its own `VecDeque<Cell>` means every
//! queue owns a separate allocation and every enqueue may reallocate. The
//! pool flips that around: **one** growable arena of nodes shared by all
//! queues, with a free list, so that in steady state cells move between
//! queues by relinking `u32` indices — zero allocator traffic per slot.
//!
//! A [`CellQueue`] is a 12-byte handle (`head`, `tail`, `len`); all
//! operations go through the pool that owns the storage. Each node carries
//! the cell plus two scalars the data plane needs alongside it:
//!
//! * `stamp` — the slot at which the cell entered the queue (the switch's
//!   `enqueued_slot`, used for cut-through latency accounting and the
//!   oldest-cell tie-break in the guaranteed scheduler);
//! * `aux` — a small tag (the switch uses it for the arrival input port of
//!   cells parked before their route is installed).
//!
//! Queues from the same pool must not share nodes; the pool does not check
//! this (it would need per-node owner tags), but every use in the tree
//! moves nodes with `pop_front`/`push_back`, which preserves the invariant.

use crate::Cell;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    cell: Cell,
    stamp: u64,
    aux: u32,
    next: u32,
}

/// A FIFO queue handle into a [`CellPool`]. Cheap to create and move; all
/// storage lives in the pool.
#[derive(Debug, Clone)]
pub struct CellQueue {
    head: u32,
    tail: u32,
    len: u32,
    /// Stamp of the head node, mirrored here so schedulers polling queue
    /// heads every slot (the switch's demand scan and oldest-cell search)
    /// read one struct instead of chasing into the arena. Meaningless when
    /// the queue is empty.
    front_stamp: u64,
}

impl Default for CellQueue {
    fn default() -> Self {
        CellQueue::new()
    }
}

impl CellQueue {
    /// An empty queue.
    pub fn new() -> Self {
        CellQueue {
            head: NIL,
            tail: NIL,
            len: 0,
            front_stamp: 0,
        }
    }

    /// Number of cells queued.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when no cells are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The stamp of the head cell without touching the pool. Returns the
    /// last head's stamp (or zero) on an empty queue — callers gate on
    /// [`CellQueue::is_empty`] first.
    pub fn front_stamp(&self) -> u64 {
        self.front_stamp
    }
}

/// A growable arena of cell nodes shared by many [`CellQueue`]s.
///
/// ```
/// use an2_cells::{Cell, CellPool, CellQueue, VcId};
/// let mut pool = CellPool::new();
/// let mut q = CellQueue::new();
/// pool.push_back(&mut q, Cell::blank(VcId::new(1)), 7, 0);
/// pool.push_back(&mut q, Cell::blank(VcId::new(2)), 8, 0);
/// let (cell, stamp, _aux) = pool.pop_front(&mut q).unwrap();
/// assert_eq!(cell.vc(), VcId::new(1));
/// assert_eq!(stamp, 7);
/// assert_eq!(q.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CellPool {
    nodes: Vec<Node>,
    free: u32,
    live: u32,
}

impl CellPool {
    /// An empty pool.
    pub fn new() -> Self {
        CellPool {
            nodes: Vec::new(),
            free: NIL,
            live: 0,
        }
    }

    /// A pool with room for `cells` nodes before the arena regrows.
    pub fn with_capacity(cells: usize) -> Self {
        let mut pool = CellPool {
            nodes: Vec::with_capacity(cells),
            free: NIL,
            live: 0,
        };
        for _ in 0..cells {
            let idx = pool.nodes.len() as u32;
            pool.nodes.push(Node {
                cell: Cell::blank(crate::VcId::new(0)),
                stamp: 0,
                aux: 0,
                next: pool.free,
            });
            pool.free = idx;
        }
        pool
    }

    /// Cells currently enqueued across all queues of this pool.
    pub fn live(&self) -> usize {
        self.live as usize
    }

    /// Total nodes in the arena (live + free).
    pub fn capacity(&self) -> usize {
        self.nodes.len()
    }

    fn alloc(&mut self, cell: Cell, stamp: u64, aux: u32) -> u32 {
        self.live += 1;
        if self.free != NIL {
            let idx = self.free;
            let node = &mut self.nodes[idx as usize];
            self.free = node.next;
            node.cell = cell;
            node.stamp = stamp;
            node.aux = aux;
            node.next = NIL;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx != NIL, "cell pool exhausted the u32 index space");
            self.nodes.push(Node {
                cell,
                stamp,
                aux,
                next: NIL,
            });
            idx
        }
    }

    fn release(&mut self, idx: u32) {
        self.nodes[idx as usize].next = self.free;
        self.free = idx;
        self.live -= 1;
    }

    /// Appends a cell to the tail of `q`.
    pub fn push_back(&mut self, q: &mut CellQueue, cell: Cell, stamp: u64, aux: u32) {
        let idx = self.alloc(cell, stamp, aux);
        if q.tail == NIL {
            q.head = idx;
            q.front_stamp = stamp;
        } else {
            self.nodes[q.tail as usize].next = idx;
        }
        q.tail = idx;
        q.len += 1;
    }

    /// Removes and returns the head of `q` as `(cell, stamp, aux)`.
    pub fn pop_front(&mut self, q: &mut CellQueue) -> Option<(Cell, u64, u32)> {
        if q.head == NIL {
            return None;
        }
        let idx = q.head;
        let node = &self.nodes[idx as usize];
        let out = (node.cell, node.stamp, node.aux);
        q.head = node.next;
        if q.head == NIL {
            q.tail = NIL;
        } else {
            q.front_stamp = self.nodes[q.head as usize].stamp;
        }
        q.len -= 1;
        self.release(idx);
        Some(out)
    }

    /// The head of `q` without removing it, as `(cell, stamp, aux)`.
    pub fn front<'a>(&'a self, q: &CellQueue) -> Option<(&'a Cell, u64, u32)> {
        if q.head == NIL {
            return None;
        }
        let node = &self.nodes[q.head as usize];
        Some((&node.cell, node.stamp, node.aux))
    }

    /// Iterates `q` head-to-tail as `(cell, stamp, aux)`.
    pub fn iter<'a>(&'a self, q: &CellQueue) -> CellQueueIter<'a> {
        CellQueueIter {
            pool: self,
            cursor: q.head,
        }
    }

    /// Drops every cell in `q`, returning how many were freed.
    pub fn clear(&mut self, q: &mut CellQueue) -> usize {
        let dropped = q.len as usize;
        let mut cursor = q.head;
        while cursor != NIL {
            let next = self.nodes[cursor as usize].next;
            self.release(cursor);
            cursor = next;
        }
        q.head = NIL;
        q.tail = NIL;
        q.len = 0;
        dropped
    }
}

/// Iterator over a [`CellQueue`]; see [`CellPool::iter`].
pub struct CellQueueIter<'a> {
    pool: &'a CellPool,
    cursor: u32,
}

impl<'a> Iterator for CellQueueIter<'a> {
    type Item = (&'a Cell, u64, u32);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let node = &self.pool.nodes[self.cursor as usize];
        self.cursor = node.next;
        Some((&node.cell, node.stamp, node.aux))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VcId;

    fn cell(n: u32) -> Cell {
        Cell::blank(VcId::new(n))
    }

    #[test]
    fn fifo_order_and_len() {
        let mut pool = CellPool::new();
        let mut q = CellQueue::new();
        for i in 0..5 {
            pool.push_back(&mut q, cell(i), i as u64, i);
        }
        assert_eq!(q.len(), 5);
        assert_eq!(pool.live(), 5);
        for i in 0..5 {
            let (c, stamp, aux) = pool.pop_front(&mut q).unwrap();
            assert_eq!(c.vc().raw(), i);
            assert_eq!(stamp, i as u64);
            assert_eq!(aux, i);
        }
        assert!(q.is_empty());
        assert!(pool.pop_front(&mut q).is_none());
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn nodes_are_reused_not_grown() {
        let mut pool = CellPool::new();
        let mut q = CellQueue::new();
        for i in 0..8 {
            pool.push_back(&mut q, cell(i), 0, 0);
        }
        let arena = pool.capacity();
        for round in 0..100u32 {
            pool.pop_front(&mut q).unwrap();
            pool.push_back(&mut q, cell(round), 0, 0);
        }
        assert_eq!(pool.capacity(), arena, "steady state must not allocate");
    }

    #[test]
    fn independent_queues_share_one_arena() {
        let mut pool = CellPool::new();
        let mut a = CellQueue::new();
        let mut b = CellQueue::new();
        pool.push_back(&mut a, cell(1), 0, 0);
        pool.push_back(&mut b, cell(2), 0, 0);
        pool.push_back(&mut a, cell(3), 0, 0);
        assert_eq!(pool.pop_front(&mut b).unwrap().0.vc().raw(), 2);
        assert_eq!(pool.pop_front(&mut a).unwrap().0.vc().raw(), 1);
        assert_eq!(pool.pop_front(&mut a).unwrap().0.vc().raw(), 3);
    }

    #[test]
    fn clear_frees_all_and_counts() {
        let mut pool = CellPool::new();
        let mut q = CellQueue::new();
        for i in 0..4 {
            pool.push_back(&mut q, cell(i), 0, 0);
        }
        assert_eq!(pool.clear(&mut q), 4);
        assert!(q.is_empty());
        assert_eq!(pool.live(), 0);
        assert_eq!(pool.clear(&mut q), 0);
        // Freed nodes are reusable.
        pool.push_back(&mut q, cell(9), 0, 0);
        assert_eq!(pool.capacity(), 4);
    }

    #[test]
    fn front_and_iter_do_not_consume() {
        let mut pool = CellPool::new();
        let mut q = CellQueue::new();
        pool.push_back(&mut q, cell(7), 3, 1);
        pool.push_back(&mut q, cell(8), 4, 2);
        let (c, stamp, aux) = pool.front(&q).unwrap();
        assert_eq!((c.vc().raw(), stamp, aux), (7, 3, 1));
        let seen: Vec<u32> = pool.iter(&q).map(|(c, _, _)| c.vc().raw()).collect();
        assert_eq!(seen, vec![7, 8]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn front_stamp_tracks_head() {
        let mut pool = CellPool::new();
        let mut q = CellQueue::new();
        pool.push_back(&mut q, cell(1), 11, 0);
        pool.push_back(&mut q, cell(2), 12, 0);
        assert_eq!(q.front_stamp(), 11);
        pool.pop_front(&mut q).unwrap();
        assert_eq!(q.front_stamp(), 12);
        pool.pop_front(&mut q).unwrap();
        // Re-fill after empty: stamp must come from the new head.
        pool.push_back(&mut q, cell(3), 30, 0);
        assert_eq!(q.front_stamp(), 30);
        assert_eq!(q.front_stamp(), pool.front(&q).unwrap().1);
    }

    #[test]
    fn with_capacity_prefills_free_list() {
        let mut pool = CellPool::with_capacity(16);
        assert_eq!(pool.capacity(), 16);
        assert_eq!(pool.live(), 0);
        let mut q = CellQueue::new();
        for i in 0..16 {
            pool.push_back(&mut q, cell(i), 0, 0);
        }
        assert_eq!(pool.capacity(), 16);
    }
}
