//! The 53-byte ATM cell, its 5-byte header, and the HEC header checksum.
//!
//! The header layout follows the ATM UNI format the AN2 line cards would
//! parse in hardware:
//!
//! ```text
//!  byte 0: GFC(4) | VPI(4 high)
//!  byte 1: VPI(4 low) | VCI(4 high)
//!  byte 2: VCI(8 mid)
//!  byte 3: VCI(4 low) | PTI(3) | CLP(1)
//!  byte 4: HEC — CRC-8 over bytes 0..4, polynomial x^8 + x^2 + x + 1
//! ```
//!
//! The reproduction folds VPI and VCI into a single 24-bit [`VcId`], matching
//! the paper's model where "the header of each cell contains its virtual
//! circuit id" and a routing-table lookup maps it to an output port.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Bytes in a full ATM cell.
pub const CELL_BYTES: usize = 53;
/// Bytes in the cell header.
pub const HEADER_BYTES: usize = 5;
/// Bytes of payload per cell.
pub const PAYLOAD_BYTES: usize = 48;

/// A virtual-circuit identifier: the combined 24-bit VPI/VCI field.
///
/// On a real link VC ids have *link-local* scope — each switch's routing
/// table maps (input port, VC id) to an output port, possibly rewriting the
/// id. The reproduction keeps ids network-unique for legibility, which is a
/// strict special case of link-local ids.
///
/// ```
/// use an2_cells::VcId;
/// let vc = VcId::new(0x00_1234);
/// assert_eq!(vc.raw(), 0x1234);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VcId(u32);

impl VcId {
    /// The maximum representable id (24 bits).
    pub const MAX: u32 = 0x00FF_FFFF;

    /// Creates a VC id.
    ///
    /// # Panics
    ///
    /// Panics if `raw` does not fit in 24 bits.
    pub fn new(raw: u32) -> Self {
        assert!(raw <= Self::MAX, "VC id must fit in 24 bits");
        VcId(raw)
    }

    /// The raw 24-bit value.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Const constructor for well-known circuit ids (e.g. the signaling
    /// circuit).
    ///
    /// # Panics
    ///
    /// Panics at compile time if the value exceeds 24 bits.
    pub const fn well_known(raw: u32) -> VcId {
        assert!(raw <= VcId::MAX);
        VcId(raw)
    }
}

impl fmt::Display for VcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vc:{:#x}", self.0)
    }
}

impl From<VcId> for u32 {
    fn from(vc: VcId) -> u32 {
        vc.0
    }
}

/// What a cell carries, encoded in the 3-bit payload-type indicator.
///
/// AN2 distinguishes user data (with an AAL5-style end-of-packet marker),
/// in-band signaling (circuit setup travels "along a separate signaling
/// circuit", §2) and the link-maintenance traffic used by the monitor (§2)
/// and the credit protocol (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// User data, more cells of this packet follow.
    Data,
    /// User data, final cell of a packet (AAL5 end-of-message).
    DataEnd,
    /// Signaling (circuit setup / teardown / reservation).
    Signal,
    /// Link management: monitor pings, credit updates, resync markers.
    Management,
}

impl CellKind {
    fn to_pti(self) -> u8 {
        match self {
            CellKind::Data => 0b000,
            CellKind::DataEnd => 0b001,
            CellKind::Signal => 0b100,
            CellKind::Management => 0b101,
        }
    }

    fn from_pti(pti: u8) -> Self {
        match pti & 0b111 {
            0b001 => CellKind::DataEnd,
            0b100 => CellKind::Signal,
            0b101 => CellKind::Management,
            _ => CellKind::Data,
        }
    }
}

/// The decoded 5-byte cell header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellHeader {
    /// Virtual circuit this cell belongs to.
    pub vc: VcId,
    /// Payload type.
    pub kind: CellKind,
    /// Cell-loss priority: `true` marks the cell as preferentially droppable.
    /// AN2's credit flow control never drops best-effort cells, but the bit
    /// exists in the format and is preserved end-to-end.
    pub low_priority: bool,
}

/// CRC-8 with the ATM HEC polynomial x⁸ + x² + x + 1 (0x07), as computed by
/// the header-error-control circuit of an ATM line card.
pub(crate) fn hec(bytes: &[u8]) -> u8 {
    let mut crc: u8 = 0;
    for &b in bytes {
        crc ^= b;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// Error returned when a received header fails its HEC check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HecError {
    /// HEC byte carried in the cell.
    pub found: u8,
    /// HEC recomputed over the received header bytes.
    pub computed: u8,
}

impl fmt::Display for HecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "header checksum mismatch (found {:#04x}, computed {:#04x})",
            self.found, self.computed
        )
    }
}

impl std::error::Error for HecError {}

impl CellHeader {
    /// Encodes the header into its 5-byte wire form, including the HEC.
    pub fn encode(&self) -> [u8; HEADER_BYTES] {
        let vpi_vci = self.vc.raw(); // 24 bits: VPI(8) | VCI(16)
        let vpi = ((vpi_vci >> 16) & 0xFF) as u8;
        let vci = (vpi_vci & 0xFFFF) as u16;
        let pti = self.kind.to_pti();
        let clp = u8::from(self.low_priority);
        let mut b = [0u8; HEADER_BYTES];
        b[0] = vpi >> 4; // GFC = 0, VPI high nibble
        b[1] = (vpi << 4) | ((vci >> 12) as u8 & 0x0F);
        b[2] = (vci >> 4) as u8;
        b[3] = (((vci & 0x0F) as u8) << 4) | (pti << 1) | clp;
        b[4] = hec(&b[..4]);
        b
    }

    /// Decodes a 5-byte wire header, verifying the HEC.
    ///
    /// # Errors
    ///
    /// Returns [`HecError`] when the checksum does not match, as a real line
    /// card would discard the cell.
    pub fn decode(bytes: &[u8; HEADER_BYTES]) -> Result<Self, HecError> {
        let computed = hec(&bytes[..4]);
        if computed != bytes[4] {
            return Err(HecError {
                found: bytes[4],
                computed,
            });
        }
        let vpi = ((bytes[0] & 0x0F) << 4) | (bytes[1] >> 4);
        let vci = (((bytes[1] & 0x0F) as u16) << 12)
            | ((bytes[2] as u16) << 4)
            | ((bytes[3] >> 4) as u16);
        let pti = (bytes[3] >> 1) & 0b111;
        let clp = bytes[3] & 1 != 0;
        Ok(CellHeader {
            vc: VcId::new(((vpi as u32) << 16) | vci as u32),
            kind: CellKind::from_pti(pti),
            low_priority: clp,
        })
    }
}

/// A complete 53-byte ATM cell: header plus 48-byte payload.
///
/// `Cell` is the unit moved by every queue, crossbar and link in the
/// reproduction. It is `Copy` (53 bytes of plain data) so pooled queues can
/// move cells between slots without touching the allocator.
///
/// ```
/// use an2_cells::{Cell, CellKind, VcId};
/// let cell = Cell::new(VcId::new(7), CellKind::DataEnd, *b"hello, AN2! padding to 48 bytes..........!!!....");
/// let wire = cell.encode();
/// assert_eq!(wire.len(), 53);
/// assert_eq!(Cell::decode(&wire).unwrap(), cell);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cell {
    /// The decoded header.
    pub header: CellHeader,
    /// 48 bytes of payload.
    pub payload: [u8; PAYLOAD_BYTES],
}

impl Cell {
    /// Creates a cell.
    pub fn new(vc: VcId, kind: CellKind, payload: [u8; PAYLOAD_BYTES]) -> Self {
        Cell {
            header: CellHeader {
                vc,
                kind,
                low_priority: false,
            },
            payload,
        }
    }

    /// A data cell with a zeroed payload — handy for scheduler experiments
    /// where only the VC id matters.
    pub fn blank(vc: VcId) -> Self {
        Cell::new(vc, CellKind::Data, [0; PAYLOAD_BYTES])
    }

    /// The cell's virtual circuit.
    pub fn vc(&self) -> VcId {
        self.header.vc
    }

    /// `true` when this cell ends a packet.
    pub fn is_end_of_packet(&self) -> bool {
        self.header.kind == CellKind::DataEnd
    }

    /// Encodes to the 53-byte wire form.
    pub fn encode(&self) -> [u8; CELL_BYTES] {
        let mut out = [0u8; CELL_BYTES];
        out[..HEADER_BYTES].copy_from_slice(&self.header.encode());
        out[HEADER_BYTES..].copy_from_slice(&self.payload);
        out
    }

    /// Decodes from the 53-byte wire form, verifying the header HEC.
    ///
    /// # Errors
    ///
    /// Returns [`HecError`] if the header checksum fails.
    pub fn decode(bytes: &[u8; CELL_BYTES]) -> Result<Self, HecError> {
        let mut hdr = [0u8; HEADER_BYTES];
        hdr.copy_from_slice(&bytes[..HEADER_BYTES]);
        let header = CellHeader::decode(&hdr)?;
        let mut payload = [0u8; PAYLOAD_BYTES];
        payload.copy_from_slice(&bytes[HEADER_BYTES..]);
        Ok(Cell { header, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc_id_bounds() {
        assert_eq!(VcId::new(VcId::MAX).raw(), VcId::MAX);
        assert_eq!(u32::from(VcId::new(5)), 5);
        assert_eq!(VcId::new(16).to_string(), "vc:0x10");
    }

    #[test]
    #[should_panic(expected = "24 bits")]
    fn vc_id_too_large_panics() {
        VcId::new(VcId::MAX + 1);
    }

    #[test]
    fn header_round_trip_all_kinds() {
        for kind in [
            CellKind::Data,
            CellKind::DataEnd,
            CellKind::Signal,
            CellKind::Management,
        ] {
            for clp in [false, true] {
                let h = CellHeader {
                    vc: VcId::new(0xAB_CDEF),
                    kind,
                    low_priority: clp,
                };
                let decoded = CellHeader::decode(&h.encode()).unwrap();
                assert_eq!(decoded, h);
            }
        }
    }

    #[test]
    fn header_rejects_corruption() {
        let h = CellHeader {
            vc: VcId::new(77),
            kind: CellKind::Data,
            low_priority: false,
        };
        let mut wire = h.encode();
        for byte in 0..HEADER_BYTES {
            for bit in 0..8 {
                wire[byte] ^= 1 << bit;
                assert!(
                    CellHeader::decode(&wire).is_err(),
                    "flip of byte {byte} bit {bit} must fail the HEC"
                );
                wire[byte] ^= 1 << bit;
            }
        }
        assert!(CellHeader::decode(&wire).is_ok());
    }

    #[test]
    fn hec_known_property() {
        // CRC of data followed by its CRC is zero for this polynomial form.
        let data = [0x12, 0x34, 0x56, 0x78];
        let c = hec(&data);
        let mut with = data.to_vec();
        with.push(c);
        assert_eq!(hec(&with), 0);
    }

    #[test]
    fn cell_round_trip() {
        let mut payload = [0u8; PAYLOAD_BYTES];
        for (i, b) in payload.iter_mut().enumerate() {
            *b = i as u8;
        }
        let cell = Cell::new(VcId::new(0x12_3456), CellKind::DataEnd, payload);
        let wire = cell.encode();
        assert_eq!(Cell::decode(&wire).unwrap(), cell);
        assert!(cell.is_end_of_packet());
        assert_eq!(cell.vc(), VcId::new(0x12_3456));
    }

    #[test]
    fn blank_cell_is_data() {
        let c = Cell::blank(VcId::new(1));
        assert!(!c.is_end_of_packet());
        assert_eq!(c.payload, [0; PAYLOAD_BYTES]);
    }

    #[test]
    fn cell_decode_rejects_bad_header() {
        let cell = Cell::blank(VcId::new(9));
        let mut wire = cell.encode();
        wire[0] ^= 0x10;
        let err = Cell::decode(&wire).unwrap_err();
        assert_ne!(err.found, err.computed);
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn distinct_vcs_distinct_wire() {
        let a = Cell::blank(VcId::new(1)).encode();
        let b = Cell::blank(VcId::new(2)).encode();
        assert_ne!(a, b);
    }
}
