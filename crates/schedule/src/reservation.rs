//! Bandwidth reservations: the demand side of guaranteed traffic.
//!
//! "Bandwidth reservations are based on frames of 1024 cell slots. Thus an
//! application expresses its bandwidth request as some number of
//! cells/frame." (§4) A reservation set is feasible exactly when no input
//! or output link is committed beyond the frame size — the premise of the
//! Slepian–Duguid theorem.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a reservation could not be added.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReservationError {
    /// The input link would exceed the frame size.
    InputOvercommitted {
        /// The input port.
        input: usize,
        /// Cells already reserved on that input.
        reserved: u32,
        /// Cells requested.
        requested: u32,
        /// The frame size.
        frame: u32,
    },
    /// The output link would exceed the frame size.
    OutputOvercommitted {
        /// The output port.
        output: usize,
        /// Cells already reserved on that output.
        reserved: u32,
        /// Cells requested.
        requested: u32,
        /// The frame size.
        frame: u32,
    },
}

impl fmt::Display for ReservationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ReservationError::InputOvercommitted {
                input,
                reserved,
                requested,
                frame,
            } => write!(
                f,
                "input {input} over-committed: {reserved} + {requested} > {frame} cells/frame"
            ),
            ReservationError::OutputOvercommitted {
                output,
                reserved,
                requested,
                frame,
            } => write!(
                f,
                "output {output} over-committed: {reserved} + {requested} > {frame} cells/frame"
            ),
        }
    }
}

impl std::error::Error for ReservationError {}

/// The reservation table of one switch: cells per frame for each
/// (input, output) pair, as in the top half of Figure 2.
///
/// ```
/// use an2_schedule::ReservationMatrix;
/// let mut r = ReservationMatrix::new(4, 3); // 4x4 switch, 3-slot frame
/// r.reserve(1, 0, 2).unwrap();
/// assert_eq!(r.cells(1, 0), 2);
/// assert!(r.reserve(1, 2, 2).is_err()); // input 1 would need 4 > 3 slots
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReservationMatrix {
    n: usize,
    frame: u32,
    cells: Vec<u32>,
}

impl ReservationMatrix {
    /// An empty reservation table for an `n × n` switch and `frame`-slot
    /// frames.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `frame == 0`.
    pub fn new(n: usize, frame: u32) -> Self {
        assert!(n > 0, "switch size must be positive");
        assert!(frame > 0, "frame must have at least one slot");
        ReservationMatrix {
            n,
            frame,
            cells: vec![0; n * n],
        }
    }

    /// Builds from the row-major table of Figure 2.
    ///
    /// # Panics
    ///
    /// Panics if the table is not `n × n` or any row/column exceeds the
    /// frame.
    pub fn from_table(n: usize, frame: u32, table: &[u32]) -> Self {
        assert_eq!(table.len(), n * n, "table must have n*n entries");
        let mut r = ReservationMatrix::new(n, frame);
        for i in 0..n {
            for o in 0..n {
                if table[i * n + o] > 0 {
                    r.reserve(i, o, table[i * n + o])
                        .expect("table over-commits a link");
                }
            }
        }
        r
    }

    /// Switch size.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Frame size in slots.
    pub fn frame(&self) -> u32 {
        self.frame
    }

    /// Reserved cells per frame from `input` to `output`.
    pub fn cells(&self, input: usize, output: usize) -> u32 {
        self.cells[input * self.n + output]
    }

    /// Total cells reserved on an input link.
    pub fn input_load(&self, input: usize) -> u32 {
        (0..self.n).map(|o| self.cells(input, o)).sum()
    }

    /// Total cells reserved on an output link.
    pub fn output_load(&self, output: usize) -> u32 {
        (0..self.n).map(|i| self.cells(i, output)).sum()
    }

    /// Adds `amount` cells/frame from `input` to `output`.
    ///
    /// # Errors
    ///
    /// Rejects the reservation if it would over-commit the input or output
    /// link — the admission rule bandwidth central enforces (§4).
    pub fn reserve(
        &mut self,
        input: usize,
        output: usize,
        amount: u32,
    ) -> Result<(), ReservationError> {
        let in_load = self.input_load(input);
        if in_load + amount > self.frame {
            return Err(ReservationError::InputOvercommitted {
                input,
                reserved: in_load,
                requested: amount,
                frame: self.frame,
            });
        }
        let out_load = self.output_load(output);
        if out_load + amount > self.frame {
            return Err(ReservationError::OutputOvercommitted {
                output,
                reserved: out_load,
                requested: amount,
                frame: self.frame,
            });
        }
        self.cells[input * self.n + output] += amount;
        Ok(())
    }

    /// Releases `amount` cells/frame (tearing a circuit down).
    ///
    /// # Panics
    ///
    /// Panics if more is released than was reserved.
    pub fn release(&mut self, input: usize, output: usize, amount: u32) {
        let c = &mut self.cells[input * self.n + output];
        assert!(
            *c >= amount,
            "releasing more than reserved at ({input},{output})"
        );
        *c -= amount;
    }

    /// Total reserved cells across the switch.
    pub fn total(&self) -> u32 {
        self.cells.iter().sum()
    }

    /// All `(input, output, cells)` entries with non-zero reservations.
    pub fn entries(&self) -> Vec<(usize, usize, u32)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for o in 0..self.n {
                let c = self.cells(i, o);
                if c > 0 {
                    out.push((i, o, c));
                }
            }
        }
        out
    }

    /// The Figure 2 reservation table (1-based in the paper; 0-based here),
    /// *including* the 4→3 reservation the running example adds.
    pub fn figure2() -> Self {
        // in\out:   1  2  3  4        (paper numbering)
        //   1       -  1  1  1
        //   2       2  -  -  -
        //   3       -  2  -  1
        //   4       1  -  1  -
        ReservationMatrix::from_table(
            4,
            3,
            &[
                0, 1, 1, 1, //
                2, 0, 0, 0, //
                0, 2, 0, 1, //
                1, 0, 1, 0,
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_query() {
        let mut r = ReservationMatrix::new(4, 1024);
        r.reserve(0, 1, 100).unwrap();
        r.reserve(0, 2, 200).unwrap();
        r.reserve(3, 1, 50).unwrap();
        assert_eq!(r.cells(0, 1), 100);
        assert_eq!(r.input_load(0), 300);
        assert_eq!(r.output_load(1), 150);
        assert_eq!(r.total(), 350);
        assert_eq!(r.entries().len(), 3);
        assert_eq!(r.frame(), 1024);
        assert_eq!(r.size(), 4);
    }

    #[test]
    fn admission_rejects_overcommit() {
        let mut r = ReservationMatrix::new(2, 10);
        r.reserve(0, 0, 6).unwrap();
        // Input 0 already at 6; 5 more would exceed 10.
        let err = r.reserve(0, 1, 5).unwrap_err();
        assert!(matches!(
            err,
            ReservationError::InputOvercommitted { input: 0, .. }
        ));
        // Output 0 at 6: 5 more from input 1 exceeds.
        let err = r.reserve(1, 0, 5).unwrap_err();
        assert!(matches!(
            err,
            ReservationError::OutputOvercommitted { output: 0, .. }
        ));
        // Exactly filling is allowed.
        r.reserve(0, 1, 4).unwrap();
        assert_eq!(r.input_load(0), 10);
        // Failed reservations must not have mutated the table.
        assert_eq!(r.total(), 10);
    }

    #[test]
    fn release_returns_capacity() {
        let mut r = ReservationMatrix::new(2, 4);
        r.reserve(0, 0, 4).unwrap();
        assert!(r.reserve(0, 1, 1).is_err());
        r.release(0, 0, 2);
        r.reserve(0, 1, 1).unwrap();
        assert_eq!(r.cells(0, 0), 2);
    }

    #[test]
    #[should_panic(expected = "more than reserved")]
    fn over_release_panics() {
        let mut r = ReservationMatrix::new(2, 4);
        r.release(0, 0, 1);
    }

    #[test]
    fn figure2_matches_paper() {
        let r = ReservationMatrix::figure2();
        // Paper's indices are 1-based; ours are 0-based.
        assert_eq!(r.cells(0, 1), 1);
        assert_eq!(r.cells(0, 2), 1);
        assert_eq!(r.cells(0, 3), 1);
        assert_eq!(r.cells(1, 0), 2);
        assert_eq!(r.cells(2, 1), 2);
        assert_eq!(r.cells(2, 3), 1);
        assert_eq!(r.cells(3, 0), 1);
        assert_eq!(r.cells(3, 2), 1);
        assert_eq!(r.total(), 10);
        // Feasible in a 3-slot frame: every row and column at most 3.
        for k in 0..4 {
            assert!(r.input_load(k) <= 3);
            assert!(r.output_load(k) <= 3);
        }
    }

    #[test]
    fn error_messages() {
        let e = ReservationError::InputOvercommitted {
            input: 3,
            reserved: 900,
            requested: 200,
            frame: 1024,
        };
        let s = e.to_string();
        assert!(s.contains("input 3") && s.contains("1024"));
    }

    #[test]
    #[should_panic(expected = "over-commits")]
    fn from_table_rejects_infeasible() {
        ReservationMatrix::from_table(2, 2, &[2, 1, 0, 0]);
    }
}
