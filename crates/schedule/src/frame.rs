//! The frame schedule and the Slepian–Duguid insertion algorithm.
//!
//! "The Slepian-Duguid theorem implies that a schedule can be found for any
//! set of reservations that does not over-commit the bandwidth of any link.
//! Moreover, the proof of the theorem provides an algorithm for adding a
//! cell to an existing schedule; the time required is linear in the size of
//! the switch and independent of frame size." (§4)
//!
//! The algorithm, as the paper describes it: to add a reservation P→Q, use a
//! slot where both P and Q are free if one exists. Otherwise take a slot `p`
//! where P is free and a slot `q` where Q is free, add P→Q to `p`, and
//! repeatedly move the conflicting connection to the other slot until no
//! conflict remains — at most N swaps for an N×N switch (Figure 3).

use crate::reservation::ReservationMatrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One displacement performed by the insertion algorithm: `conn` was placed
/// into `slot`, displacing `displaced` (if any) into the other working slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Move {
    /// The slot written.
    pub slot: u32,
    /// The connection placed, as `(input, output)`.
    pub conn: (usize, usize),
    /// The connection that had to move out, if the placement conflicted.
    pub displaced: Option<(usize, usize)>,
}

/// The record of one insertion: which slots were touched and every
/// displacement, reproducing the italics/boldface trace of Figure 3.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InsertTrace {
    /// Slot chosen because the input was free (`p` in the paper), which is
    /// also where the new connection was first placed.
    pub slot_p: u32,
    /// Slot chosen because the output was free (`q`), or `None` when a slot
    /// with both free existed and no displacement was needed.
    pub slot_q: Option<u32>,
    /// The displacements, in order. The first move places the new
    /// reservation itself.
    pub moves: Vec<Move>,
}

impl InsertTrace {
    /// Number of displacement moves after the initial placement. Each of the
    /// paper's "steps" (Figure 3) swaps one conflicting pair between slots
    /// `p` and `q`, i.e. covers two of these moves, so this is at most `2N`
    /// when the paper's step count is at most `N`.
    pub fn swaps(&self) -> usize {
        self.moves.len().saturating_sub(1)
    }

    /// The paper's step count: the initial placement plus one step per
    /// displaced pair (Figure 3 labels these 1, 2, 3). Bounded by `N + 1`
    /// for an `N × N` switch.
    pub fn paper_steps(&self) -> usize {
        1 + self.swaps().div_ceil(2)
    }
}

/// Why an insertion failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertError {
    /// Every slot already uses this input: the input link is fully
    /// committed, so the reservation should have been refused by admission.
    InputFull(usize),
    /// Every slot already uses this output.
    OutputFull(usize),
}

impl fmt::Display for InsertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InsertError::InputFull(i) => write!(f, "input {i} has no free slot in the frame"),
            InsertError::OutputFull(o) => write!(f, "output {o} has no free slot in the frame"),
        }
    }
}

impl std::error::Error for InsertError {}

/// A frame schedule: for each of the frame's slots, a crossbar configuration
/// saying which input transmits to which output (bottom half of Figure 2).
///
/// ```
/// use an2_schedule::FrameSchedule;
/// let mut s = FrameSchedule::new(4, 3);
/// s.insert(1, 0).unwrap(); // paper's 2→1, 0-based
/// assert_eq!(s.scheduled_cells(1, 0), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameSchedule {
    n: usize,
    frame: u32,
    /// Per slot: output assigned to each input (`None` = idle).
    out_of_input: Vec<Vec<Option<usize>>>,
    /// Per slot: input assigned to each output (inverse index).
    in_of_output: Vec<Vec<Option<usize>>>,
}

impl FrameSchedule {
    /// An empty schedule for an `n × n` switch with `frame` slots.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `frame == 0`.
    pub fn new(n: usize, frame: u32) -> Self {
        assert!(n > 0 && frame > 0, "degenerate schedule");
        FrameSchedule {
            n,
            frame,
            out_of_input: vec![vec![None; n]; frame as usize],
            in_of_output: vec![vec![None; n]; frame as usize],
        }
    }

    /// Switch size.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Frame size in slots.
    pub fn frame(&self) -> u32 {
        self.frame
    }

    /// The output `input` transmits to in `slot`, if any.
    pub fn output_in_slot(&self, slot: u32, input: usize) -> Option<usize> {
        self.out_of_input[slot as usize][input]
    }

    /// The input transmitting to `output` in `slot`, if any.
    pub fn input_in_slot(&self, slot: u32, output: usize) -> Option<usize> {
        self.in_of_output[slot as usize][output]
    }

    /// Whether both `input` and `output` are idle in `slot` — a slot
    /// best-effort traffic could use for that pairing (§4).
    pub fn pair_free(&self, slot: u32, input: usize, output: usize) -> bool {
        self.output_in_slot(slot, input).is_none() && self.input_in_slot(slot, output).is_none()
    }

    /// Number of slots in which `input` transmits to `output` — the
    /// bandwidth actually scheduled for that pair.
    pub fn scheduled_cells(&self, input: usize, output: usize) -> u32 {
        (0..self.frame)
            .filter(|&s| self.output_in_slot(s, input) == Some(output))
            .count() as u32
    }

    /// Total scheduled (slot, connection) entries.
    pub fn total_cells(&self) -> u32 {
        (0..self.frame)
            .map(|s| self.out_of_input[s as usize].iter().flatten().count() as u32)
            .sum()
    }

    pub(crate) fn place(&mut self, slot: u32, input: usize, output: usize) {
        debug_assert!(self.out_of_input[slot as usize][input].is_none());
        debug_assert!(self.in_of_output[slot as usize][output].is_none());
        self.out_of_input[slot as usize][input] = Some(output);
        self.in_of_output[slot as usize][output] = Some(input);
    }

    fn unplace(&mut self, slot: u32, input: usize, output: usize) {
        debug_assert_eq!(self.out_of_input[slot as usize][input], Some(output));
        self.out_of_input[slot as usize][input] = None;
        self.in_of_output[slot as usize][output] = None;
    }

    /// Adds one cell/frame from `input` to `output` by the Slepian–Duguid
    /// displacement algorithm, returning the full trace (Figure 3).
    ///
    /// # Errors
    ///
    /// Fails only when the input or output link is already scheduled in
    /// every slot — i.e. when admission control was bypassed.
    pub fn insert(&mut self, input: usize, output: usize) -> Result<InsertTrace, InsertError> {
        // A slot with both ends free: trivial placement.
        if let Some(slot) = (0..self.frame).find(|&s| self.pair_free(s, input, output)) {
            self.place(slot, input, output);
            return Ok(InsertTrace {
                slot_p: slot,
                slot_q: None,
                moves: vec![Move {
                    slot,
                    conn: (input, output),
                    displaced: None,
                }],
            });
        }
        // Otherwise: p where the input is free, q where the output is free.
        // Both exist whenever the links are not fully committed.
        let p = (0..self.frame)
            .find(|&s| self.output_in_slot(s, input).is_none())
            .ok_or(InsertError::InputFull(input))?;
        let q = (0..self.frame)
            .find(|&s| self.input_in_slot(s, output).is_none())
            .ok_or(InsertError::OutputFull(output))?;

        let mut moves = Vec::new();
        // Place the new connection in p; it conflicts on the output side.
        let mut slot = p;
        let mut conn = (input, output);
        loop {
            let (ci, co) = conn;
            // Who conflicts in `slot`? Alternates: placing into p conflicts
            // on the output, placing into q conflicts on the input — both
            // sides are checked, but the invariant guarantees at most one.
            let out_conflict = self.input_in_slot(slot, co).map(|r| (r, co));
            let in_conflict = self.output_in_slot(slot, ci).map(|o| (ci, o));
            debug_assert!(
                out_conflict.is_none() || in_conflict.is_none(),
                "both sides conflicted: invariant broken"
            );
            let displaced = out_conflict.or(in_conflict);
            if let Some(d) = displaced {
                self.unplace(slot, d.0, d.1);
            }
            self.place(slot, ci, co);
            moves.push(Move {
                slot,
                conn,
                displaced,
            });
            match displaced {
                None => break,
                Some(d) => {
                    conn = d;
                    slot = if slot == p { q } else { p };
                }
            }
        }
        Ok(InsertTrace {
            slot_p: p,
            slot_q: Some(q),
            moves,
        })
    }

    /// Removes one scheduled cell from `input` to `output` (circuit
    /// teardown). Returns the slot it was removed from, or `None` if no such
    /// cell is scheduled.
    pub fn remove(&mut self, input: usize, output: usize) -> Option<u32> {
        let slot = (0..self.frame).find(|&s| self.output_in_slot(s, input) == Some(output))?;
        self.unplace(slot, input, output);
        Some(slot)
    }

    /// Builds a complete schedule for a reservation matrix by repeated
    /// insertion. By the Slepian–Duguid theorem this cannot fail for a
    /// feasible matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix's frame size differs from `frame`, or if the
    /// matrix over-commits a link (impossible when it came from
    /// [`ReservationMatrix::reserve`]).
    pub fn build(reservations: &ReservationMatrix) -> Self {
        let mut s = FrameSchedule::new(reservations.size(), reservations.frame());
        for (i, o, cells) in reservations.entries() {
            for _ in 0..cells {
                s.insert(i, o)
                    .expect("feasible reservations are always schedulable");
            }
        }
        s
    }

    /// Checks that this schedule grants exactly the reserved bandwidth.
    pub fn satisfies(&self, reservations: &ReservationMatrix) -> bool {
        if reservations.size() != self.n || reservations.frame() != self.frame {
            return false;
        }
        (0..self.n)
            .all(|i| (0..self.n).all(|o| self.scheduled_cells(i, o) == reservations.cells(i, o)))
    }

    /// Renders a slot as the paper prints it: `1→3 2→1 3→2` (1-based).
    pub fn format_slot(&self, slot: u32) -> String {
        let mut parts = Vec::new();
        for input in 0..self.n {
            if let Some(output) = self.output_in_slot(slot, input) {
                parts.push(format!("{}→{}", input + 1, output + 1));
            }
        }
        parts.join(" ")
    }

    /// The exact Figure 2 schedule (0-based ports, 3-slot frame), including
    /// the 4→3 reservation.
    pub fn figure2() -> Self {
        let mut s = FrameSchedule::new(4, 3);
        // Slot 1: 1→3 2→1 3→2; Slot 2: 1→4 2→1 3→2 4→3; Slot 3: 1→2 3→4 4→1.
        for (slot, input, output) in [
            (0, 0, 2),
            (0, 1, 0),
            (0, 2, 1),
            (1, 0, 3),
            (1, 1, 0),
            (1, 2, 1),
            (1, 3, 2),
            (2, 0, 1),
            (2, 2, 3),
            (2, 3, 0),
        ] {
            s.place(slot, input, output);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use an2_sim::SimRng;

    #[test]
    fn figure2_schedule_satisfies_figure2_reservations() {
        let s = FrameSchedule::figure2();
        let r = ReservationMatrix::figure2();
        assert!(s.satisfies(&r));
        assert_eq!(s.total_cells(), 10);
        assert_eq!(s.format_slot(0), "1→3 2→1 3→2");
        assert_eq!(s.format_slot(1), "1→4 2→1 3→2 4→3");
        assert_eq!(s.format_slot(2), "1→2 3→4 4→1");
    }

    /// The Figure 3 running example: the initial two-slot schedule where
    /// adding 4→3 (0-based: 3→2) requires three displacement moves.
    fn figure3_initial() -> FrameSchedule {
        let mut s = FrameSchedule::new(4, 2);
        // p (slot 0): 1→3 2→1 3→2 ; q (slot 1): 1→2 3→4 4→1 (1-based).
        for (slot, input, output) in [
            (0, 0, 2),
            (0, 1, 0),
            (0, 2, 1),
            (1, 0, 1),
            (1, 2, 3),
            (1, 3, 0),
        ] {
            s.insert_at_for_test(slot, input, output);
        }
        s
    }

    impl FrameSchedule {
        fn insert_at_for_test(&mut self, slot: u32, input: usize, output: usize) {
            self.place(slot, input, output);
        }
    }

    #[test]
    fn figure3_insertion_trace_matches_paper() {
        let mut s = figure3_initial();
        // No slot has both input 4 and output 3 free (0-based: 3 and 2).
        assert!(!s.pair_free(0, 3, 2));
        assert!(!s.pair_free(1, 3, 2));
        let trace = s.insert(3, 2).unwrap();
        // p = slot 0 (input 4 free there), q = slot 1 (output 3 free there).
        assert_eq!(trace.slot_p, 0);
        assert_eq!(trace.slot_q, Some(1));
        // Paper: terminates after three steps; our moves list is
        // [place 4→3 (displacing 1→3), move 1→3 (displacing 1→2),
        //  move 1→2 (displacing 3→2), move 3→2 (displacing 3→4),
        //  move 3→4 (no conflict)] — i.e. the paper's three *swaps* plus the
        // final conflict-free move appear as 5 placements / 4 displacements.
        assert_eq!(trace.moves[0].conn, (3, 2));
        assert_eq!(trace.moves[0].displaced, Some((0, 2))); // 1→3
        assert_eq!(trace.moves[1].conn, (0, 2)); // 1→3 into q
        assert_eq!(trace.moves[1].displaced, Some((0, 1))); // 1→2
        assert_eq!(trace.moves[2].conn, (0, 1)); // 1→2 into p
        assert_eq!(trace.moves[2].displaced, Some((2, 1))); // 3→2
        assert_eq!(trace.moves[3].conn, (2, 1)); // 3→2 into q
        assert_eq!(trace.moves[3].displaced, Some((2, 3))); // 3→4
        assert_eq!(trace.moves[4].conn, (2, 3)); // 3→4 into p, clean
        assert_eq!(trace.moves[4].displaced, None);
        // Final state matches Figure 3 step 3:
        // p: 1→2 2→1 3→4 4→3 ; q: 1→3 3→2 4→1.
        assert_eq!(s.format_slot(0), "1→2 2→1 3→4 4→3");
        assert_eq!(s.format_slot(1), "1→3 3→2 4→1");
    }

    #[test]
    fn trivial_insert_uses_free_slot() {
        let mut s = FrameSchedule::new(4, 3);
        let trace = s.insert(0, 1).unwrap();
        assert_eq!(trace.slot_q, None);
        assert_eq!(trace.swaps(), 0);
        assert_eq!(s.scheduled_cells(0, 1), 1);
    }

    #[test]
    fn insert_rejects_full_link() {
        let mut s = FrameSchedule::new(2, 2);
        s.insert(0, 0).unwrap();
        s.insert(0, 1).unwrap();
        assert_eq!(s.insert(0, 0), Err(InsertError::InputFull(0)));
        // Output side: fill output 1 from both inputs.
        let mut s = FrameSchedule::new(2, 2);
        s.insert(0, 1).unwrap();
        s.insert(1, 1).unwrap();
        assert_eq!(s.insert(0, 1), Err(InsertError::OutputFull(1)));
        assert!(InsertError::InputFull(0).to_string().contains("input 0"));
    }

    #[test]
    fn build_always_satisfies_feasible_random_matrices() {
        let mut rng = SimRng::new(1212);
        for _ in 0..50 {
            let n = 2 + rng.gen_range(7);
            let frame = 2 + rng.gen_range(14) as u32;
            let mut r = ReservationMatrix::new(n, frame);
            // Fill randomly until ~70% of capacity or rejection.
            for _ in 0..n * frame as usize {
                let i = rng.gen_range(n);
                let o = rng.gen_range(n);
                let amt = 1 + rng.gen_range(3) as u32;
                let _ = r.reserve(i, o, amt);
            }
            let s = FrameSchedule::build(&r);
            assert!(s.satisfies(&r), "n={n} frame={frame}");
        }
    }

    #[test]
    fn swaps_bounded_by_switch_size() {
        // "this will require at most N steps for an N×N switch" (§4).
        let mut rng = SimRng::new(77);
        for _ in 0..30 {
            let n = 4 + rng.gen_range(13);
            let frame = 8u32;
            let mut r = ReservationMatrix::new(n, frame);
            let mut s = FrameSchedule::new(n, frame);
            for _ in 0..n * frame as usize * 2 {
                let i = rng.gen_range(n);
                let o = rng.gen_range(n);
                if r.reserve(i, o, 1).is_ok() {
                    let trace = s.insert(i, o).unwrap();
                    assert!(
                        trace.paper_steps() <= n + 1,
                        "insertion took {} paper-steps on a {n}x{n} switch",
                        trace.paper_steps()
                    );
                    assert!(trace.swaps() <= 2 * n);
                }
            }
            assert!(s.satisfies(&r));
        }
    }

    #[test]
    fn insertion_cost_independent_of_frame_size() {
        // Same reservation pattern scheduled into frames of 8 and 1024:
        // displacement counts stay bounded by N either way.
        for frame in [8u32, 1024] {
            let mut r = ReservationMatrix::new(4, frame);
            let mut s = FrameSchedule::new(4, frame);
            let mut max_swaps = 0;
            let mut rng = SimRng::new(5);
            for _ in 0..(4 * frame as usize) {
                let i = rng.gen_range(4);
                let o = rng.gen_range(4);
                if r.reserve(i, o, 1).is_ok() {
                    max_swaps = max_swaps.max(s.insert(i, o).unwrap().swaps());
                }
            }
            assert!(
                max_swaps <= 8,
                "frame={frame}: {max_swaps} swaps (bound 2N)"
            );
        }
    }

    #[test]
    fn remove_frees_slot() {
        let mut s = FrameSchedule::new(4, 3);
        s.insert(1, 2).unwrap();
        assert_eq!(s.remove(1, 2), Some(0));
        assert_eq!(s.remove(1, 2), None);
        assert_eq!(s.total_cells(), 0);
        assert!(s.pair_free(0, 1, 2));
    }

    #[test]
    fn pair_free_detects_best_effort_opportunities() {
        // Figure 2: "a best-effort cell can be transmitted from input 2 to
        // output 3 during the third slot."
        let s = FrameSchedule::figure2();
        assert!(s.pair_free(2, 1, 2)); // 0-based: input 2→1, output 3→2
        assert!(!s.pair_free(0, 1, 2)); // slot 1: input 2 busy with 2→1
    }

    #[test]
    fn full_frame_perfect_schedule() {
        // A fully loaded switch: every input sends frame cells spread over
        // all outputs; the schedule must be a perfect matching per slot.
        let n = 8;
        let frame = n as u32;
        let mut r = ReservationMatrix::new(n, frame);
        for i in 0..n {
            for o in 0..n {
                r.reserve(i, o, 1).unwrap();
            }
        }
        let s = FrameSchedule::build(&r);
        assert!(s.satisfies(&r));
        for slot in 0..frame {
            for input in 0..n {
                assert!(s.output_in_slot(slot, input).is_some());
            }
        }
    }
}
