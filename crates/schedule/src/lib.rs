//! # an2-schedule — guaranteed-traffic frame scheduling (§4)
//!
//! "With guaranteed traffic, the requirements of each virtual circuit are
//! specified when the circuit is set up. Using this information, the switch
//! creates a schedule for moving guaranteed traffic across the crossbar,
//! giving the required bandwidth to each virtual circuit."
//!
//! * [`ReservationMatrix`] — cells-per-frame reservations between each
//!   (input, output) pair, with the feasibility rule: no row or column may
//!   exceed the frame size (no link over-committed).
//! * [`FrameSchedule`] — the slot-by-slot crossbar timetable (Figure 2).
//! * [`FrameSchedule::insert`] — the Slepian–Duguid incremental insertion
//!   algorithm (Figure 3): adding one cell takes at most N displacement
//!   swaps for an N×N switch, *independent of frame size*.
//! * [`packing`] — schedule-arrangement heuristics from the paper's future
//!   work: packing reserved cells into few slots versus spreading them, and
//!   the effect on best-effort traffic.
//! * [`nested`] — the nested-frame extension ("allocation could be based on
//!   1024-slot frames, with cell re-ordering restricted to 128-slot units")
//!   which trades allocation granularity against jitter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod frame;
pub mod nested;
pub mod packing;
mod reservation;

pub use frame::{FrameSchedule, InsertError, InsertTrace, Move};
pub use reservation::{ReservationError, ReservationMatrix};

/// The standard AN2 frame size: 1024 cell slots (§4).
pub const FRAME_SLOTS: u32 = 1024;
