//! Nested frames (§4, future work).
//!
//! "Large frames are attractive because they provide a fine-grained
//! allocation unit, but small frames yield better latency and jitter bounds.
//! Nested frames could provide the benefits of both. For example, allocation
//! could be based on 1024-slot frames, with cell re-ordering restricted to
//! 128-slot units."
//!
//! A [`NestedFrameSchedule`] keeps the big frame's allocation granularity (a
//! reservation is still "k cells per 1024 slots") but distributes each
//! circuit's cells round-robin over subframes and schedules each subframe
//! independently. Because a cell can only be reordered within its 128-slot
//! subframe, the inter-departure jitter of a circuit shrinks from O(frame)
//! to O(subframe + spacing).

use crate::frame::FrameSchedule;
use crate::reservation::ReservationMatrix;
use serde::{Deserialize, Serialize};

/// A frame schedule composed of independently scheduled subframes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NestedFrameSchedule {
    n: usize,
    subframes: Vec<FrameSchedule>,
    subframe_slots: u32,
}

impl NestedFrameSchedule {
    /// Builds a nested schedule for `reservations`, splitting the frame into
    /// `subframe_count` equal subframes. Each reservation's k cells are
    /// spread over subframes as evenly as possible (⌈k/m⌉ or ⌊k/m⌋ each).
    ///
    /// # Panics
    ///
    /// Panics if the frame size is not divisible by `subframe_count`, or if
    /// a reservation's per-subframe share over-fills a subframe (cannot
    /// happen for feasible matrices: per-subframe load of a link is at most
    /// ⌈frame_load / m⌉ ≤ subframe size only when loads divide evenly —
    /// so the builder *reserves headroom*: it requires every link load to
    /// leave `subframe_count - 1` spare slots, and panics otherwise; see
    /// [`NestedFrameSchedule::fits`].
    pub fn build(reservations: &ReservationMatrix, subframe_count: u32) -> Self {
        let frame = reservations.frame();
        assert!(
            subframe_count > 0 && frame.is_multiple_of(subframe_count),
            "frame {frame} not divisible into {subframe_count} subframes"
        );
        assert!(
            Self::fits(reservations, subframe_count),
            "reservations too dense for nested scheduling headroom"
        );
        let n = reservations.size();
        let sub_slots = frame / subframe_count;
        // Per-subframe reservation matrices: distribute each entry's cells
        // round-robin, starting at a rotating offset for balance.
        let mut subs: Vec<ReservationMatrix> = (0..subframe_count)
            .map(|_| ReservationMatrix::new(n, sub_slots))
            .collect();
        let mut rotor = 0u32;
        for (i, o, cells) in reservations.entries() {
            for j in 0..cells {
                let sf = ((j + rotor) % subframe_count) as usize;
                subs[sf]
                    .reserve(i, o, 1)
                    .expect("headroom check guarantees subframe feasibility");
            }
            rotor = rotor.wrapping_add(1);
        }
        let subframes = subs.iter().map(FrameSchedule::build).collect();
        NestedFrameSchedule {
            n,
            subframes,
            subframe_slots: sub_slots,
        }
    }

    /// Whether the round-robin split of `reservations` into `subframe_count`
    /// subframes is guaranteed feasible: every link's load, divided over the
    /// subframes, must fit a subframe even in the worst rounding case.
    pub fn fits(reservations: &ReservationMatrix, subframe_count: u32) -> bool {
        let sub_slots = reservations.frame() / subframe_count;
        (0..reservations.size()).all(|k| {
            let worst_in = per_subframe_worst(reservations.input_load(k), subframe_count);
            let worst_out = per_subframe_worst(reservations.output_load(k), subframe_count);
            worst_in <= sub_slots && worst_out <= sub_slots
        })
    }

    /// Switch size.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Total frame size in slots.
    pub fn frame(&self) -> u32 {
        self.subframe_slots * self.subframes.len() as u32
    }

    /// Slots per subframe (the re-ordering unit).
    pub fn subframe_slots(&self) -> u32 {
        self.subframe_slots
    }

    /// The output scheduled for `input` at absolute slot `slot`.
    pub fn output_in_slot(&self, slot: u32, input: usize) -> Option<usize> {
        let sf = (slot / self.subframe_slots) as usize;
        self.subframes[sf].output_in_slot(slot % self.subframe_slots, input)
    }

    /// Scheduled cells per frame for a pair (must equal the reservation).
    pub fn scheduled_cells(&self, input: usize, output: usize) -> u32 {
        self.subframes
            .iter()
            .map(|s| s.scheduled_cells(input, output))
            .sum()
    }

    /// The largest gap, in slots, between consecutive departures of a
    /// pair's cells across the (cyclic) frame — the circuit's jitter bound.
    pub fn max_interdeparture_gap(&self, input: usize, output: usize) -> Option<u32> {
        let frame = self.frame();
        max_cyclic_gap(
            &departure_slots(|t| self.output_in_slot(t, input) == Some(output), frame),
            frame,
        )
    }
}

/// Worst-case cells landing in one subframe when `load` cells are split
/// round-robin per entry: an entry of k cells puts at most ⌈k/m⌉ in one
/// subframe, and summing ⌈·⌉ over entries can exceed ⌈sum/m⌉ by the number
/// of entries; we bound conservatively by ⌈load/m⌉ + (m - 1).
fn per_subframe_worst(load: u32, m: u32) -> u32 {
    load.div_ceil(m) + (m - 1)
}

/// Max interdeparture gap helper for flat schedules, to compare nested and
/// flat jitter on equal terms.
pub fn flat_max_interdeparture_gap(s: &FrameSchedule, input: usize, output: usize) -> Option<u32> {
    let frame = s.frame();
    max_cyclic_gap(
        &departure_slots(|t| s.output_in_slot(t, input) == Some(output), frame),
        frame,
    )
}

fn departure_slots(has: impl Fn(u32) -> bool, frame: u32) -> Vec<u32> {
    (0..frame).filter(|&t| has(t)).collect()
}

/// Largest distance (in slots) between consecutive departures, treating the
/// frame as cyclic: the schedule repeats, so the last departure of one frame
/// is followed by the first departure of the next.
fn max_cyclic_gap(slots: &[u32], frame: u32) -> Option<u32> {
    if slots.is_empty() {
        return None;
    }
    let mut max = 0;
    for k in 0..slots.len() {
        let next = if k + 1 < slots.len() {
            slots[k + 1]
        } else {
            slots[0] + frame
        };
        max = max.max(next - slots[k]);
    }
    Some(max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_reservations(n: usize, frame: u32, per_pair: u32) -> ReservationMatrix {
        let mut r = ReservationMatrix::new(n, frame);
        for i in 0..n {
            for o in 0..n {
                r.reserve(i, o, per_pair).unwrap();
            }
        }
        r
    }

    #[test]
    fn nested_satisfies_reservations() {
        let r = dense_reservations(4, 128, 8);
        let nested = NestedFrameSchedule::build(&r, 8);
        for i in 0..4 {
            for o in 0..4 {
                assert_eq!(nested.scheduled_cells(i, o), 8);
            }
        }
        assert_eq!(nested.frame(), 128);
        assert_eq!(nested.subframe_slots(), 16);
        assert_eq!(nested.size(), 4);
    }

    #[test]
    fn nested_reduces_jitter() {
        // One circuit with 8 cells/128 slots; flat scheduling may bunch all
        // 8 at the start of the frame (gap ~120 slots); nested with 8
        // subframes caps the gap near 2 subframes.
        let mut r = ReservationMatrix::new(4, 128);
        r.reserve(0, 1, 8).unwrap();
        // Add competing load so the flat packer bunches.
        r.reserve(1, 2, 8).unwrap();
        r.reserve(2, 3, 8).unwrap();
        let flat = crate::packing::build_packed(&r);
        let nested = NestedFrameSchedule::build(&r, 8);
        let flat_gap = flat_max_interdeparture_gap(&flat, 0, 1).unwrap();
        let nested_gap = nested.max_interdeparture_gap(0, 1).unwrap();
        assert!(
            nested_gap < flat_gap,
            "nested gap {nested_gap} !< flat gap {flat_gap}"
        );
        assert!(nested_gap <= 2 * nested.subframe_slots());
    }

    #[test]
    fn fits_rejects_overdense() {
        let r = dense_reservations(4, 16, 4); // every link fully committed
        assert!(!NestedFrameSchedule::fits(&r, 4));
        let light = dense_reservations(4, 64, 2); // link load 8 of 64
        assert!(NestedFrameSchedule::fits(&light, 4));
    }

    #[test]
    #[should_panic(expected = "too dense")]
    fn build_panics_without_headroom() {
        let r = dense_reservations(4, 16, 4);
        NestedFrameSchedule::build(&r, 4);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn build_rejects_nondividing_subframes() {
        let r = ReservationMatrix::new(2, 10);
        NestedFrameSchedule::build(&r, 3);
    }

    #[test]
    fn unreserved_pair_has_no_departures() {
        let mut r = ReservationMatrix::new(2, 16);
        r.reserve(0, 1, 2).unwrap();
        let nested = NestedFrameSchedule::build(&r, 2);
        assert_eq!(nested.max_interdeparture_gap(1, 0), None);
        assert_eq!(nested.scheduled_cells(1, 0), 0);
    }
}
