//! Schedule arrangement heuristics (§4, future work).
//!
//! "Best-effort cells can only be transmitted in slots where neither their
//! input nor their output is busy with reserved traffic. Such slots will be
//! more frequent if reserved traffic is packed into a small number of slots,
//! leaving other slots completely free for best-effort traffic. Best-effort
//! cells will also fare better if the unreserved slots are distributed
//! throughout the frame rather than grouped at one point."
//!
//! Two constructions are provided: [`build_packed`] concentrates reserved
//! cells into the lowest-numbered slots; [`build_spread`] balances the load
//! across slots. [`best_effort_stats`] measures the resulting best-effort
//! opportunity (free-pair slot count) and its worst gap (a latency proxy).

use crate::frame::FrameSchedule;
use crate::reservation::ReservationMatrix;

/// Builds a schedule that packs reserved traffic into as few slots as
/// possible: reservations are placed first-fit from slot 0 upward (falling
/// back to displacement when necessary), and entries are inserted
/// largest-first to improve packing.
pub fn build_packed(reservations: &ReservationMatrix) -> FrameSchedule {
    let mut entries = reservations.entries();
    // Largest reservations first: classic first-fit-decreasing.
    entries.sort_by_key(|&(_, _, c)| std::cmp::Reverse(c));
    let mut s = FrameSchedule::new(reservations.size(), reservations.frame());
    for (i, o, cells) in entries {
        for _ in 0..cells {
            s.insert(i, o)
                .expect("feasible reservations are always schedulable");
        }
    }
    s
}

/// Builds a schedule that spreads each pair's cells evenly through the
/// frame: the k cells of a reservation go to slots near `j * frame / k`,
/// keeping both the reserved load per slot balanced and each circuit's
/// departures periodic (good jitter).
pub fn build_spread(reservations: &ReservationMatrix) -> FrameSchedule {
    let frame = reservations.frame();
    let n = reservations.size();
    let mut s = FrameSchedule::new(n, frame);
    let mut occupancy = vec![0u32; frame as usize];
    let mut entries = reservations.entries();
    entries.sort_by_key(|&(_, _, c)| std::cmp::Reverse(c));
    for (idx, &(i, o, cells)) in entries.iter().enumerate() {
        // Stagger each circuit's phase so single-cell circuits do not all
        // target slot 0.
        let phase = (idx as u64 * frame as u64 / entries.len().max(1) as u64) as u32;
        for j in 0..cells {
            let ideal = (phase + (j as u64 * frame as u64 / cells as u64) as u32) % frame;
            // Least-loaded free slot; ties broken by cyclic distance from
            // the ideal position, keeping each circuit roughly periodic.
            let best = (0..frame)
                .filter(|&t| s.pair_free(t, i, o))
                .min_by_key(|&t| {
                    let fwd = (t + frame - ideal) % frame;
                    let dist = fwd.min(frame - fwd);
                    (occupancy[t as usize], dist, t)
                });
            match best {
                Some(slot) => {
                    s.insert_hint(slot, i, o);
                    occupancy[slot as usize] += 1;
                }
                None => {
                    // No free pair anywhere: displacement insertion. Total
                    // occupancy is unchanged per slot except the two touched
                    // slots; recompute them afterwards.
                    let trace = s
                        .insert(i, o)
                        .expect("feasible reservations are always schedulable");
                    for m in &trace.moves {
                        occupancy[m.slot as usize] = (0..n)
                            .filter(|&k| s.output_in_slot(m.slot, k).is_some())
                            .count() as u32;
                    }
                }
            }
        }
    }
    s
}

impl FrameSchedule {
    /// Places a cell in a specific slot known to have both ends free.
    /// Used by arrangement heuristics.
    ///
    /// # Panics
    ///
    /// Panics if either end of the pair is busy in `slot`.
    pub(crate) fn insert_hint(&mut self, slot: u32, input: usize, output: usize) {
        assert!(
            self.pair_free(slot, input, output),
            "insert_hint: slot {slot} not free for ({input},{output})"
        );
        self.place(slot, input, output);
    }
}

/// Best-effort opportunity statistics for one (input, output) pair under a
/// frame schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BestEffortStats {
    /// Slots per frame in which a best-effort cell could cross for this
    /// pair (both ends idle).
    pub free_slots: u32,
    /// The largest run of consecutive slots (cyclically) with no
    /// opportunity — the worst-case wait in slots for a newly arrived
    /// best-effort cell.
    pub max_gap: u32,
}

/// Measures best-effort opportunity for a pair.
pub fn best_effort_stats(s: &FrameSchedule, input: usize, output: usize) -> BestEffortStats {
    let frame = s.frame();
    let free: Vec<u32> = (0..frame)
        .filter(|&t| s.pair_free(t, input, output))
        .collect();
    if free.is_empty() {
        return BestEffortStats {
            free_slots: 0,
            max_gap: frame,
        };
    }
    let mut max_gap = 0;
    for (k, &t) in free.iter().enumerate() {
        let next = if k + 1 < free.len() {
            free[k + 1]
        } else {
            free[0] + frame
        };
        max_gap = max_gap.max(next - t - 1);
    }
    BestEffortStats {
        free_slots: free.len() as u32,
        max_gap,
    }
}

/// Mean best-effort free-slot count over all (input, output) pairs.
pub fn mean_free_slots(s: &FrameSchedule) -> f64 {
    let n = s.size();
    let mut total = 0u64;
    for i in 0..n {
        for o in 0..n {
            total += best_effort_stats(s, i, o).free_slots as u64;
        }
    }
    total as f64 / (n * n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use an2_sim::SimRng;

    fn random_reservations(n: usize, frame: u32, fill: f64, seed: u64) -> ReservationMatrix {
        let mut rng = SimRng::new(seed);
        let mut r = ReservationMatrix::new(n, frame);
        let target = (n as f64 * frame as f64 * fill) as u32;
        let mut placed = 0;
        let mut attempts = 0;
        while placed < target && attempts < target * 20 {
            attempts += 1;
            let i = rng.gen_range(n);
            let o = rng.gen_range(n);
            if r.reserve(i, o, 1).is_ok() {
                placed += 1;
            }
        }
        r
    }

    #[test]
    fn both_constructions_satisfy_reservations() {
        for seed in 0..10 {
            let r = random_reservations(8, 32, 0.5, seed);
            assert!(build_packed(&r).satisfies(&r));
            assert!(build_spread(&r).satisfies(&r));
        }
    }

    #[test]
    fn packed_concentrates_load_in_early_slots() {
        let r = random_reservations(8, 32, 0.3, 42);
        let s = build_packed(&r);
        // Count occupied connections per slot: early slots should dominate.
        let half = (0..16).map(|t| occupancy(&s, t)).sum::<u32>();
        let rest = (16..32).map(|t| occupancy(&s, t)).sum::<u32>();
        assert!(half > rest, "first half {half} vs second half {rest}");
    }

    fn occupancy(s: &FrameSchedule, slot: u32) -> u32 {
        (0..s.size())
            .filter(|&i| s.output_in_slot(slot, i).is_some())
            .count() as u32
    }

    #[test]
    fn spread_balances_load_across_slots() {
        let r = random_reservations(8, 32, 0.3, 42);
        let s = build_spread(&r);
        let occ: Vec<u32> = (0..32).map(|t| occupancy(&s, t)).collect();
        let max = *occ.iter().max().unwrap();
        let min = *occ.iter().min().unwrap();
        assert!(
            max - min <= 4,
            "spread schedule imbalanced: occupancies {occ:?}"
        );
    }

    #[test]
    fn spread_gives_lower_best_effort_gaps_than_packed() {
        // The paper's intuition: spreading unreserved slots through the
        // frame reduces the worst-case wait for best-effort cells.
        let r = random_reservations(8, 64, 0.4, 7);
        let packed = build_packed(&r);
        let spread = build_spread(&r);
        let mut packed_worst = 0u64;
        let mut spread_worst = 0u64;
        for i in 0..8 {
            for o in 0..8 {
                packed_worst += best_effort_stats(&packed, i, o).max_gap as u64;
                spread_worst += best_effort_stats(&spread, i, o).max_gap as u64;
            }
        }
        assert!(
            spread_worst < packed_worst,
            "spread total max-gap {spread_worst} !< packed {packed_worst}"
        );
    }

    #[test]
    fn best_effort_stats_on_figure2() {
        // Figure 2, slot 3 (0-based 2) is free for input 2 → output 3
        // (0-based 1 → 2).
        let s = FrameSchedule::figure2();
        let st = best_effort_stats(&s, 1, 2);
        assert_eq!(st.free_slots, 1);
        assert_eq!(st.max_gap, 2);
    }

    #[test]
    fn best_effort_stats_fully_blocked_pair() {
        let mut r = ReservationMatrix::new(2, 2);
        r.reserve(0, 0, 2).unwrap(); // input 0 busy every slot
        let s = build_packed(&r);
        let st = best_effort_stats(&s, 0, 1);
        assert_eq!(st.free_slots, 0);
        assert_eq!(st.max_gap, 2);
    }

    #[test]
    fn empty_schedule_all_free() {
        let s = FrameSchedule::new(4, 16);
        let st = best_effort_stats(&s, 0, 0);
        assert_eq!(st.free_slots, 16);
        assert_eq!(st.max_gap, 0);
        assert_eq!(mean_free_slots(&s), 16.0);
    }

    #[test]
    #[should_panic(expected = "insert_hint")]
    fn insert_hint_rejects_busy_slot() {
        let mut s = FrameSchedule::new(2, 2);
        s.insert_hint(0, 0, 0);
        s.insert_hint(0, 0, 1);
    }
}
