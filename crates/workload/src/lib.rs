//! # an2-workload — application traffic for the AN2 network
//!
//! The paper motivates AN2's two service classes with concrete
//! applications: "a guaranteed traffic stream [...] is well suited to
//! transmitting multi-media data", while "file transfers and
//! remote-procedure call are examples of applications where best-effort
//! scheduling is most appropriate" (§1). This crate provides those
//! workloads as drivers over [`an2::Network`]:
//!
//! * [`CbrStream`] — a constant-bit-rate multimedia source on a guaranteed
//!   circuit (fixed-size packets on a fixed period).
//! * [`FileTransfer`] — a windowed bulk transfer on a best-effort circuit.
//! * [`RpcPair`] — request/response traffic with client-side latency
//!   measurement.
//! * [`PoissonMix`] — background load: Poisson packet arrivals over a set
//!   of circuits.
//!
//! Each driver exposes `tick(net)`, to be called once per batch of slots;
//! drivers never block and are deterministic given the network's seed and
//! their own.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use an2::{Network, VcId};
use an2_cells::Packet;
use an2_sim::metrics::Histogram;
use an2_sim::SimRng;
use an2_topology::HostId;

/// A constant-bit-rate stream: one `packet_bytes` packet every
/// `interval_slots` slots — a digital-audio/video source (§1).
#[derive(Debug)]
pub struct CbrStream {
    vc: VcId,
    packet_bytes: usize,
    interval_slots: u64,
    next_due: u64,
    sent: u64,
}

impl CbrStream {
    /// A stream on an (already opened, typically guaranteed) circuit.
    ///
    /// # Panics
    ///
    /// Panics if `interval_slots == 0`.
    pub fn new(vc: VcId, packet_bytes: usize, interval_slots: u64) -> Self {
        assert!(interval_slots > 0, "interval must be positive");
        CbrStream {
            vc,
            packet_bytes,
            interval_slots,
            next_due: 0,
            sent: 0,
        }
    }

    /// Packets sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// The stream's circuit.
    pub fn vc(&self) -> VcId {
        self.vc
    }

    /// Emits every packet due by the network's current slot.
    ///
    /// # Errors
    ///
    /// Propagates [`an2::NetError`] (e.g. the circuit broke).
    pub fn tick(&mut self, net: &mut Network) -> Result<(), an2::NetError> {
        while self.next_due <= net.slot() {
            net.send_packet(self.vc, Packet::from_bytes(vec![0xCB; self.packet_bytes]))?;
            self.next_due += self.interval_slots;
            self.sent += 1;
        }
        Ok(())
    }
}

/// A windowed bulk transfer: keeps up to `window` packets in the source
/// controller's outbox until `total_packets` have been queued.
#[derive(Debug)]
pub struct FileTransfer {
    vc: VcId,
    packet_bytes: usize,
    remaining: u64,
    window: usize,
    started_slot: Option<u64>,
    finished_slot: Option<u64>,
}

impl FileTransfer {
    /// A transfer of `total_packets` packets of `packet_bytes` each.
    pub fn new(vc: VcId, packet_bytes: usize, total_packets: u64, window: usize) -> Self {
        FileTransfer {
            vc,
            packet_bytes,
            remaining: total_packets,
            window: window.max(1),
            started_slot: None,
            finished_slot: None,
        }
    }

    /// Packets not yet handed to the network.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Slot at which the last packet was queued, once done.
    pub fn finished_slot(&self) -> Option<u64> {
        self.finished_slot
    }

    /// Tops the outbox up to the window.
    ///
    /// # Errors
    ///
    /// Propagates [`an2::NetError`].
    pub fn tick(&mut self, net: &mut Network) -> Result<(), an2::NetError> {
        if self.remaining == 0 {
            return Ok(());
        }
        self.started_slot.get_or_insert(net.slot());
        while self.remaining > 0 && net.outbox_len(self.vc) < self.window {
            net.send_packet(self.vc, Packet::from_bytes(vec![0xF1; self.packet_bytes]))?;
            self.remaining -= 1;
        }
        if self.remaining == 0 {
            self.finished_slot = Some(net.slot());
        }
        Ok(())
    }
}

/// Request/response RPC over a pair of circuits (one per direction), with
/// client-observed round-trip latency.
#[derive(Debug)]
pub struct RpcPair {
    client: HostId,
    server: HostId,
    to_server: VcId,
    to_client: VcId,
    request_bytes: usize,
    reply_bytes: usize,
    outstanding: Option<u64>,
    completed: u64,
    rtt_slots: Histogram,
}

impl RpcPair {
    /// An RPC conversation over two open circuits.
    pub fn new(
        client: HostId,
        server: HostId,
        to_server: VcId,
        to_client: VcId,
        request_bytes: usize,
        reply_bytes: usize,
    ) -> Self {
        RpcPair {
            client,
            server,
            to_server,
            to_client,
            request_bytes,
            reply_bytes,
            outstanding: None,
            completed: 0,
            rtt_slots: Histogram::new(),
        }
    }

    /// Completed round trips.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Round-trip latency samples, in slots.
    pub fn rtt_slots(&mut self) -> &mut Histogram {
        &mut self.rtt_slots
    }

    /// Drives both sides: the server answers arrived requests; the client
    /// issues a new request whenever none is outstanding, and accounts
    /// arrived replies.
    ///
    /// # Errors
    ///
    /// Propagates [`an2::NetError`].
    pub fn tick(&mut self, net: &mut Network) -> Result<(), an2::NetError> {
        // Server: consume requests, send replies.
        let requests = net.take_received(self.server);
        for (vc, _req) in requests {
            if vc == self.to_server {
                net.send_packet(
                    self.to_client,
                    Packet::from_bytes(vec![0x22; self.reply_bytes]),
                )?;
            }
        }
        // Client: consume replies.
        let replies = net.take_received(self.client);
        for (vc, _rep) in replies {
            if vc == self.to_client {
                if let Some(t0) = self.outstanding.take() {
                    self.rtt_slots.record(net.slot() - t0);
                    self.completed += 1;
                }
            }
        }
        // Client: issue the next request.
        if self.outstanding.is_none() {
            net.send_packet(
                self.to_server,
                Packet::from_bytes(vec![0x11; self.request_bytes]),
            )?;
            self.outstanding = Some(net.slot());
        }
        Ok(())
    }
}

/// Background traffic: on each tick, each circuit sends a packet with
/// probability `rate` (Bernoulli approximation of Poisson arrivals).
#[derive(Debug)]
pub struct PoissonMix {
    vcs: Vec<VcId>,
    rate: f64,
    packet_bytes: usize,
    rng: SimRng,
    sent: u64,
}

impl PoissonMix {
    /// Background load over `vcs`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= rate <= 1`.
    pub fn new(vcs: Vec<VcId>, rate: f64, packet_bytes: usize, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        PoissonMix {
            vcs,
            rate,
            packet_bytes,
            rng: SimRng::new(seed),
            sent: 0,
        }
    }

    /// Packets sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// One arrival opportunity per circuit. Broken circuits are skipped.
    pub fn tick(&mut self, net: &mut Network) {
        for &vc in &self.vcs {
            if self.rng.gen_bool(self.rate)
                && !net.is_broken(vc)
                && net
                    .send_packet(vc, Packet::from_bytes(vec![0x99; self.packet_bytes]))
                    .is_ok()
            {
                self.sent += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> (Network, Vec<HostId>) {
        let net = Network::builder().src_installation(6, 8).seed(21).build();
        let hosts = net.hosts().collect();
        (net, hosts)
    }

    #[test]
    fn cbr_stream_sends_on_schedule() {
        let (mut n, h) = net();
        let vc = n.open_guaranteed(h[0], h[1], 64).unwrap();
        let mut s = CbrStream::new(vc, 480, 500);
        for _ in 0..10 {
            s.tick(&mut n).unwrap();
            n.step(500);
        }
        assert_eq!(s.sent(), 10);
        assert_eq!(s.vc(), vc);
        n.step(5_000);
        assert_eq!(n.stats(vc).packets_delivered, 10);
    }

    #[test]
    fn file_transfer_completes_and_respects_window() {
        let (mut n, h) = net();
        let vc = n.open_best_effort(h[2], h[5]).unwrap();
        let mut ft = FileTransfer::new(vc, 960, 40, 4);
        let mut guard = 0;
        while ft.remaining() > 0 {
            ft.tick(&mut n).unwrap();
            assert!(n.outbox_len(vc) <= 4 * 21, "window in packets -> cells");
            n.step(200);
            guard += 1;
            assert!(guard < 1_000, "transfer stalled");
        }
        assert!(ft.finished_slot().is_some());
        n.step(20_000);
        assert_eq!(n.stats(vc).packets_delivered, 40);
    }

    #[test]
    fn rpc_round_trips_accumulate() {
        let (mut n, h) = net();
        let to_server = n.open_best_effort(h[0], h[3]).unwrap();
        let to_client = n.open_best_effort(h[3], h[0]).unwrap();
        let mut rpc = RpcPair::new(h[0], h[3], to_server, to_client, 100, 400);
        // Each round trip spans two ticks: the server replies on the tick
        // after the request lands, the client accounts it one tick later.
        for _ in 0..50 {
            rpc.tick(&mut n).unwrap();
            n.step(400);
        }
        assert!(
            rpc.completed() >= 20,
            "only {} RPCs completed",
            rpc.completed()
        );
        let p50 = rpc.rtt_slots().percentile(0.5).unwrap();
        assert!(p50 > 0);
    }

    #[test]
    fn poisson_mix_approximates_rate() {
        let (mut n, h) = net();
        let vcs: Vec<VcId> = (0..4)
            .map(|k| n.open_best_effort(h[k], h[k + 4]).unwrap())
            .collect();
        let mut bg = PoissonMix::new(vcs, 0.25, 480, 5);
        for _ in 0..1_000 {
            bg.tick(&mut n);
            n.step(50);
        }
        let expect = 1_000.0 * 4.0 * 0.25;
        assert!(
            (bg.sent() as f64 - expect).abs() < expect * 0.2,
            "sent {} vs expected {expect}",
            bg.sent()
        );
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn cbr_zero_interval_rejected() {
        CbrStream::new(VcId::new(1), 100, 0);
    }

    #[test]
    fn cbr_surfaces_broken_circuit() {
        let mut n = Network::builder().ring(3, 3).seed(9).build();
        let hosts: Vec<_> = n.hosts().collect();
        let vc = n.open_best_effort(hosts[0], hosts[1]).unwrap();
        let (host_link, _) = n.topology().host_attachments(hosts[0])[0];
        n.fail_link(host_link);
        let mut s = CbrStream::new(vc, 100, 10);
        assert!(s.tick(&mut n).is_err());
    }

    #[test]
    fn guaranteed_stream_has_less_jitter_than_best_effort_under_load() {
        // §1: guaranteed streams are "assured of receiving a specified
        // bandwidth with bounded delay and jitter" — the reason multimedia
        // rides the guaranteed class. Run identical CBR streams over both
        // classes while a flood shares their path; compare latency spread.
        let mut n = Network::builder()
            .src_installation(6, 8)
            .frame_slots(128)
            .seed(77)
            .build();
        let hosts: Vec<_> = n.hosts().collect();
        let gt = n.open_guaranteed(hosts[0], hosts[4], 32).unwrap();
        let be = n.open_best_effort(hosts[1], hosts[4]).unwrap();
        let flood = n.open_best_effort(hosts[2], hosts[4]).unwrap();
        let mut gt_stream = CbrStream::new(gt, 480, 256);
        let mut be_stream = CbrStream::new(be, 480, 256);
        let mut flood_ft = FileTransfer::new(flood, 9600, 500, 16);
        for _ in 0..200 {
            gt_stream.tick(&mut n).unwrap();
            be_stream.tick(&mut n).unwrap();
            flood_ft.tick(&mut n).unwrap();
            n.step(256);
        }
        n.step(50_000);
        let spread = |vc| {
            let mut h = n.stats(vc).latency_slots.clone();
            h.percentile(0.99).unwrap() - h.percentile(0.01).unwrap()
        };
        let gt_jitter = spread(gt);
        let be_jitter = spread(be);
        assert!(
            gt_jitter <= be_jitter,
            "guaranteed jitter {gt_jitter} should not exceed best-effort {be_jitter}"
        );
        // And the guaranteed stream never lost a packet to the flood.
        assert_eq!(n.stats(gt).packets_delivered, gt_stream.sent());
    }
}
