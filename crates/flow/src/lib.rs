//! # an2-flow — credit-based flow control for best-effort traffic (§5)
//!
//! "Buffers for each best-effort virtual circuit traversing the link are
//! allocated at the downstream switch. The upstream switch maintains a
//! credit balance for buffers in the downstream switch; this is the number
//! of buffers known to be empty. Whenever the upstream switch sends a cell,
//! it decrements the balance for the corresponding virtual circuit. Whenever
//! a cell buffer is freed in the downstream switch [...] a credit is
//! transmitted back to the upstream switch [...] Cells are only transmitted
//! for circuits with non-zero credit balances."
//!
//! * [`CreditSender`] / [`CreditReceiver`] — the per-circuit state machines
//!   at the two ends of a link (Figure 4).
//! * [`resync`] — the credit resynchronization protocol the paper leaves as
//!   "an interesting problem in distributed computing": absolute counters
//!   plus credit epochs (see DESIGN.md §4).
//! * [`round_trip_credits`] — buffer sizing: full link rate requires credits
//!   covering one link round-trip.
//! * [`LinkSim`] — a slot-stepped simulator of one flow-controlled link with
//!   credit loss injection, used by experiments F4 and E10.
//! * [`sharing`] — the paper's dynamic-buffer-allocation extension: one
//!   link's circuits drawing downstream buffers from a shared pool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod credit;
mod link;
pub mod resync;
pub mod sharing;

pub use credit::{CreditReceiver, CreditSender, Overflow};
pub use link::{LinkSim, LinkSimConfig, LinkSimReport};

use an2_cells::LinkRate;
use an2_sim::SimDuration;

/// The number of credits (downstream buffers) a circuit needs to sustain the
/// full link rate: enough to cover cells in flight for one round-trip, plus
/// the cell being transmitted.
///
/// "To guarantee that it never [runs out of credits], it must start with
/// enough credits to cover a roundtrip on the link; this allows time for the
/// cell to reach the downstream switch and a credit to be returned." (§5)
///
/// ```
/// use an2_flow::round_trip_credits;
/// use an2_cells::LinkRate;
/// use an2_sim::SimDuration;
/// // 10 km of fibre ≈ 50 µs one way; at 622 Mb/s a slot is ~681 ns.
/// let credits = round_trip_credits(LinkRate::Mbps622, SimDuration::from_micros(50));
/// assert!(credits >= 140 && credits <= 160);
/// ```
pub fn round_trip_credits(rate: LinkRate, one_way_latency: SimDuration) -> u32 {
    let slot = rate.slot_duration().as_nanos().max(1);
    let round_trip = 2 * one_way_latency.as_nanos();
    (round_trip.div_ceil(slot) + 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_credits_scale_with_latency() {
        let short = round_trip_credits(LinkRate::Mbps622, SimDuration::from_micros(1));
        let long = round_trip_credits(LinkRate::Mbps622, SimDuration::from_micros(50));
        assert!(short < long);
        assert_eq!(short, 4); // 2us round trip / 681ns + 1
    }

    #[test]
    fn round_trip_credits_minimum_one() {
        assert!(round_trip_credits(LinkRate::Gbps1, SimDuration::ZERO) >= 1);
    }

    #[test]
    fn paper_memory_arithmetic_is_modest() {
        // §5: 1000 virtual circuits per link, 10 km maximum link length —
        // "the required memory costs much less than the opto-electronics".
        // 10 km ≈ 50 µs one-way at 2/3 c.
        let per_vc = round_trip_credits(LinkRate::Mbps622, SimDuration::from_micros(50));
        let total_cells = per_vc as u64 * 1000;
        let bytes = total_cells * 53;
        assert!(
            bytes < 16 * 1024 * 1024,
            "buffer memory {bytes} bytes should be well under 16 MiB"
        );
    }
}
