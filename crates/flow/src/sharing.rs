//! Dynamic buffer allocation across the circuits of one link (§5, future
//! work).
//!
//! "The initial AN2 implementation statically allocates this number of
//! buffers to each best-effort virtual circuit. For a lightly-used circuit,
//! this may be more buffers than necessary. More sophisticated schemes,
//! such as dynamically altering buffer allocation based on use, may be
//! considered later. This could allow the link to support more virtual
//! circuits without adversely affecting performance."
//!
//! [`SharedLinkSim`] models one link carrying many best-effort circuits
//! whose downstream buffers come from a common pool of fixed total size.
//! Under [`AllocationPolicy::Static`] every circuit owns `total / vcs`
//! buffers forever; under [`AllocationPolicy::Dynamic`] an allocator
//! periodically redistributes the pool in proportion to each circuit's
//! recent arrivals (with a one-buffer floor so no circuit deadlocks).
//! Reallocations take effect as cells drain: a circuit can never hold more
//! cells than its previous allocation admitted, so the pool is never
//! physically over-committed.

use an2_sim::SimRng;
use std::collections::VecDeque;

/// How downstream buffers are divided among a link's circuits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AllocationPolicy {
    /// Equal fixed shares, as in the initial AN2 implementation.
    Static,
    /// Periodic proportional reallocation by recent use (EWMA), floor 1.
    Dynamic {
        /// Slots between allocator runs.
        adapt_interval: u64,
        /// EWMA smoothing for the per-circuit arrival rate, in `(0, 1]`.
        alpha: f64,
    },
}

/// Configuration of a [`SharedLinkSim`].
#[derive(Debug, Clone)]
pub struct SharedLinkConfig {
    /// Circuits sharing the link.
    pub vcs: usize,
    /// Total downstream buffers shared by all circuits.
    pub total_buffers: u32,
    /// One-way latency in slots (cells down, credits back).
    pub latency_slots: u32,
    /// Per-circuit offered load (cells per slot, summing to link demand).
    pub demand: Vec<f64>,
    /// The allocation policy under test.
    pub policy: AllocationPolicy,
}

/// Results of a shared-link run.
#[derive(Debug, Clone)]
pub struct SharedLinkReport {
    /// Slots simulated.
    pub slots: u64,
    /// Cells offered per circuit.
    pub offered: Vec<u64>,
    /// Cells delivered (forwarded downstream) per circuit.
    pub delivered: Vec<u64>,
    /// Aggregate link utilization: delivered / slots.
    pub utilization: f64,
    /// Times the allocator changed the allocation (0 under Static).
    pub reallocations: u64,
}

impl SharedLinkReport {
    /// Delivered cells of circuit `vc` as a fraction of its offered cells.
    pub fn acceptance(&self, vc: usize) -> f64 {
        if self.offered[vc] == 0 {
            1.0
        } else {
            self.delivered[vc] as f64 / self.offered[vc] as f64
        }
    }
}

struct VcState {
    /// Cells queued upstream, by arrival slot.
    queue: VecDeque<u64>,
    /// Cells sent but whose credit has not returned.
    outstanding: u32,
    /// Buffers currently allocated.
    alloc: u32,
    /// EWMA of arrivals per adapt interval.
    rate: f64,
    /// Arrivals since the last allocator run.
    recent: u64,
}

/// A slot-stepped simulation of one link with a shared downstream buffer
/// pool. See the [module docs](self).
pub struct SharedLinkSim {
    cfg: SharedLinkConfig,
    vcs: Vec<VcState>,
    /// (arrival slot, vc) for cells in flight downstream.
    cells_in_flight: VecDeque<(u64, usize)>,
    /// (arrival slot, vc) for credits in flight upstream.
    credits_in_flight: VecDeque<(u64, usize)>,
    now: u64,
    rotor: usize,
}

impl SharedLinkSim {
    /// Creates the simulator.
    ///
    /// # Panics
    ///
    /// Panics if the demand vector length disagrees with `vcs`, or if the
    /// pool cannot give every circuit at least one buffer.
    pub fn new(cfg: SharedLinkConfig) -> Self {
        assert_eq!(cfg.demand.len(), cfg.vcs, "demand per circuit");
        assert!(
            cfg.total_buffers as usize >= cfg.vcs,
            "need at least one buffer per circuit"
        );
        let equal = cfg.total_buffers / cfg.vcs as u32;
        let vcs = (0..cfg.vcs)
            .map(|_| VcState {
                queue: VecDeque::new(),
                outstanding: 0,
                alloc: equal.max(1),
                rate: 0.0,
                recent: 0,
            })
            .collect();
        SharedLinkSim {
            cfg,
            vcs,
            cells_in_flight: VecDeque::new(),
            credits_in_flight: VecDeque::new(),
            now: 0,
            rotor: 0,
        }
    }

    fn reallocate(&mut self, alpha: f64) -> bool {
        for vc in &mut self.vcs {
            vc.rate = vc.rate * (1.0 - alpha) + vc.recent as f64 * alpha;
            vc.recent = 0;
        }
        let total_rate: f64 = self.vcs.iter().map(|v| v.rate).sum();
        let pool = self.cfg.total_buffers;
        let floor = 1u32;
        let spare = pool - self.cfg.vcs as u32 * floor;
        let mut new_alloc: Vec<u32> = self
            .vcs
            .iter()
            .map(|v| {
                let share = if total_rate > 0.0 {
                    (spare as f64 * v.rate / total_rate).floor() as u32
                } else {
                    spare / self.cfg.vcs as u32
                };
                floor + share
            })
            .collect();
        // Distribute rounding leftovers to the busiest circuits.
        let mut used: u32 = new_alloc.iter().sum();
        let mut order: Vec<usize> = (0..self.cfg.vcs).collect();
        order.sort_by(|&a, &b| self.vcs[b].rate.total_cmp(&self.vcs[a].rate));
        let mut k = 0;
        while used < pool {
            new_alloc[order[k % order.len()]] += 1;
            used += 1;
            k += 1;
        }
        let changed = self.vcs.iter().zip(&new_alloc).any(|(v, &a)| v.alloc != a);
        for (v, a) in self.vcs.iter_mut().zip(new_alloc) {
            v.alloc = a;
        }
        changed
    }

    /// Runs `slots` slots, continuing from the previous state.
    pub fn run(&mut self, slots: u64, rng: &mut SimRng) -> SharedLinkReport {
        let n = self.cfg.vcs;
        let lat = self.cfg.latency_slots as u64;
        let mut offered = vec![0u64; n];
        let mut delivered = vec![0u64; n];
        let mut reallocations = 0u64;
        for _ in 0..slots {
            let now = self.now;
            // Credits return.
            while self
                .credits_in_flight
                .front()
                .is_some_and(|&(t, _)| t <= now)
            {
                let (_, vc) = self.credits_in_flight.pop_front().unwrap();
                self.vcs[vc].outstanding -= 1;
            }
            // Cells land downstream and are forwarded next slot (the
            // crossbar is uncontended in this model): credit heads back.
            while self.cells_in_flight.front().is_some_and(|&(t, _)| t <= now) {
                let (_, vc) = self.cells_in_flight.pop_front().unwrap();
                delivered[vc] += 1;
                self.credits_in_flight.push_back((now + lat, vc));
            }
            // Arrivals.
            for (vc, load) in self.cfg.demand.clone().into_iter().enumerate() {
                if rng.gen_bool(load) {
                    self.vcs[vc].queue.push_back(now);
                    self.vcs[vc].recent += 1;
                    offered[vc] += 1;
                }
            }
            // Allocator.
            if let AllocationPolicy::Dynamic {
                adapt_interval,
                alpha,
            } = self.cfg.policy
            {
                if now > 0 && now.is_multiple_of(adapt_interval) && self.reallocate(alpha) {
                    reallocations += 1;
                }
            }
            // The link carries one cell per slot: round-robin over circuits
            // that have a queued cell and a free downstream buffer.
            let start = self.rotor;
            for k in 0..n {
                let vc = (start + k) % n;
                let st = &mut self.vcs[vc];
                if !st.queue.is_empty() && st.outstanding < st.alloc {
                    st.queue.pop_front();
                    st.outstanding += 1;
                    self.cells_in_flight.push_back((now + lat, vc));
                    self.rotor = (vc + 1) % n;
                    break;
                }
            }
            self.now += 1;
        }
        let total_delivered: u64 = delivered.iter().sum();
        SharedLinkReport {
            slots,
            offered,
            delivered,
            utilization: total_delivered as f64 / slots as f64,
            reallocations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Demand: a few hot circuits, many idle — the scenario the paper's
    /// dynamic-allocation remark targets.
    fn skewed_demand(vcs: usize, hot: usize, hot_load: f64) -> Vec<f64> {
        (0..vcs)
            .map(|k| if k < hot { hot_load } else { 0.001 })
            .collect()
    }

    fn run(
        policy: AllocationPolicy,
        vcs: usize,
        buffers: u32,
        demand: Vec<f64>,
    ) -> SharedLinkReport {
        let mut sim = SharedLinkSim::new(SharedLinkConfig {
            vcs,
            total_buffers: buffers,
            latency_slots: 8,
            demand,
            policy,
        });
        sim.run(60_000, &mut SimRng::new(99))
    }

    #[test]
    fn dynamic_beats_static_under_skew_at_tight_memory() {
        // 32 circuits, 64 buffers: static gives each 2 buffers, far below
        // the 16-slot round trip, so the 3 hot circuits are throttled to
        // 2/16 of the link each. Dynamic concentrates buffers on them.
        let vcs = 32;
        let buffers = 64;
        let demand = skewed_demand(vcs, 3, 0.33);
        let stat = run(AllocationPolicy::Static, vcs, buffers, demand.clone());
        let dyna = run(
            AllocationPolicy::Dynamic {
                adapt_interval: 500,
                alpha: 0.3,
            },
            vcs,
            buffers,
            demand,
        );
        assert!(dyna.reallocations > 0);
        assert!(
            dyna.utilization > stat.utilization + 0.3,
            "dynamic {:.3} vs static {:.3}",
            dyna.utilization,
            stat.utilization
        );
        assert!(dyna.utilization > 0.9, "hot circuits should fill the link");
    }

    #[test]
    fn equal_demand_policies_tie() {
        let vcs = 8;
        let buffers = 160; // 20 per circuit > round trip: nobody throttled
        let demand = vec![0.1; vcs];
        let stat = run(AllocationPolicy::Static, vcs, buffers, demand.clone());
        let dyna = run(
            AllocationPolicy::Dynamic {
                adapt_interval: 500,
                alpha: 0.3,
            },
            vcs,
            buffers,
            demand,
        );
        assert!((stat.utilization - dyna.utilization).abs() < 0.02);
    }

    #[test]
    fn floor_prevents_starvation() {
        // Even a nearly idle circuit keeps one buffer and can still move
        // cells under dynamic allocation.
        let vcs = 16;
        let demand = skewed_demand(vcs, 2, 0.45);
        let r = run(
            AllocationPolicy::Dynamic {
                adapt_interval: 250,
                alpha: 0.5,
            },
            vcs,
            32,
            demand,
        );
        for vc in 2..vcs {
            assert!(
                r.acceptance(vc) > 0.5,
                "cold circuit {vc} starved: {:.2} ({} of {})",
                r.acceptance(vc),
                r.delivered[vc],
                r.offered[vc]
            );
        }
    }

    #[test]
    fn conservation_per_circuit() {
        let vcs = 4;
        let r = run(AllocationPolicy::Static, vcs, 16, vec![0.2; vcs]);
        for vc in 0..vcs {
            assert!(r.delivered[vc] <= r.offered[vc]);
            // At this light load everything queued eventually moves.
            assert!(r.acceptance(vc) > 0.95);
        }
    }

    #[test]
    #[should_panic(expected = "at least one buffer")]
    fn pool_too_small_rejected() {
        SharedLinkSim::new(SharedLinkConfig {
            vcs: 8,
            total_buffers: 4,
            latency_slots: 1,
            demand: vec![0.1; 8],
            policy: AllocationPolicy::Static,
        });
    }
}
