//! A slot-stepped simulation of one flow-controlled link (Figure 4).
//!
//! One virtual circuit crosses a link from an upstream switch to a
//! downstream switch. Cells take `latency_slots` to propagate; credits take
//! the same on the way back and may be lost with a configurable probability.
//! The downstream switch forwards a buffered cell each slot with probability
//! `forward_prob` (modelling crossbar contention). The simulator checks the
//! §5 invariants every slot: the downstream buffer never overflows and no
//! cell is ever dropped.

use crate::credit::{CreditReceiver, CreditSender};
use crate::resync;
use an2_sim::SimRng;
use an2_trace::{TraceEvent, Tracer};
use std::collections::VecDeque;

/// Configuration of a [`LinkSim`].
#[derive(Debug, Clone)]
pub struct LinkSimConfig {
    /// Downstream buffers allocated to the circuit (= initial credits).
    pub credits: u32,
    /// One-way propagation delay, in cell slots, for both cells and credits.
    pub latency_slots: u32,
    /// Probability that a returning credit is lost in transit.
    pub credit_loss: f64,
    /// Probability per slot that the downstream switch can forward a
    /// buffered cell (1.0 = no contention).
    pub forward_prob: f64,
    /// If non-zero, the upstream end triggers a credit resynchronization
    /// every this many slots.
    pub resync_interval: u64,
}

impl Default for LinkSimConfig {
    fn default() -> Self {
        LinkSimConfig {
            credits: 4,
            latency_slots: 2,
            credit_loss: 0.0,
            forward_prob: 1.0,
            resync_interval: 0,
        }
    }
}

/// What one run of the link simulator observed.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSimReport {
    /// Slots simulated.
    pub slots: u64,
    /// Cells the source wanted to send (always-backlogged source: = slots).
    pub offered: u64,
    /// Cells transmitted by the upstream switch.
    pub sent: u64,
    /// Cells forwarded onward by the downstream switch.
    pub forwarded: u64,
    /// Slots in which the sender was blocked with zero credits.
    pub stalled_slots: u64,
    /// Credits lost in transit.
    pub credits_lost: u64,
    /// Resynchronizations performed.
    pub resyncs: u64,
}

impl LinkSimReport {
    /// Fraction of link capacity achieved by the circuit.
    pub fn throughput(&self) -> f64 {
        self.sent as f64 / self.slots as f64
    }
}

/// The link simulator. The traffic source is always backlogged, so measured
/// throughput isolates the effect of the credit protocol.
#[derive(Debug)]
pub struct LinkSim {
    cfg: LinkSimConfig,
    sender: CreditSender,
    receiver: CreditReceiver,
    /// Cells in flight: slot at which each arrives downstream.
    cells_in_flight: VecDeque<u64>,
    /// Credits in flight: (arrival slot, epoch).
    credits_in_flight: VecDeque<(u64, u32)>,
    /// Markers in flight: (arrival slot, marker).
    markers_in_flight: VecDeque<(u64, resync::Marker)>,
    /// Replies in flight: (arrival slot, reply).
    replies_in_flight: VecDeque<(u64, resync::Reply)>,
    /// The simulator's persistent clock, so consecutive [`LinkSim::run`]
    /// calls continue the same timeline.
    now: u64,
    /// Flight-recorder handle, Option-gated like the fault layer, plus the
    /// link/vc identity its events are attributed to.
    tracer: Option<Tracer>,
    trace_link: u32,
    trace_vc: u32,
}

impl LinkSim {
    /// Creates a simulator for one circuit over one link.
    pub fn new(cfg: LinkSimConfig) -> Self {
        let sender = CreditSender::new(cfg.credits);
        let receiver = CreditReceiver::new(cfg.credits);
        LinkSim {
            cfg,
            sender,
            receiver,
            cells_in_flight: VecDeque::new(),
            credits_in_flight: VecDeque::new(),
            markers_in_flight: VecDeque::new(),
            replies_in_flight: VecDeque::new(),
            now: 0,
            tracer: None,
            trace_link: 0,
            trace_vc: 0,
        }
    }

    /// Attaches a flight recorder; credit sends/consumes and resync
    /// epochs are emitted attributed to `link`/`vc`. Tracing observes
    /// decisions already taken — it draws no randomness and changes no
    /// protocol state, so a traced run is identical to an untraced one.
    pub fn attach_tracer(&mut self, tracer: Tracer, link: u32, vc: u32) {
        self.tracer = Some(tracer);
        self.trace_link = link;
        self.trace_vc = vc;
    }

    /// Runs `slots` slots and reports.
    ///
    /// # Panics
    ///
    /// Panics if the downstream buffer overflows — the invariant the credit
    /// protocol guarantees, so an overflow is a protocol bug worth crashing
    /// on.
    pub fn run(&mut self, slots: u64, rng: &mut SimRng) -> LinkSimReport {
        let mut report = LinkSimReport {
            slots,
            offered: slots,
            sent: 0,
            forwarded: 0,
            stalled_slots: 0,
            credits_lost: 0,
            resyncs: 0,
        };
        let lat = self.cfg.latency_slots as u64;
        for _ in 0..slots {
            let now = self.now;
            if let Some(t) = &self.tracer {
                t.set_slot(now);
            }
            // Arrivals downstream.
            while self.cells_in_flight.front().is_some_and(|&t| t <= now) {
                self.cells_in_flight.pop_front();
                self.receiver
                    .on_cell()
                    .expect("credit protocol must prevent buffer overflow");
            }
            while self
                .markers_in_flight
                .front()
                .is_some_and(|&(t, _)| t <= now)
            {
                let (_, marker) = self.markers_in_flight.pop_front().unwrap();
                let reply = resync::handle_marker(&mut self.receiver, marker);
                self.replies_in_flight.push_back((now + lat, reply));
            }
            // Arrivals upstream.
            while self
                .credits_in_flight
                .front()
                .is_some_and(|&(t, _)| t <= now)
            {
                let (_, epoch) = self.credits_in_flight.pop_front().unwrap();
                self.sender.on_credit_with_epoch(epoch);
            }
            while self
                .replies_in_flight
                .front()
                .is_some_and(|&(t, _)| t <= now)
            {
                let (_, reply) = self.replies_in_flight.pop_front().unwrap();
                resync::finish(&mut self.sender, reply);
                if let Some(t) = &self.tracer {
                    t.emit(TraceEvent::ResyncComplete {
                        vc: self.trace_vc,
                        link: self.trace_link,
                        epoch: reply.epoch,
                    });
                }
            }
            // Periodic resync trigger.
            if self.cfg.resync_interval > 0
                && now > 0
                && now.is_multiple_of(self.cfg.resync_interval)
            {
                let marker = resync::begin(&mut self.sender);
                self.markers_in_flight.push_back((now + lat, marker));
                report.resyncs += 1;
                if let Some(t) = &self.tracer {
                    t.emit(TraceEvent::ResyncBegin {
                        vc: self.trace_vc,
                        link: self.trace_link,
                        epoch: marker.epoch,
                    });
                }
            }
            // Downstream forwards (frees a buffer, returns a credit).
            if self.receiver.has_cell() && rng.gen_bool(self.cfg.forward_prob) {
                if let Some(epoch) = self.receiver.forward() {
                    report.forwarded += 1;
                    if rng.gen_bool(self.cfg.credit_loss) {
                        report.credits_lost += 1;
                    } else {
                        self.credits_in_flight.push_back((now + lat, epoch));
                        if let Some(t) = &self.tracer {
                            t.emit(TraceEvent::CreditSend {
                                vc: self.trace_vc,
                                link: self.trace_link,
                                epoch,
                            });
                        }
                    }
                }
            }
            // Upstream sends if it has credit (source always backlogged).
            if self.sender.try_send() {
                report.sent += 1;
                self.cells_in_flight.push_back(now + lat);
                if let Some(t) = &self.tracer {
                    t.emit(TraceEvent::CreditConsume {
                        vc: self.trace_vc,
                        balance: self.sender.balance(),
                    });
                }
            } else {
                report.stalled_slots += 1;
            }
            self.now += 1;
        }
        report
    }

    /// The sender's current credit balance (for test inspection).
    pub fn sender_balance(&self) -> u32 {
        self.sender.balance()
    }

    /// Buffers occupied downstream (for test inspection).
    pub fn receiver_occupied(&self) -> u32 {
        self.receiver.occupied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cfg: LinkSimConfig, slots: u64, seed: u64) -> LinkSimReport {
        LinkSim::new(cfg).run(slots, &mut SimRng::new(seed))
    }

    #[test]
    fn full_rate_with_round_trip_credits() {
        // credits >= 2*latency + 1 sustains line rate (§5).
        let cfg = LinkSimConfig {
            credits: 5,
            latency_slots: 2,
            ..Default::default()
        };
        let r = run(cfg, 10_000, 1);
        assert!(
            r.throughput() > 0.999,
            "throughput {} with ample credits",
            r.throughput()
        );
        assert_eq!(r.stalled_slots, 0);
    }

    #[test]
    fn starved_below_round_trip_credits() {
        // In this model a cell sent at slot t is forwarded at t+L and its
        // credit is usable again at t+2L, so the round trip is 2L slots and
        // throughput caps at c / 2L: each credit completes one send per
        // round trip.
        let cfg = LinkSimConfig {
            credits: 2,
            latency_slots: 2,
            ..Default::default()
        };
        let r = run(cfg, 10_000, 2);
        let expect = 2.0 / 4.0;
        assert!(
            (r.throughput() - expect).abs() < 0.05,
            "throughput {} vs expected {expect}",
            r.throughput()
        );
        assert!(r.stalled_slots > 0);
    }

    #[test]
    fn throughput_scales_linearly_with_credits() {
        let mut last = 0.0;
        for credits in 1..=4 {
            let cfg = LinkSimConfig {
                credits,
                latency_slots: 2,
                ..Default::default()
            };
            let t = run(cfg, 20_000, 3).throughput();
            assert!(t > last, "credits={credits}: {t} !> {last}");
            last = t;
        }
        assert!(last > 0.999, "4 credits cover the 4-slot round trip");
    }

    #[test]
    fn lossless_under_downstream_contention() {
        // Slow downstream (30% forward probability): the sender must stall
        // rather than overflow. LinkSim::run panics on overflow.
        let cfg = LinkSimConfig {
            credits: 3,
            latency_slots: 1,
            forward_prob: 0.3,
            ..Default::default()
        };
        let r = run(cfg, 20_000, 4);
        // Throughput tracks the downstream service rate, not the link rate.
        assert!((r.throughput() - 0.3).abs() < 0.03);
        // Cells never dropped: sent = forwarded + in flight + buffered.
        assert!(r.sent >= r.forwarded);
        assert!(r.sent - r.forwarded <= 3 + 1);
    }

    #[test]
    fn lost_credits_only_degrade_performance() {
        // "With credits, a lost message can only cause reduced performance."
        let lossy = LinkSimConfig {
            credits: 8,
            latency_slots: 2,
            credit_loss: 0.01,
            ..Default::default()
        };
        let r = run(lossy, 30_000, 5);
        assert!(r.credits_lost > 0, "loss injection must trigger");
        // Still lossless (no panic), but throughput collapses as the credit
        // pool drains: every lost credit permanently removes one until the
        // pool is empty.
        assert!(r.throughput() < 1.0);
        assert!(r.forwarded > 0);
    }

    #[test]
    fn resync_restores_throughput_after_loss() {
        // Same loss rate, but periodic resynchronization keeps refilling
        // the pool, so long-run throughput stays high.
        let no_resync = LinkSimConfig {
            credits: 8,
            latency_slots: 2,
            credit_loss: 0.01,
            ..Default::default()
        };
        let with_resync = LinkSimConfig {
            resync_interval: 200,
            ..no_resync.clone()
        };
        let r_plain = run(no_resync, 60_000, 6);
        let r_sync = run(with_resync, 60_000, 6);
        assert!(r_sync.resyncs > 0);
        assert!(
            r_sync.throughput() > r_plain.throughput() + 0.2,
            "resync {:.3} vs plain {:.3}",
            r_sync.throughput(),
            r_plain.throughput()
        );
        assert!(r_sync.throughput() > 0.75);
    }

    #[test]
    fn resync_under_heavy_loss_never_overflows() {
        // Brutal loss plus frequent resyncs: correctness (no overflow panic)
        // is the assertion; run() checks it internally every slot.
        let cfg = LinkSimConfig {
            credits: 6,
            latency_slots: 3,
            credit_loss: 0.3,
            forward_prob: 0.8,
            resync_interval: 100,
        };
        let r = run(cfg, 50_000, 7);
        assert!(r.resyncs >= 490);
        assert!(r.forwarded > 5_000);
    }

    #[test]
    fn zero_latency_link() {
        let cfg = LinkSimConfig {
            credits: 1,
            latency_slots: 0,
            ..Default::default()
        };
        let r = run(cfg, 1_000, 8);
        // One credit, zero latency: the credit returns in the same slot the
        // cell is forwarded, so the circuit alternates at worst; with
        // same-slot returns it can reach full rate.
        assert!(r.throughput() >= 0.5);
    }

    #[test]
    fn report_consistency() {
        let cfg = LinkSimConfig::default();
        let r = run(cfg, 5_000, 9);
        assert_eq!(r.slots, 5_000);
        assert_eq!(r.offered, 5_000);
        assert_eq!(r.sent + r.stalled_slots, r.slots);
    }

    #[test]
    fn tracer_records_credit_and_resync_lifecycle_without_changing_the_run() {
        use an2_trace::{TraceConfig, Tracer};
        let cfg = LinkSimConfig {
            credits: 6,
            latency_slots: 2,
            credit_loss: 0.05,
            resync_interval: 300,
            ..Default::default()
        };

        let baseline = LinkSim::new(cfg.clone()).run(5_000, &mut SimRng::new(21));

        let tracer = Tracer::new(TraceConfig::default());
        let mut sim = LinkSim::new(cfg);
        sim.attach_tracer(tracer.clone(), 9, 77);
        let traced = sim.run(5_000, &mut SimRng::new(21));

        assert_eq!(baseline, traced, "tracing must not perturb the protocol");

        let records = tracer.records();
        let count = |k: &str| records.iter().filter(|r| r.event.kind() == k).count() as u64;
        // The ring holds the tail of the run; totals come from seen().
        assert!(tracer.events_seen() >= traced.sent);
        assert!(count("resync_begin") > 0);
        assert!(count("resync_complete") > 0);
        assert!(count("credit_send") > 0);
        assert!(records.iter().all(|r| match r.event {
            TraceEvent::CreditSend { vc, link, .. } => vc == 77 && link == 9,
            _ => true,
        }));
    }
}
