//! Credit resynchronization (§5).
//!
//! "With credits, a lost message can only cause reduced performance.
//! Performance can be regained by having the upstream switch periodically
//! trigger a re-synchronization of credits. Devising the re-synchronization
//! protocol is in itself an interesting problem in distributed computing,
//! but we will not cover it here."
//!
//! The protocol implemented here (documented in DESIGN.md §4):
//!
//! 1. Both ends keep monotone absolute counters — `sent` upstream,
//!    `forwarded` downstream — which are never lost because they are local.
//! 2. The upstream end sends a **marker** `(epoch, sent)`; each marker
//!    increments the epoch.
//! 3. The downstream end records the epoch (stamping it on all subsequent
//!    credits) and replies `(epoch, forwarded)`.
//! 4. On the reply, the upstream end sets
//!    `balance = capacity − (sent − forwarded)`: exactly the buffers not
//!    occupied by cells that are in flight or still queued downstream.
//! 5. Credits stamped with an older epoch are ignored — they are already
//!    accounted for inside `forwarded`, so double-counting is impossible.
//!
//! The protocol is idempotent and tolerates arbitrary loss of markers,
//! replies and credits: any later resync supersedes an incomplete one.
//! It can only *under*-estimate the balance transiently (cells in flight at
//! marker time count as outstanding), never over-estimate, so buffer
//! overflow remains impossible.

use crate::credit::{CreditReceiver, CreditSender};
use serde::{Deserialize, Serialize};

/// A resynchronization marker, sent upstream → downstream in-band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Marker {
    /// The new credit epoch.
    pub epoch: u32,
    /// The sender's absolute sent counter at marker time. The plain
    /// [`handle_marker`] ignores it (and makes traces self-describing);
    /// [`handle_marker_lossy`] uses it to reconcile cells lost on the link.
    pub sent: u64,
}

/// The downstream reply to a [`Marker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reply {
    /// Echoes the marker's epoch.
    pub epoch: u32,
    /// The receiver's absolute forwarded counter.
    pub forwarded: u64,
}

/// Starts a resynchronization at the upstream end: bumps the epoch (so
/// stale credits will be ignored) and produces the marker to transmit.
pub fn begin(sender: &mut CreditSender) -> Marker {
    let (epoch, sent) = sender.begin_resync();
    Marker { epoch, sent }
}

/// Handles a marker at the downstream end, producing the reply. All credits
/// emitted after this carry the new epoch.
pub fn handle_marker(receiver: &mut CreditReceiver, marker: Marker) -> Reply {
    let forwarded = receiver.handle_marker(marker.epoch);
    Reply {
        epoch: marker.epoch,
        forwarded,
    }
}

/// Handles a marker at the downstream end of a link that may *lose cells in
/// flight* (a faulty wire or a crashed line card), producing the reply.
///
/// The plain [`handle_marker`] reply reports the receiver's own `forwarded`
/// counter, which never accounts for cells that vanished between the ends —
/// their credits would stay lost forever. This variant instead reports
/// `marker.sent − occupied`: every cell the sender had sent by marker time
/// that is not sitting in a buffer right now has either been forwarded or
/// destroyed, and both deserve their credit back.
///
/// **Safety requirement:** the marker must travel the same FIFO channel as
/// the data cells, so that when it arrives every cell sent before it has
/// either arrived (occupied or forwarded) or been lost. Then
/// `reply.forwarded ≤ marker.sent ≤ sender.sent`, the balance computed by
/// [`finish`] never exceeds `capacity − in-flight`, and over-estimation
/// remains impossible.
pub fn handle_marker_lossy(receiver: &mut CreditReceiver, marker: Marker) -> Reply {
    let _own_forwarded = receiver.handle_marker(marker.epoch); // stamps the epoch
    Reply {
        epoch: marker.epoch,
        forwarded: marker.sent.saturating_sub(receiver.occupied() as u64),
    }
}

/// Completes the resynchronization at the upstream end. Replies to stale
/// markers (superseded by a newer resync) are ignored.
pub fn finish(sender: &mut CreditSender, reply: Reply) {
    sender.finish_resync(reply.epoch, reply.forwarded);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a sender/receiver pair with `lost` credits missing: cells were
    /// sent and forwarded, but the credits never made it back.
    fn lossy_pair(capacity: u32, forwarded: u64, lost: u64) -> (CreditSender, CreditReceiver) {
        let mut s = CreditSender::new(capacity);
        let mut r = CreditReceiver::new(capacity);
        for k in 0..forwarded {
            assert!(s.try_send());
            r.on_cell().unwrap();
            let epoch = r.forward().unwrap();
            if k >= lost {
                assert!(s.on_credit_with_epoch(epoch));
            }
        }
        (s, r)
    }

    #[test]
    fn resync_restores_lost_credits() {
        let (mut s, mut r) = lossy_pair(8, 6, 3);
        assert_eq!(s.balance(), 5, "3 credits lost");
        let marker = begin(&mut s);
        let reply = handle_marker(&mut r, marker);
        finish(&mut s, reply);
        // Nothing outstanding: all 6 cells forwarded, so full capacity back.
        assert_eq!(s.balance(), 8);
    }

    #[test]
    fn resync_counts_outstanding_cells() {
        let mut s = CreditSender::new(4);
        let mut r = CreditReceiver::new(4);
        // Two cells sent; only one delivered+forwarded (credit lost), one
        // still in flight.
        assert!(s.try_send());
        assert!(s.try_send());
        r.on_cell().unwrap();
        let _lost_credit = r.forward().unwrap();
        let marker = begin(&mut s);
        let reply = handle_marker(&mut r, marker);
        finish(&mut s, reply);
        // sent=2, forwarded=1 → one outstanding → balance 3.
        assert_eq!(s.balance(), 3);
        // The in-flight cell arrives and is forwarded; its credit carries
        // the new epoch and is accepted.
        r.on_cell().unwrap();
        let e = r.forward().unwrap();
        assert!(s.on_credit_with_epoch(e));
        assert_eq!(s.balance(), 4);
    }

    #[test]
    fn stale_credit_after_resync_not_double_counted() {
        let mut s = CreditSender::new(2);
        let mut r = CreditReceiver::new(2);
        assert!(s.try_send());
        r.on_cell().unwrap();
        let old_epoch = r.forward().unwrap(); // credit delayed in flight
                                              // Resync completes while that credit is still in flight.
        let marker = begin(&mut s);
        let reply = handle_marker(&mut r, marker);
        finish(&mut s, reply);
        assert_eq!(s.balance(), 2, "forwarded cell already counted");
        // The delayed credit finally arrives: must be ignored, else the
        // balance would exceed capacity (and on_credit_with_epoch asserts).
        assert!(!s.on_credit_with_epoch(old_epoch));
        assert_eq!(s.balance(), 2);
    }

    #[test]
    fn lost_marker_is_harmless() {
        let (mut s, mut r) = lossy_pair(4, 2, 2);
        assert_eq!(s.balance(), 2);
        let _lost = begin(&mut s); // marker never arrives
                                   // A later resync still works.
        let marker2 = begin(&mut s);
        let reply2 = handle_marker(&mut r, marker2);
        finish(&mut s, reply2);
        assert_eq!(s.balance(), 4);
    }

    #[test]
    fn lost_reply_is_harmless() {
        let (mut s, mut r) = lossy_pair(4, 2, 2);
        let marker = begin(&mut s);
        let _lost_reply = handle_marker(&mut r, marker);
        // Retry.
        let marker2 = begin(&mut s);
        let reply2 = handle_marker(&mut r, marker2);
        finish(&mut s, reply2);
        assert_eq!(s.balance(), 4);
    }

    #[test]
    fn reply_to_superseded_marker_ignored() {
        let (mut s, mut r) = lossy_pair(4, 2, 2);
        let marker1 = begin(&mut s);
        let reply1 = handle_marker(&mut r, marker1);
        let marker2 = begin(&mut s);
        // Old reply arrives after the newer marker was issued: ignored.
        finish(&mut s, reply1);
        assert_eq!(s.balance(), 2, "stale reply must not change the balance");
        let reply2 = handle_marker(&mut r, marker2);
        finish(&mut s, reply2);
        assert_eq!(s.balance(), 4);
    }

    #[test]
    fn lossy_marker_recovers_cells_destroyed_on_the_link() {
        let mut s = CreditSender::new(4);
        let mut r = CreditReceiver::new(4);
        // Three cells sent; one destroyed on the wire, one buffered, one
        // forwarded with its credit also lost.
        for _ in 0..3 {
            assert!(s.try_send());
        }
        r.on_cell().unwrap(); // survives, stays buffered
        r.on_cell().unwrap();
        let _lost_credit = r.forward().unwrap();
        assert_eq!(s.balance(), 1);
        let marker = begin(&mut s);
        // Plain handle_marker would report forwarded=1, leaving the
        // destroyed cell outstanding forever (balance 2 of 4). The lossy
        // variant reports sent − occupied = 3 − 1 = 2: the destroyed cell's
        // credit comes back, only the buffered cell stays outstanding.
        let reply = handle_marker_lossy(&mut r, marker);
        assert_eq!(reply.forwarded, 2);
        finish(&mut s, reply);
        assert_eq!(s.balance(), 3);
        // The buffered cell drains normally under the new epoch.
        let e = r.forward().unwrap();
        assert!(s.on_credit_with_epoch(e));
        assert_eq!(s.balance(), 4);
    }

    #[test]
    fn lossy_marker_recovers_crash_dropped_buffers() {
        let mut s = CreditSender::new(4);
        let mut r = CreditReceiver::new(4);
        for _ in 0..3 {
            assert!(s.try_send());
            r.on_cell().unwrap();
        }
        // Line card crashes: all three buffered cells vanish.
        r.drop_buffered(3);
        assert_eq!(r.occupied(), 0);
        assert_eq!(s.balance(), 1);
        let marker = begin(&mut s);
        let reply = handle_marker_lossy(&mut r, marker);
        finish(&mut s, reply);
        assert_eq!(
            s.balance(),
            4,
            "crash-dropped cells give their credits back"
        );
    }

    #[test]
    fn lossy_marker_never_over_estimates() {
        // Cells sent after the marker are still counted as outstanding.
        let mut s = CreditSender::new(8);
        let mut r = CreditReceiver::new(8);
        for _ in 0..2 {
            assert!(s.try_send());
            r.on_cell().unwrap();
        }
        let marker = begin(&mut s);
        // Two more cells leave after the marker (still in flight).
        assert!(s.try_send());
        assert!(s.try_send());
        let reply = handle_marker_lossy(&mut r, marker);
        finish(&mut s, reply);
        // sent=4, reply.forwarded = 2−2 = 0 → all four outstanding.
        assert_eq!(s.balance(), 4);
        assert!(s.balance() + r.occupied() <= s.capacity());
    }

    #[test]
    fn resync_is_idempotent() {
        let (mut s, mut r) = lossy_pair(8, 4, 1);
        for _ in 0..3 {
            let m = begin(&mut s);
            let rep = handle_marker(&mut r, m);
            finish(&mut s, rep);
            assert_eq!(s.balance(), 8);
        }
    }
}
