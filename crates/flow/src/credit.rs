//! The two ends of a flow-controlled link, per virtual circuit.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error raised when a cell arrives at a downstream line card with no buffer
/// available. Under correct credit accounting this is unreachable — the
/// whole point of the protocol — so the switch treats it as a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overflow {
    /// Buffers allocated to the circuit.
    pub capacity: u32,
}

impl fmt::Display for Overflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell arrived with all {} buffers occupied",
            self.capacity
        )
    }
}

impl std::error::Error for Overflow {}

/// Upstream state for one virtual circuit on one link: the credit balance
/// ("the number of buffers known to be empty") and the absolute sent
/// counter used by resynchronization.
///
/// ```
/// use an2_flow::CreditSender;
/// let mut s = CreditSender::new(2);
/// assert!(s.try_send());
/// assert!(s.try_send());
/// assert!(!s.try_send()); // out of credits
/// s.on_credit();
/// assert!(s.try_send());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CreditSender {
    capacity: u32,
    balance: u32,
    sent: u64,
    epoch: u32,
}

impl CreditSender {
    /// A sender whose circuit owns `capacity` downstream buffers; the
    /// balance starts at full capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (a circuit with no buffer can never send).
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "a circuit needs at least one buffer");
        CreditSender {
            capacity,
            balance: capacity,
            sent: 0,
            epoch: 0,
        }
    }

    /// Current credit balance.
    pub fn balance(&self) -> u32 {
        self.balance
    }

    /// Buffers allocated to this circuit downstream.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Total cells ever sent (the resync counter).
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// The sender's current resync epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Whether the circuit may transmit this slot.
    pub fn can_send(&self) -> bool {
        self.balance > 0
    }

    /// Consumes one credit to transmit a cell. Returns `false` (and sends
    /// nothing) when the balance is zero.
    pub fn try_send(&mut self) -> bool {
        if self.balance == 0 {
            return false;
        }
        self.balance -= 1;
        self.sent += 1;
        true
    }

    /// Applies an arriving credit carrying the current epoch. Credits from
    /// older epochs were accounted for by a resynchronization and must be
    /// ignored; see [`crate::resync`].
    ///
    /// Returns `false` if the credit was stale and ignored.
    ///
    /// # Panics
    ///
    /// Panics if a fresh credit would push the balance above capacity —
    /// that means the peer invented a buffer, a protocol bug.
    pub fn on_credit_with_epoch(&mut self, epoch: u32) -> bool {
        if epoch != self.epoch {
            return false;
        }
        assert!(
            self.balance < self.capacity,
            "credit would exceed capacity {}",
            self.capacity
        );
        self.balance += 1;
        true
    }

    /// Applies an arriving credit in the common (epoch-0, no resync yet)
    /// case.
    pub fn on_credit(&mut self) {
        let e = self.epoch;
        self.on_credit_with_epoch(e);
    }

    pub(crate) fn begin_resync(&mut self) -> (u32, u64) {
        self.epoch += 1;
        (self.epoch, self.sent)
    }

    pub(crate) fn finish_resync(&mut self, epoch: u32, forwarded: u64) {
        if epoch != self.epoch {
            return; // reply to an older marker; a newer resync supersedes it
        }
        let outstanding = self.sent - forwarded;
        debug_assert!(
            outstanding <= self.capacity as u64 + 1_000_000,
            "forwarded counter ran ahead of sent"
        );
        self.balance = self.capacity.saturating_sub(outstanding as u32);
    }
}

/// Downstream state for one virtual circuit: the buffer pool and the
/// absolute forwarded counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CreditReceiver {
    capacity: u32,
    occupied: u32,
    forwarded: u64,
    epoch: u32,
}

impl CreditReceiver {
    /// A receiver with `capacity` buffers for the circuit.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "a circuit needs at least one buffer");
        CreditReceiver {
            capacity,
            occupied: 0,
            forwarded: 0,
            epoch: 0,
        }
    }

    /// Buffers currently holding cells.
    pub fn occupied(&self) -> u32 {
        self.occupied
    }

    /// Buffers allocated to the circuit.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Total cells ever forwarded onward (the resync counter).
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// The epoch stamped onto outgoing credits.
    pub fn credit_epoch(&self) -> u32 {
        self.epoch
    }

    /// Accepts an arriving cell into a buffer.
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] when every buffer is occupied — impossible under
    /// correct credit accounting, reported so tests can prove losslessness.
    pub fn on_cell(&mut self) -> Result<(), Overflow> {
        if self.occupied >= self.capacity {
            return Err(Overflow {
                capacity: self.capacity,
            });
        }
        self.occupied += 1;
        Ok(())
    }

    /// Whether a cell is buffered and could be forwarded this slot.
    pub fn has_cell(&self) -> bool {
        self.occupied > 0
    }

    /// Forwards one buffered cell through the crossbar, freeing its buffer.
    /// Returns the epoch to stamp on the credit sent upstream, or `None` if
    /// nothing was buffered.
    pub fn forward(&mut self) -> Option<u32> {
        if self.occupied == 0 {
            return None;
        }
        self.occupied -= 1;
        self.forwarded += 1;
        Some(self.epoch)
    }

    pub(crate) fn handle_marker(&mut self, epoch: u32) -> u64 {
        self.epoch = epoch;
        self.forwarded
    }

    /// Discards `n` buffered cells without forwarding them — a line-card
    /// crash losing its buffers. The forwarded counter is *not* advanced:
    /// the dropped cells stay outstanding until a resync reconciles them
    /// against the sender's `sent` counter.
    pub fn drop_buffered(&mut self, n: u32) {
        self.occupied = self.occupied.saturating_sub(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_consumes_credits() {
        let mut s = CreditSender::new(3);
        assert_eq!(s.capacity(), 3);
        assert_eq!(s.balance(), 3);
        for _ in 0..3 {
            assert!(s.can_send());
            assert!(s.try_send());
        }
        assert!(!s.can_send());
        assert!(!s.try_send());
        assert_eq!(s.sent(), 3);
        s.on_credit();
        assert_eq!(s.balance(), 1);
    }

    #[test]
    #[should_panic(expected = "exceed capacity")]
    fn credit_above_capacity_panics() {
        let mut s = CreditSender::new(1);
        s.on_credit();
    }

    #[test]
    #[should_panic(expected = "at least one buffer")]
    fn zero_capacity_sender_rejected() {
        CreditSender::new(0);
    }

    #[test]
    fn stale_epoch_credit_ignored() {
        let mut s = CreditSender::new(2);
        s.try_send();
        let (epoch, _) = s.begin_resync();
        assert_eq!(epoch, 1);
        assert!(!s.on_credit_with_epoch(0), "stale credit must be dropped");
        assert!(s.on_credit_with_epoch(1));
    }

    #[test]
    fn receiver_buffers_and_forwards() {
        let mut r = CreditReceiver::new(2);
        assert!(!r.has_cell());
        r.on_cell().unwrap();
        r.on_cell().unwrap();
        assert_eq!(r.occupied(), 2);
        assert_eq!(r.on_cell(), Err(Overflow { capacity: 2 }));
        assert_eq!(r.forward(), Some(0));
        assert_eq!(r.occupied(), 1);
        assert_eq!(r.forwarded(), 1);
        assert_eq!(r.capacity(), 2);
        r.forward();
        assert_eq!(r.forward(), None);
    }

    #[test]
    fn overflow_error_display() {
        let e = Overflow { capacity: 8 };
        assert!(e.to_string().contains("8 buffers"));
    }

    #[test]
    fn end_to_end_conservation() {
        // sent - forwarded == in flight + buffered; the balance equals
        // capacity - (sent - credits_received).
        let mut s = CreditSender::new(4);
        let mut r = CreditReceiver::new(4);
        for _ in 0..3 {
            assert!(s.try_send());
            r.on_cell().unwrap();
        }
        assert_eq!(s.balance(), 1);
        // Forward two; credits return.
        for _ in 0..2 {
            let e = r.forward().unwrap();
            assert!(s.on_credit_with_epoch(e));
        }
        assert_eq!(s.balance(), 3);
        assert_eq!(s.sent() - r.forwarded(), 1); // one still buffered
        assert_eq!(r.occupied(), 1);
    }
}
