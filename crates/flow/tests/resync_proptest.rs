//! Adversarial-schedule property tests for credit resynchronization (§5).
//!
//! An adversary drives one flow-controlled hop — a FIFO wire downstream
//! (cells and markers), a FIFO wire upstream (credits and replies) — and
//! may lose any item, crash the receiver's buffers, and start resyncs at
//! arbitrary points. Two properties must survive every schedule:
//!
//! 1. **Never over-estimate:** the sender's balance never exceeds
//!    `capacity − occupied − in-flight`, so the receiver can never
//!    overflow ("with credits, a lost message can only cause reduced
//!    performance").
//! 2. **Eventually recover:** once losses stop and one resync completes
//!    cleanly, the balance returns to `capacity − in-flight`, which at
//!    quiescence is full capacity.

use an2_flow::resync::{self, Marker, Reply};
use an2_flow::{CreditReceiver, CreditSender};
use proptest::prelude::*;
use std::collections::VecDeque;

/// In-flight item on the downstream wire (sender → receiver). FIFO order
/// between cells and markers is what makes the lossy reply sound.
#[derive(Debug, Clone, Copy)]
enum Down {
    Cell,
    Marker(Marker),
}

/// In-flight item on the upstream wire (receiver → sender).
#[derive(Debug, Clone, Copy)]
enum Up {
    Credit(u32),
    Reply(Reply),
}

struct Hop {
    s: CreditSender,
    r: CreditReceiver,
    down: VecDeque<Down>,
    up: VecDeque<Up>,
}

impl Hop {
    fn new(capacity: u32) -> Self {
        Hop {
            s: CreditSender::new(capacity),
            r: CreditReceiver::new(capacity),
            down: VecDeque::new(),
            up: VecDeque::new(),
        }
    }

    /// Cells on the downstream wire (these will arrive; lost ones are
    /// removed from the queue immediately).
    fn cells_in_flight(&self) -> u64 {
        self.down.iter().filter(|i| matches!(i, Down::Cell)).count() as u64
    }

    /// The safety bound: credits the sender holds can never exceed the
    /// buffers not already spoken for by buffered or in-flight cells.
    fn check_no_over_estimate(&self) {
        let spoken_for = self.r.occupied() as u64 + self.cells_in_flight();
        assert!(
            self.s.balance() as u64 + spoken_for <= self.s.capacity() as u64,
            "over-estimate: balance {} + occupied {} + in-flight {} > capacity {}",
            self.s.balance(),
            self.r.occupied(),
            self.cells_in_flight(),
            self.s.capacity()
        );
    }

    /// Applies one adversary action (the opcode space wraps around).
    fn step(&mut self, op: u8) {
        match op % 8 {
            // Sender transmits if it has credit.
            0 => {
                if self.s.try_send() {
                    self.down.push_back(Down::Cell);
                }
            }
            // Deliver the oldest downstream item.
            1 => match self.down.pop_front() {
                Some(Down::Cell) => {
                    self.r
                        .on_cell()
                        .expect("receiver overflow: the credit protocol over-estimated under loss");
                }
                Some(Down::Marker(m)) => {
                    let reply = resync::handle_marker_lossy(&mut self.r, m);
                    self.up.push_back(Up::Reply(reply));
                }
                None => {}
            },
            // Lose the oldest downstream item (cell or marker).
            2 => {
                self.down.pop_front();
            }
            // Receiver forwards a buffered cell; its credit heads upstream.
            3 => {
                if let Some(epoch) = self.r.forward() {
                    self.up.push_back(Up::Credit(epoch));
                }
            }
            // Deliver the oldest upstream item.
            4 => match self.up.pop_front() {
                Some(Up::Credit(epoch)) => {
                    // A fresh over-capacity credit would panic inside
                    // on_credit_with_epoch — exactly the over-estimate this
                    // test exists to rule out.
                    self.s.on_credit_with_epoch(epoch);
                }
                Some(Up::Reply(reply)) => {
                    resync::finish(&mut self.s, reply);
                }
                None => {}
            },
            // Lose the oldest upstream item (credit or reply).
            5 => {
                self.up.pop_front();
            }
            // Start a resync; the marker rides the downstream FIFO.
            6 => {
                let m = resync::begin(&mut self.s);
                self.down.push_back(Down::Marker(m));
            }
            // Crash the receiver's line card: buffered cells vanish.
            _ => {
                let n = self.r.occupied();
                self.r.drop_buffered(n);
            }
        }
    }

    /// Fault-free drain: deliver and forward everything in flight, then one
    /// clean resync round trip.
    fn recover(&mut self) {
        while let Some(item) = self.down.pop_front() {
            match item {
                Down::Cell => self.r.on_cell().expect("overflow during drain"),
                Down::Marker(m) => {
                    let reply = resync::handle_marker_lossy(&mut self.r, m);
                    self.up.push_back(Up::Reply(reply));
                }
            }
        }
        while let Some(epoch) = self.r.forward() {
            self.up.push_back(Up::Credit(epoch));
        }
        while let Some(item) = self.up.pop_front() {
            match item {
                Up::Credit(epoch) => {
                    self.s.on_credit_with_epoch(epoch);
                }
                Up::Reply(reply) => resync::finish(&mut self.s, reply),
            }
        }
        // One clean marker/reply round trip reconciles everything lost.
        let m = resync::begin(&mut self.s);
        let reply = resync::handle_marker_lossy(&mut self.r, m);
        resync::finish(&mut self.s, reply);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn balance_never_over_estimates_and_recovers(
        capacity in 1u32..12,
        ops in proptest::collection::vec(any::<u8>(), 1..400),
    ) {
        let mut hop = Hop::new(capacity);
        for &op in &ops {
            hop.step(op);
            hop.check_no_over_estimate();
        }
        hop.recover();
        prop_assert_eq!(hop.r.occupied(), 0);
        prop_assert_eq!(
            hop.s.balance(),
            hop.s.capacity(),
            "after a clean resync at quiescence the full capacity is back"
        );
    }
}
