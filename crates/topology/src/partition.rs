//! Shard partitioning for the parallel data plane.
//!
//! The fabric steps each shard's switches on its own thread, so a good
//! partition (a) balances switch counts — the per-slot barrier makes the
//! slowest shard the critical path — and (b) keeps the cut small, since
//! every edge crossing the cut is a mailbox a departure may have to cross.
//! Exact min-cut balanced partitioning is NP-hard; this is the classic
//! greedy region-growing heuristic: seed each region at the
//! lowest-numbered unassigned switch, then repeatedly absorb the frontier
//! switch with the most links into the region (ties to the lowest id), BFS
//! order as a fallback when the frontier is empty (disconnected graphs).
//! Deterministic by construction — no randomness, no hash iteration.

use crate::{SwitchId, Topology};

/// Assigns each switch a shard in `0..shards`, balancing region sizes to
/// within one switch and greedily minimising the number of cut links.
/// `shards` is clamped to `1..=switch_count` (an empty topology yields an
/// empty plan). The result is deterministic for a given topology.
pub fn partition_switches(topo: &Topology, shards: usize) -> Vec<u32> {
    let n = topo.switch_count();
    if n == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, n);
    let mut plan = vec![u32::MAX; n];
    // Region size quotas: the first `n % shards` regions get one extra.
    let base = n / shards;
    let extra = n % shards;
    let mut assigned = 0usize;
    for shard in 0..shards {
        let quota = base + usize::from(shard < extra);
        if quota == 0 {
            continue;
        }
        // Seed at the lowest unassigned switch.
        let seed = (0..n)
            .find(|&i| plan[i] == u32::MAX)
            .expect("quotas sum to n");
        plan[seed] = shard as u32;
        assigned += 1;
        let mut region = vec![SwitchId(seed as u16)];
        for _ in 1..quota {
            // Pick the unassigned switch with the most links into the
            // region; scan the region's neighborhoods so the cost is
            // O(region × degree) per absorption.
            let mut best: Option<(usize, usize)> = None; // (links_in, idx)
            let mut counted = vec![0usize; n];
            for &r in &region {
                for nb in topo.switch_neighbors(r) {
                    let i = nb.0 as usize;
                    if plan[i] == u32::MAX {
                        counted[i] += 1;
                    }
                }
            }
            for (i, &c) in counted.iter().enumerate() {
                if c > 0 && plan[i] == u32::MAX {
                    let better = match best {
                        None => true,
                        Some((bc, bi)) => c > bc || (c == bc && i < bi),
                    };
                    if better {
                        best = Some((c, i));
                    }
                }
            }
            let pick = match best {
                Some((_, i)) => i,
                // Disconnected frontier: fall back to the lowest
                // unassigned switch anywhere.
                None => (0..n).find(|&i| plan[i] == u32::MAX).expect("quota left"),
            };
            plan[pick] = shard as u32;
            assigned += 1;
            region.push(SwitchId(pick as u16));
        }
    }
    debug_assert_eq!(assigned, n);
    debug_assert!(plan.iter().all(|&s| (s as usize) < shards));
    plan
}

/// The number of links whose endpoints land in different shards — the
/// mailbox traffic a plan implies. Observability for tests and benches.
pub fn cut_links(topo: &Topology, plan: &[u32]) -> usize {
    use crate::Node;
    topo.links()
        .filter(|&l| {
            let (a, b) = topo.endpoints(l);
            match (a.node, b.node) {
                (Node::Switch(x), Node::Switch(y)) => plan[x.0 as usize] != plan[y.0 as usize],
                _ => false,
            }
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn covers_every_switch_with_balanced_regions() {
        let topo = generators::torus(6, 6);
        for shards in [1, 2, 3, 4, 7] {
            let plan = partition_switches(&topo, shards);
            assert_eq!(plan.len(), 36);
            let mut sizes = vec![0usize; shards];
            for &s in &plan {
                sizes[s as usize] += 1;
            }
            let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced {shards}-way plan: {sizes:?}");
        }
    }

    #[test]
    fn one_shard_is_trivial_and_oversharding_clamps() {
        let topo = generators::line(3);
        assert_eq!(partition_switches(&topo, 1), vec![0, 0, 0]);
        let plan = partition_switches(&topo, 64);
        assert_eq!(plan.len(), 3);
        let mut sorted = plan.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn regions_prefer_connected_growth() {
        // A line cut in half should split at one edge: exactly one cut link.
        let topo = generators::line(8);
        let plan = partition_switches(&topo, 2);
        assert_eq!(cut_links(&topo, &plan), 1, "plan {plan:?}");
    }

    #[test]
    fn deterministic() {
        let topo = generators::torus(4, 4);
        assert_eq!(partition_switches(&topo, 4), partition_switches(&topo, 4));
    }
}
