//! Rooted spanning trees over the switch subgraph.
//!
//! The reconfiguration algorithm's propagation phase "builds a spanning tree"
//! whose root is the initiating switch (§2); the finished tree then defines
//! the up\*/down\* link orientations used for deadlock-free routing (§5).
//! This module is the shared representation of such trees, whichever
//! algorithm produced them.

use crate::graph::{SwitchId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A rooted spanning tree (or forest fragment) of the switch subgraph.
///
/// ```
/// use an2_topology::{Topology, SpanningTree};
/// let mut t = Topology::new();
/// let a = t.add_switch();
/// let b = t.add_switch();
/// let c = t.add_switch();
/// t.link_switches(a, b).unwrap();
/// t.link_switches(b, c).unwrap();
/// let tree = SpanningTree::bfs(&t, a);
/// assert_eq!(tree.depth(c), Some(2));
/// assert_eq!(tree.parent(c), Some(b));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanningTree {
    root: SwitchId,
    /// Parent of each switch (dense by switch id); `None` for the root and
    /// for switches outside the tree.
    parent: Vec<Option<SwitchId>>,
    /// Depth of each switch; `None` for switches outside the tree.
    depth: Vec<Option<u32>>,
}

impl SpanningTree {
    /// Builds a breadth-first spanning tree of the working switch subgraph
    /// rooted at `root`. Unreachable switches are left out of the tree.
    pub fn bfs(topo: &Topology, root: SwitchId) -> Self {
        let n = topo.switch_count();
        let mut parent = vec![None; n];
        let mut depth = vec![None; n];
        depth[root.0 as usize] = Some(0);
        let mut q = VecDeque::new();
        q.push_back(root);
        while let Some(s) = q.pop_front() {
            let d = depth[s.0 as usize].unwrap();
            for t in topo.switch_neighbors(s) {
                if depth[t.0 as usize].is_none() {
                    depth[t.0 as usize] = Some(d + 1);
                    parent[t.0 as usize] = Some(s);
                    q.push_back(t);
                }
            }
        }
        SpanningTree {
            root,
            parent,
            depth,
        }
    }

    /// Reconstructs a tree from explicit parent pointers, as the distributed
    /// reconfiguration protocol reports them.
    ///
    /// # Panics
    ///
    /// Panics if the parent pointers contain a cycle or if a listed parent is
    /// itself outside the tree — either indicates a protocol bug.
    pub fn from_parents(
        root: SwitchId,
        switch_count: usize,
        parents: impl IntoIterator<Item = (SwitchId, SwitchId)>,
    ) -> Self {
        let mut parent = vec![None; switch_count];
        for (child, par) in parents {
            parent[child.0 as usize] = Some(par);
        }
        let mut depth = vec![None; switch_count];
        depth[root.0 as usize] = Some(0);
        // Resolve depths iteratively; bounded by n passes.
        for _ in 0..switch_count {
            let mut progressed = false;
            for i in 0..switch_count {
                if depth[i].is_some() {
                    continue;
                }
                if let Some(p) = parent[i] {
                    if let Some(pd) = depth[p.0 as usize] {
                        depth[i] = Some(pd + 1);
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        for i in 0..switch_count {
            assert!(
                parent[i].is_none() || depth[i].is_some(),
                "sw{i}: parent chain does not reach the root (cycle or dangling parent)"
            );
        }
        SpanningTree {
            root,
            parent,
            depth,
        }
    }

    /// The tree's root switch.
    pub fn root(&self) -> SwitchId {
        self.root
    }

    /// Parent of `s` in the tree (`None` for the root or non-members).
    pub fn parent(&self, s: SwitchId) -> Option<SwitchId> {
        self.parent[s.0 as usize]
    }

    /// Depth of `s` (`Some(0)` for the root, `None` for non-members).
    pub fn depth(&self, s: SwitchId) -> Option<u32> {
        self.depth[s.0 as usize]
    }

    /// Whether `s` belongs to the tree.
    pub fn contains(&self, s: SwitchId) -> bool {
        self.depth[s.0 as usize].is_some()
    }

    /// Number of switches in the tree.
    pub fn len(&self) -> usize {
        self.depth.iter().filter(|d| d.is_some()).count()
    }

    /// `true` when the tree is empty (cannot normally happen: the root is
    /// always a member).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Children of `s`, in id order.
    pub fn children(&self, s: SwitchId) -> Vec<SwitchId> {
        (0..self.parent.len() as u16)
            .map(SwitchId)
            .filter(|c| self.parent[c.0 as usize] == Some(s))
            .collect()
    }

    /// The path from `s` up to the root, inclusive of both.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not in the tree.
    pub fn path_to_root(&self, s: SwitchId) -> Vec<SwitchId> {
        assert!(self.contains(s), "{s} is not in the spanning tree");
        let mut path = vec![s];
        let mut cur = s;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path
    }

    /// The maximum depth of any member switch.
    pub fn height(&self) -> u32 {
        self.depth.iter().flatten().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_tree_on_ring() {
        let topo = generators::ring(6);
        let tree = SpanningTree::bfs(&topo, SwitchId(0));
        assert_eq!(tree.root(), SwitchId(0));
        assert_eq!(tree.len(), 6);
        assert_eq!(tree.depth(SwitchId(0)), Some(0));
        assert_eq!(tree.depth(SwitchId(3)), Some(3)); // opposite side
        assert_eq!(tree.height(), 3);
        assert!(tree.contains(SwitchId(5)));
        assert!(!tree.is_empty());
    }

    #[test]
    fn bfs_tree_excludes_unreachable() {
        let mut topo = generators::line(3);
        let lonely = topo.add_switch();
        let tree = SpanningTree::bfs(&topo, SwitchId(0));
        assert!(!tree.contains(lonely));
        assert_eq!(tree.len(), 3);
    }

    #[test]
    fn children_and_path_to_root() {
        let topo = generators::star(4); // sw0 hub, sw1..4 leaves
        let tree = SpanningTree::bfs(&topo, SwitchId(0));
        assert_eq!(
            tree.children(SwitchId(0)),
            vec![SwitchId(1), SwitchId(2), SwitchId(3), SwitchId(4)]
        );
        assert_eq!(
            tree.path_to_root(SwitchId(3)),
            vec![SwitchId(3), SwitchId(0)]
        );
    }

    #[test]
    #[should_panic(expected = "not in the spanning tree")]
    fn path_to_root_outside_tree_panics() {
        let mut topo = generators::line(2);
        let lonely = topo.add_switch();
        let tree = SpanningTree::bfs(&topo, SwitchId(0));
        tree.path_to_root(lonely);
    }

    #[test]
    fn from_parents_reconstructs_depths() {
        let tree = SpanningTree::from_parents(
            SwitchId(2),
            4,
            vec![
                (SwitchId(0), SwitchId(1)),
                (SwitchId(1), SwitchId(2)),
                (SwitchId(3), SwitchId(2)),
            ],
        );
        assert_eq!(tree.depth(SwitchId(2)), Some(0));
        assert_eq!(tree.depth(SwitchId(1)), Some(1));
        assert_eq!(tree.depth(SwitchId(0)), Some(2));
        assert_eq!(tree.depth(SwitchId(3)), Some(1));
        assert_eq!(tree.parent(SwitchId(2)), None);
    }

    #[test]
    #[should_panic(expected = "cycle or dangling")]
    fn from_parents_rejects_cycle() {
        SpanningTree::from_parents(
            SwitchId(0),
            3,
            vec![(SwitchId(1), SwitchId(2)), (SwitchId(2), SwitchId(1))],
        );
    }

    #[test]
    fn bfs_is_shortest_depth() {
        let topo = generators::torus(4, 4);
        let tree = SpanningTree::bfs(&topo, SwitchId(0));
        // In a 4x4 torus the farthest node is 4 hops away (2+2).
        assert_eq!(tree.height(), 4);
    }
}
