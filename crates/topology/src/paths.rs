//! Unrestricted shortest-path routing over the working switch subgraph.
//!
//! AN2 routes each virtual circuit along a path chosen by line-card software
//! "based on the topology information obtained during reconfiguration" (§2).
//! This module supplies the path machinery: BFS shortest paths, hop-count
//! tables, and host-to-host route construction through each host's attached
//! switches.

use crate::graph::{HostId, LinkId, SwitchId, Topology};
use std::collections::VecDeque;

/// Hop distances from `src` to every switch over working links
/// (`None` = unreachable). Index by `SwitchId::0`.
pub fn distances_from(topo: &Topology, src: SwitchId) -> Vec<Option<u32>> {
    let mut dist = vec![None; topo.switch_count()];
    dist[src.0 as usize] = Some(0);
    let mut q = VecDeque::new();
    q.push_back(src);
    while let Some(s) = q.pop_front() {
        let d = dist[s.0 as usize].unwrap();
        for t in topo.switch_neighbors(s) {
            if dist[t.0 as usize].is_none() {
                dist[t.0 as usize] = Some(d + 1);
                q.push_back(t);
            }
        }
    }
    dist
}

/// A shortest switch-to-switch path (inclusive of both ends), or `None` when
/// unreachable. Ties are broken toward lower-numbered switches, so the result
/// is deterministic.
pub fn shortest_path(topo: &Topology, src: SwitchId, dst: SwitchId) -> Option<Vec<SwitchId>> {
    if src == dst {
        return Some(vec![src]);
    }
    let mut prev: Vec<Option<SwitchId>> = vec![None; topo.switch_count()];
    let mut seen = vec![false; topo.switch_count()];
    seen[src.0 as usize] = true;
    let mut q = VecDeque::new();
    q.push_back(src);
    while let Some(s) = q.pop_front() {
        for t in topo.switch_neighbors(s) {
            if !seen[t.0 as usize] {
                seen[t.0 as usize] = true;
                prev[t.0 as usize] = Some(s);
                if t == dst {
                    let mut path = vec![dst];
                    let mut cur = dst;
                    while let Some(p) = prev[cur.0 as usize] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                q.push_back(t);
            }
        }
    }
    None
}

/// A host-to-host route: the attachment switches used at each end plus the
/// switch path between them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostRoute {
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Switches traversed, first = source's attachment, last = destination's.
    pub switches: Vec<SwitchId>,
}

impl HostRoute {
    /// Number of switches on the route — the `p` of the paper's `p*(2f+l)`
    /// guaranteed-latency bound (§4).
    pub fn path_length(&self) -> usize {
        self.switches.len()
    }
}

/// The shortest working route between two hosts, trying every combination of
/// their attachment switches (primary and alternate links, Figure 1).
/// Returns `None` if either host is detached or no switch path exists.
pub fn host_route(topo: &Topology, src: HostId, dst: HostId) -> Option<HostRoute> {
    let src_att = topo.host_attachments(src);
    let dst_att = topo.host_attachments(dst);
    let mut best: Option<Vec<SwitchId>> = None;
    for (_, s) in &src_att {
        for (_, d) in &dst_att {
            if let Some(path) = shortest_path(topo, *s, *d) {
                if best.as_ref().is_none_or(|b| path.len() < b.len()) {
                    best = Some(path);
                }
            }
        }
    }
    best.map(|switches| HostRoute { src, dst, switches })
}

/// Like [`shortest_path`], but treating `avoid` as if it had failed —
/// equivalent to probing a clone of the topology with that link marked
/// dead, without the clone. Same lower-numbered-switch tie-break.
pub fn shortest_path_avoiding(
    topo: &Topology,
    src: SwitchId,
    dst: SwitchId,
    avoid: LinkId,
) -> Option<Vec<SwitchId>> {
    let neighbors = |s: SwitchId| {
        let mut out: Vec<SwitchId> = topo
            .working_links_of(crate::graph::Node::Switch(s))
            .into_iter()
            .filter(|&(l, _)| l != avoid)
            .filter_map(|(_, far)| match far.node {
                crate::graph::Node::Switch(t) => Some(t),
                crate::graph::Node::Host(_) => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    };
    if src == dst {
        return Some(vec![src]);
    }
    let mut prev: Vec<Option<SwitchId>> = vec![None; topo.switch_count()];
    let mut seen = vec![false; topo.switch_count()];
    seen[src.0 as usize] = true;
    let mut q = VecDeque::new();
    q.push_back(src);
    while let Some(s) = q.pop_front() {
        for t in neighbors(s) {
            if !seen[t.0 as usize] {
                seen[t.0 as usize] = true;
                prev[t.0 as usize] = Some(s);
                if t == dst {
                    let mut path = vec![dst];
                    let mut cur = dst;
                    while let Some(p) = prev[cur.0 as usize] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                q.push_back(t);
            }
        }
    }
    None
}

/// Like [`host_route`], but treating `avoid` as if it had failed (the
/// load-balancing reroute probes "what if this hot link were gone" without
/// cloning the topology).
pub fn host_route_avoiding(
    topo: &Topology,
    src: HostId,
    dst: HostId,
    avoid: LinkId,
) -> Option<HostRoute> {
    let mut src_att = topo.host_attachments(src);
    let mut dst_att = topo.host_attachments(dst);
    src_att.retain(|&(l, _)| l != avoid);
    dst_att.retain(|&(l, _)| l != avoid);
    let mut best: Option<Vec<SwitchId>> = None;
    for (_, s) in &src_att {
        for (_, d) in &dst_att {
            if let Some(path) = shortest_path_avoiding(topo, *s, *d, avoid) {
                if best.as_ref().is_none_or(|b| path.len() < b.len()) {
                    best = Some(path);
                }
            }
        }
    }
    best.map(|switches| HostRoute { src, dst, switches })
}

/// Average shortest-path hop count over all ordered switch pairs (a
/// topology-quality metric used by the up\*/down\* inflation experiment).
/// Returns `None` if the graph is disconnected or has fewer than 2 switches.
pub fn mean_shortest_hops(topo: &Topology) -> Option<f64> {
    let n = topo.switch_count();
    if n < 2 {
        return None;
    }
    let mut total = 0u64;
    let mut pairs = 0u64;
    for s in topo.switches() {
        let dist = distances_from(topo, s);
        for t in topo.switches() {
            if s == t {
                continue;
            }
            total += dist[t.0 as usize]? as u64;
            pairs += 1;
        }
    }
    Some(total as f64 / pairs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::{LinkState, Topology};

    #[test]
    fn distances_on_line() {
        let topo = generators::line(5);
        let d = distances_from(&topo, SwitchId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn shortest_path_on_ring_takes_short_side() {
        let topo = generators::ring(6);
        let p = shortest_path(&topo, SwitchId(0), SwitchId(2)).unwrap();
        assert_eq!(p, vec![SwitchId(0), SwitchId(1), SwitchId(2)]);
        let p = shortest_path(&topo, SwitchId(0), SwitchId(5)).unwrap();
        assert_eq!(p, vec![SwitchId(0), SwitchId(5)]);
    }

    #[test]
    fn shortest_path_same_node() {
        let topo = generators::line(2);
        assert_eq!(
            shortest_path(&topo, SwitchId(1), SwitchId(1)),
            Some(vec![SwitchId(1)])
        );
    }

    #[test]
    fn shortest_path_unreachable() {
        let mut topo = generators::line(2);
        let lonely = topo.add_switch();
        assert_eq!(shortest_path(&topo, SwitchId(0), lonely), None);
        let d = distances_from(&topo, SwitchId(0));
        assert_eq!(d[lonely.0 as usize], None);
    }

    #[test]
    fn shortest_path_respects_dead_links() {
        let topo = generators::ring(4);
        let mut t = topo.clone();
        // Kill 0-1; path 0->1 must go the long way.
        let l = t.links_between(SwitchId(0), SwitchId(1))[0];
        t.set_link_state(l, LinkState::Dead);
        let p = shortest_path(&t, SwitchId(0), SwitchId(1)).unwrap();
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn host_route_uses_best_attachment_pair() {
        let mut topo = generators::line(4); // 0-1-2-3
        let h1 = topo.add_host();
        let h2 = topo.add_host();
        topo.attach_host(h1, SwitchId(0)).unwrap();
        topo.attach_host(h1, SwitchId(1)).unwrap();
        topo.attach_host(h2, SwitchId(3)).unwrap();
        topo.attach_host(h2, SwitchId(2)).unwrap();
        let r = host_route(&topo, h1, h2).unwrap();
        // Best pair is sw1..sw2 (2 switches), not sw0..sw3 (4 switches).
        assert_eq!(r.switches, vec![SwitchId(1), SwitchId(2)]);
        assert_eq!(r.path_length(), 2);
    }

    #[test]
    fn host_route_fails_when_detached() {
        let mut topo = generators::line(2);
        let h1 = topo.add_host();
        let h2 = topo.add_host();
        topo.attach_host(h1, SwitchId(0)).unwrap();
        assert!(host_route(&topo, h1, h2).is_none());
    }

    #[test]
    fn host_route_failover_to_alternate() {
        let mut topo = generators::line(2);
        let h1 = topo.add_host();
        let h2 = topo.add_host();
        let primary = topo.attach_host(h1, SwitchId(0)).unwrap();
        topo.attach_host(h1, SwitchId(1)).unwrap();
        topo.attach_host(h2, SwitchId(0)).unwrap();
        topo.set_link_state(primary, LinkState::Dead);
        let r = host_route(&topo, h1, h2).unwrap();
        assert_eq!(r.switches, vec![SwitchId(1), SwitchId(0)]);
    }

    #[test]
    fn avoiding_helpers_match_a_dead_link_probe() {
        // The `_avoiding` variants must agree exactly with probing a clone
        // of the topology that has the link marked dead (the pattern they
        // replaced in the rebalancer).
        let mut topo = generators::src_installation(4, 4);
        let h0 = crate::graph::HostId(0);
        let h1 = crate::graph::HostId(2);
        let all: Vec<_> = topo.links().collect();
        // Include a pre-existing failure so the working subgraph is
        // non-trivial.
        topo.set_link_state(all[0], LinkState::Dead);
        for &avoid in &all {
            let mut probe = topo.clone();
            probe.set_link_state(avoid, LinkState::Dead);
            assert_eq!(
                shortest_path_avoiding(&topo, SwitchId(0), SwitchId(2), avoid),
                shortest_path(&probe, SwitchId(0), SwitchId(2)),
                "switch path diverges avoiding {avoid}"
            );
            assert_eq!(
                host_route_avoiding(&topo, h0, h1, avoid),
                host_route(&probe, h0, h1),
                "host route diverges avoiding {avoid}"
            );
        }
    }

    #[test]
    fn mean_hops_values() {
        assert_eq!(mean_shortest_hops(&generators::line(1)), None);
        let ring4 = generators::ring(4);
        // Distances in C4: 1,2,1 per node → mean 4/3.
        let m = mean_shortest_hops(&ring4).unwrap();
        assert!((m - 4.0 / 3.0).abs() < 1e-12);
        let mut disc = Topology::new();
        disc.add_switch();
        disc.add_switch();
        assert_eq!(mean_shortest_hops(&disc), None);
    }
}
