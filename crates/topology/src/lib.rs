//! # an2-topology — network graphs for AN1/AN2
//!
//! "The switches can be connected in an arbitrary topology; network software
//! detects the connection pattern and determines the paths to be used in
//! routing data between hosts." (paper, §1)
//!
//! This crate models that world:
//!
//! * [`Topology`] — switches with numbered ports, hosts with controllers,
//!   full-duplex links in arbitrary patterns, and per-link working/dead state.
//! * [`generators`] — topology builders: lines, rings, stars, trees, meshes,
//!   tori, random regular graphs, and [`generators::src_installation`], a
//!   replica of the Figure 1 installation style (dual-homed hosts, redundant
//!   inter-switch links).
//! * [`SpanningTree`] — rooted spanning trees: the artifact the
//!   reconfiguration algorithm computes (§2) and the basis of up\*/down\*
//!   routing (§5).
//! * [`updown`] — up\*/down\* link orientation, legal-route search, deadlock
//!   (waiting-graph) analysis, and path-inflation measurement.
//! * [`paths`] — unrestricted shortest paths, for comparison and for AN2's
//!   per-VC routing where up\*/down\* is not required.
//! * [`partition_switches`] — greedy balanced min-cut-ish shard plans for
//!   the parallel data plane.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
mod graph;
mod partition;
pub mod paths;
mod spanning;
pub mod updown;

pub use graph::{
    Endpoint, HostId, LinkId, LinkState, Node, Port, SwitchId, Topology, TopologyError,
};
pub use partition::{cut_links, partition_switches};
pub use spanning::SpanningTree;
