//! The network graph: switches, hosts, ports and full-duplex links.

use an2_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifies a switch. The paper's tie-breaking rules ("up is toward the
/// higher-numbered switch", §5) and epoch ordering (§2) both rely on switch
/// ids being totally ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SwitchId(pub u16);

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw{}", self.0)
    }
}

/// Identifies a host (workstation + its network controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub u16);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// Either kind of network node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Node {
    /// A switch.
    Switch(SwitchId),
    /// A host.
    Host(HostId),
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Switch(s) => write!(f, "{s}"),
            Node::Host(h) => write!(f, "{h}"),
        }
    }
}

impl From<SwitchId> for Node {
    fn from(s: SwitchId) -> Node {
        Node::Switch(s)
    }
}

impl From<HostId> for Node {
    fn from(h: HostId) -> Node {
        Node::Host(h)
    }
}

/// A port number on a switch or host. AN2 switches have up to 16 ports (one
/// per line card); AN1 switches had 12 (§1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Port(pub u8);

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// One end of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Endpoint {
    /// The node this end attaches to.
    pub node: Node,
    /// The port on that node.
    pub port: Port,
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.node, self.port)
    }
}

/// Identifies a link in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// The state the link monitor reports for a link (§2: "the reconfiguration
/// algorithm assumes that each link is unambiguously working or dead").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum LinkState {
    /// Passing traffic.
    #[default]
    Working,
    /// Declared dead by the monitor (or physically removed).
    Dead,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Link {
    a: Endpoint,
    b: Endpoint,
    state: LinkState,
    latency: SimDuration,
}

/// Errors from topology construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// The port is already cabled.
    PortInUse(Endpoint),
    /// The node has no free port left.
    NoFreePort(Node),
    /// A link may not connect a node to itself.
    SelfLoop(Node),
    /// Hosts connect only to switches, never to each other (paper Figure 1).
    HostToHost,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::PortInUse(e) => write!(f, "port {e} is already connected"),
            TopologyError::NoFreePort(n) => write!(f, "{n} has no free port"),
            TopologyError::SelfLoop(n) => write!(f, "cannot connect {n} to itself"),
            TopologyError::HostToHost => write!(f, "hosts may only connect to switches"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// The physical network: switches, hosts, and full-duplex point-to-point
/// links in an arbitrary pattern.
///
/// ```
/// use an2_topology::Topology;
/// let mut t = Topology::new();
/// let a = t.add_switch();
/// let b = t.add_switch();
/// let h = t.add_host();
/// t.link_switches(a, b).unwrap();
/// t.attach_host(h, a).unwrap();
/// assert!(t.switches_connected());
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    switch_ports: Vec<u8>,
    host_ports: Vec<u8>,
    links: Vec<Link>,
    default_latency: SimDuration,
}

/// Default one-way link latency: 500 m of fibre ≈ 2.5 µs? No — SRC's LAN is
/// building-scale; we default to 1 µs, and generators may override per link.
const DEFAULT_LATENCY: SimDuration = SimDuration::from_micros(1);

/// Ports per AN2 switch (16 line cards, §1).
pub const AN2_SWITCH_PORTS: u8 = 16;
/// Ports per host controller: primary plus alternate link (Figure 1).
pub const HOST_PORTS: u8 = 2;

impl Topology {
    /// An empty network.
    pub fn new() -> Self {
        Topology {
            switch_ports: Vec::new(),
            host_ports: Vec::new(),
            links: Vec::new(),
            default_latency: DEFAULT_LATENCY,
        }
    }

    /// Sets the default one-way latency applied to subsequently added links.
    pub fn set_default_latency(&mut self, latency: SimDuration) {
        self.default_latency = latency;
    }

    /// Adds a switch with the standard AN2 port count and returns its id.
    pub fn add_switch(&mut self) -> SwitchId {
        self.add_switch_with_ports(AN2_SWITCH_PORTS)
    }

    /// Adds a switch with a custom port count (AN1 used 12).
    pub fn add_switch_with_ports(&mut self, ports: u8) -> SwitchId {
        self.switch_ports.push(ports);
        SwitchId((self.switch_ports.len() - 1) as u16)
    }

    /// Adds a host (two ports: active + alternate).
    pub fn add_host(&mut self) -> HostId {
        self.host_ports.push(HOST_PORTS);
        HostId((self.host_ports.len() - 1) as u16)
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switch_ports.len()
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.host_ports.len()
    }

    /// All switch ids.
    pub fn switches(&self) -> impl Iterator<Item = SwitchId> + '_ {
        (0..self.switch_ports.len()).map(|i| SwitchId(i as u16))
    }

    /// All host ids.
    pub fn hosts(&self) -> impl Iterator<Item = HostId> + '_ {
        (0..self.host_ports.len()).map(|i| HostId(i as u16))
    }

    /// All link ids (including dead links).
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len()).map(|i| LinkId(i as u32))
    }

    /// Number of links (including dead ones).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    fn port_count(&self, node: Node) -> u8 {
        match node {
            Node::Switch(s) => self.switch_ports[s.0 as usize],
            Node::Host(h) => self.host_ports[h.0 as usize],
        }
    }

    fn port_in_use(&self, node: Node, port: Port) -> bool {
        self.links.iter().any(|l| {
            (l.a.node == node && l.a.port == port) || (l.b.node == node && l.b.port == port)
        })
    }

    /// The lowest-numbered free port on `node`, if any.
    pub fn free_port(&self, node: Node) -> Option<Port> {
        (0..self.port_count(node))
            .map(Port)
            .find(|&p| !self.port_in_use(node, p))
    }

    /// Connects two nodes on automatically chosen free ports.
    ///
    /// # Errors
    ///
    /// Fails on self-loops, host-to-host links, or port exhaustion.
    pub fn connect(&mut self, a: Node, b: Node) -> Result<LinkId, TopologyError> {
        if a == b {
            return Err(TopologyError::SelfLoop(a));
        }
        if matches!((a, b), (Node::Host(_), Node::Host(_))) {
            return Err(TopologyError::HostToHost);
        }
        let pa = self.free_port(a).ok_or(TopologyError::NoFreePort(a))?;
        let pb = self.free_port(b).ok_or(TopologyError::NoFreePort(b))?;
        self.connect_ports(
            Endpoint { node: a, port: pa },
            Endpoint { node: b, port: pb },
        )
    }

    /// Connects two specific ports.
    ///
    /// # Errors
    ///
    /// Fails if either port is cabled already, on self-loops, or host-to-host
    /// links.
    pub fn connect_ports(&mut self, a: Endpoint, b: Endpoint) -> Result<LinkId, TopologyError> {
        if a.node == b.node {
            return Err(TopologyError::SelfLoop(a.node));
        }
        if matches!((a.node, b.node), (Node::Host(_), Node::Host(_))) {
            return Err(TopologyError::HostToHost);
        }
        for (node, port) in [(a.node, a.port), (b.node, b.port)] {
            if port.0 >= self.port_count(node) {
                return Err(TopologyError::NoFreePort(node));
            }
            if self.port_in_use(node, port) {
                return Err(TopologyError::PortInUse(Endpoint { node, port }));
            }
        }
        self.links.push(Link {
            a,
            b,
            state: LinkState::Working,
            latency: self.default_latency,
        });
        Ok(LinkId((self.links.len() - 1) as u32))
    }

    /// Convenience: connect two switches on free ports.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Topology::connect`].
    pub fn link_switches(&mut self, a: SwitchId, b: SwitchId) -> Result<LinkId, TopologyError> {
        self.connect(Node::Switch(a), Node::Switch(b))
    }

    /// Convenience: attach a host to a switch on free ports.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Topology::connect`].
    pub fn attach_host(&mut self, h: HostId, s: SwitchId) -> Result<LinkId, TopologyError> {
        self.connect(Node::Host(h), Node::Switch(s))
    }

    /// The two endpoints of a link.
    pub fn endpoints(&self, id: LinkId) -> (Endpoint, Endpoint) {
        let l = &self.links[id.0 as usize];
        (l.a, l.b)
    }

    /// The link's current state.
    pub fn link_state(&self, id: LinkId) -> LinkState {
        self.links[id.0 as usize].state
    }

    /// Marks a link working or dead (the monitor's output, §2).
    pub fn set_link_state(&mut self, id: LinkId, state: LinkState) {
        self.links[id.0 as usize].state = state;
    }

    /// One-way latency of a link.
    pub fn link_latency(&self, id: LinkId) -> SimDuration {
        self.links[id.0 as usize].latency
    }

    /// Overrides a link's one-way latency.
    pub fn set_link_latency(&mut self, id: LinkId, latency: SimDuration) {
        self.links[id.0 as usize].latency = latency;
    }

    /// Given a link and one of its endpoint nodes, the far endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of the link.
    pub fn far_end(&self, id: LinkId, from: Node) -> Endpoint {
        let l = &self.links[id.0 as usize];
        if l.a.node == from {
            l.b
        } else if l.b.node == from {
            l.a
        } else {
            panic!("{from} is not an endpoint of {id}")
        }
    }

    /// The local endpoint of a link as seen from `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of the link.
    pub fn near_end(&self, id: LinkId, from: Node) -> Endpoint {
        let l = &self.links[id.0 as usize];
        if l.a.node == from {
            l.a
        } else if l.b.node == from {
            l.b
        } else {
            panic!("{from} is not an endpoint of {id}")
        }
    }

    /// Working links incident to a node, with the far endpoint.
    pub fn working_links_of(&self, node: Node) -> Vec<(LinkId, Endpoint)> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.state == LinkState::Working)
            .filter_map(|(i, l)| {
                if l.a.node == node {
                    Some((LinkId(i as u32), l.b))
                } else if l.b.node == node {
                    Some((LinkId(i as u32), l.a))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Neighbouring switches reachable over working links (deduplicated,
    /// sorted). Parallel links to the same switch appear once.
    pub fn switch_neighbors(&self, s: SwitchId) -> Vec<SwitchId> {
        let mut out: Vec<SwitchId> = self
            .working_links_of(Node::Switch(s))
            .into_iter()
            .filter_map(|(_, far)| match far.node {
                Node::Switch(t) => Some(t),
                Node::Host(_) => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Working links from switch `s` to switch `t` (there may be several in
    /// redundant installations).
    pub fn links_between(&self, s: SwitchId, t: SwitchId) -> Vec<LinkId> {
        self.working_links_of(Node::Switch(s))
            .into_iter()
            .filter(|(_, far)| far.node == Node::Switch(t))
            .map(|(id, _)| id)
            .collect()
    }

    /// The switches a host is attached to over working links (active +
    /// alternate, Figure 1).
    pub fn host_attachments(&self, h: HostId) -> Vec<(LinkId, SwitchId)> {
        self.working_links_of(Node::Host(h))
            .into_iter()
            .filter_map(|(id, far)| match far.node {
                Node::Switch(s) => Some((id, s)),
                Node::Host(_) => None,
            })
            .collect()
    }

    /// Whether all switches are mutually reachable over working switch-to-
    /// switch links. (Hosts do not forward traffic, so connectivity is a
    /// property of the switch subgraph.)
    pub fn switches_connected(&self) -> bool {
        self.switch_partitions().len() <= 1
    }

    /// The connected components of the switch subgraph over working links.
    pub fn switch_partitions(&self) -> Vec<Vec<SwitchId>> {
        let n = self.switch_count();
        let mut seen = vec![false; n];
        let mut parts = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut q = VecDeque::new();
            q.push_back(SwitchId(start as u16));
            seen[start] = true;
            while let Some(s) = q.pop_front() {
                comp.push(s);
                for t in self.switch_neighbors(s) {
                    if !seen[t.0 as usize] {
                        seen[t.0 as usize] = true;
                        q.push_back(t);
                    }
                }
            }
            comp.sort_unstable();
            parts.push(comp);
        }
        parts
    }

    /// Whether the switch subgraph stays connected after removing any single
    /// working inter-switch link — the redundancy property Figure 1's
    /// installation is built for.
    pub fn survives_any_single_link_failure(&self) -> bool {
        if !self.switches_connected() {
            return false;
        }
        for id in self.links() {
            let (a, b) = self.endpoints(id);
            if !matches!((a.node, b.node), (Node::Switch(_), Node::Switch(_))) {
                continue;
            }
            if self.link_state(id) != LinkState::Working {
                continue;
            }
            let mut probe = self.clone();
            probe.set_link_state(id, LinkState::Dead);
            if !probe.switches_connected() {
                return false;
            }
        }
        true
    }

    /// Whether every host still reaches some switch, and the switch subgraph
    /// stays connected, after any single *switch* is powered off — the
    /// paper's favourite demo ("pulling the plug on an arbitrary switch",
    /// §1).
    pub fn survives_any_single_switch_failure(&self) -> bool {
        for victim in self.switches() {
            let mut probe = self.clone();
            probe.kill_switch(victim);
            let parts = probe.switch_partitions();
            let live: Vec<_> = parts.iter().flatten().filter(|s| **s != victim).collect();
            // All remaining switches mutually connected.
            let mut remaining_parts = 0;
            for p in &parts {
                if p.iter().any(|s| *s != victim) {
                    remaining_parts += 1;
                }
            }
            if remaining_parts > 1 || live.is_empty() {
                return false;
            }
            for h in probe.hosts() {
                if probe.host_attachments(h).is_empty() {
                    return false;
                }
            }
        }
        true
    }

    /// Marks every link incident to a switch dead — a switch crash/power-off.
    pub fn kill_switch(&mut self, s: SwitchId) {
        for i in 0..self.links.len() {
            let l = &self.links[i];
            if l.a.node == Node::Switch(s) || l.b.node == Node::Switch(s) {
                self.links[i].state = LinkState::Dead;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Topology, [SwitchId; 3]) {
        let mut t = Topology::new();
        let a = t.add_switch();
        let b = t.add_switch();
        let c = t.add_switch();
        t.link_switches(a, b).unwrap();
        t.link_switches(b, c).unwrap();
        t.link_switches(c, a).unwrap();
        (t, [a, b, c])
    }

    #[test]
    fn ids_are_dense_and_displayable() {
        let (t, [a, b, c]) = triangle();
        assert_eq!((a, b, c), (SwitchId(0), SwitchId(1), SwitchId(2)));
        assert_eq!(t.switch_count(), 3);
        assert_eq!(a.to_string(), "sw0");
        assert_eq!(HostId(3).to_string(), "host3");
        assert_eq!(LinkId(1).to_string(), "link1");
        assert_eq!(Port(4).to_string(), "p4");
        assert_eq!(Node::Switch(a).to_string(), "sw0");
    }

    #[test]
    fn connect_assigns_free_ports_in_order() {
        let (t, [a, b, _]) = triangle();
        let (ea, eb) = t.endpoints(LinkId(0));
        assert_eq!(
            ea,
            Endpoint {
                node: a.into(),
                port: Port(0)
            }
        );
        assert_eq!(
            eb,
            Endpoint {
                node: b.into(),
                port: Port(0)
            }
        );
        let (ea2, _) = t.endpoints(LinkId(2)); // c-a link: a's second port
        assert_eq!(ea2.node, Node::Switch(SwitchId(2)));
    }

    #[test]
    fn self_loop_and_host_host_rejected() {
        let mut t = Topology::new();
        let a = t.add_switch();
        let h1 = t.add_host();
        let h2 = t.add_host();
        assert_eq!(
            t.connect(a.into(), a.into()),
            Err(TopologyError::SelfLoop(a.into()))
        );
        assert_eq!(
            t.connect(h1.into(), h2.into()),
            Err(TopologyError::HostToHost)
        );
    }

    #[test]
    fn port_exhaustion() {
        let mut t = Topology::new();
        let hub = t.add_switch_with_ports(2);
        let others: Vec<_> = (0..3).map(|_| t.add_switch()).collect();
        t.link_switches(hub, others[0]).unwrap();
        t.link_switches(hub, others[1]).unwrap();
        assert_eq!(
            t.link_switches(hub, others[2]),
            Err(TopologyError::NoFreePort(hub.into()))
        );
    }

    #[test]
    fn port_reuse_rejected() {
        let mut t = Topology::new();
        let a = t.add_switch();
        let b = t.add_switch();
        let c = t.add_switch();
        let ea = Endpoint {
            node: a.into(),
            port: Port(0),
        };
        let eb = Endpoint {
            node: b.into(),
            port: Port(0),
        };
        t.connect_ports(ea, eb).unwrap();
        let ec = Endpoint {
            node: c.into(),
            port: Port(0),
        };
        assert_eq!(t.connect_ports(ea, ec), Err(TopologyError::PortInUse(ea)));
        // Out-of-range port.
        let bad = Endpoint {
            node: c.into(),
            port: Port(99),
        };
        assert_eq!(
            t.connect_ports(
                bad,
                Endpoint {
                    node: a.into(),
                    port: Port(5)
                }
            ),
            Err(TopologyError::NoFreePort(c.into()))
        );
    }

    #[test]
    fn neighbors_and_far_end() {
        let (t, [a, b, c]) = triangle();
        assert_eq!(t.switch_neighbors(a), vec![b, c]);
        let far = t.far_end(LinkId(0), a.into());
        assert_eq!(far.node, Node::Switch(b));
        let near = t.near_end(LinkId(0), a.into());
        assert_eq!(near.node, Node::Switch(a));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn far_end_wrong_node_panics() {
        let (t, [_, _, c]) = triangle();
        t.far_end(LinkId(0), c.into());
    }

    #[test]
    fn dead_links_hide_from_neighbor_queries() {
        let (mut t, [a, _b, c]) = triangle();
        t.set_link_state(LinkId(0), LinkState::Dead);
        assert_eq!(t.switch_neighbors(a), vec![c]);
        assert_eq!(t.link_state(LinkId(0)), LinkState::Dead);
        assert!(t.switches_connected(), "triangle minus one edge is a path");
        t.set_link_state(LinkId(1), LinkState::Dead);
        assert!(!t.switches_connected());
        assert_eq!(t.switch_partitions().len(), 2);
    }

    #[test]
    fn parallel_links_supported() {
        let mut t = Topology::new();
        let a = t.add_switch();
        let b = t.add_switch();
        t.link_switches(a, b).unwrap();
        t.link_switches(a, b).unwrap();
        assert_eq!(t.links_between(a, b).len(), 2);
        assert_eq!(t.switch_neighbors(a), vec![b], "deduplicated");
        t.set_link_state(LinkId(0), LinkState::Dead);
        assert!(t.switches_connected(), "redundant link keeps connectivity");
    }

    #[test]
    fn host_attachments_and_failover() {
        let mut t = Topology::new();
        let a = t.add_switch();
        let b = t.add_switch();
        t.link_switches(a, b).unwrap();
        let h = t.add_host();
        let l1 = t.attach_host(h, a).unwrap();
        let _l2 = t.attach_host(h, b).unwrap();
        assert_eq!(t.host_attachments(h).len(), 2);
        t.set_link_state(l1, LinkState::Dead);
        let att = t.host_attachments(h);
        assert_eq!(att.len(), 1);
        assert_eq!(att[0].1, b);
    }

    #[test]
    fn single_link_failure_survival() {
        let (t, _) = triangle();
        assert!(t.survives_any_single_link_failure());
        let mut line = Topology::new();
        let a = line.add_switch();
        let b = line.add_switch();
        line.link_switches(a, b).unwrap();
        assert!(!line.survives_any_single_link_failure());
    }

    #[test]
    fn switch_failure_survival_requires_dual_homing() {
        let (mut t, [a, b, _c]) = triangle();
        let h = t.add_host();
        t.attach_host(h, a).unwrap();
        // Host homed to only one switch: killing that switch strands it.
        assert!(!t.survives_any_single_switch_failure());
        t.attach_host(h, b).unwrap();
        assert!(t.survives_any_single_switch_failure());
    }

    #[test]
    fn kill_switch_downs_all_its_links() {
        let (mut t, [a, _, _]) = triangle();
        t.kill_switch(a);
        assert!(t.switch_neighbors(a).is_empty());
        // b-c link survives.
        assert_eq!(t.switch_neighbors(SwitchId(1)), vec![SwitchId(2)]);
    }

    #[test]
    fn latency_defaults_and_overrides() {
        let mut t = Topology::new();
        t.set_default_latency(SimDuration::from_nanos(500));
        let a = t.add_switch();
        let b = t.add_switch();
        let l = t.link_switches(a, b).unwrap();
        assert_eq!(t.link_latency(l), SimDuration::from_nanos(500));
        t.set_link_latency(l, SimDuration::from_micros(50));
        assert_eq!(t.link_latency(l), SimDuration::from_micros(50));
    }

    #[test]
    fn error_display() {
        assert!(TopologyError::HostToHost.to_string().contains("switches"));
        assert!(TopologyError::SelfLoop(Node::Switch(SwitchId(1)))
            .to_string()
            .contains("sw1"));
    }
}
