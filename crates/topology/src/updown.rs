//! Up\*/down\* routing and deadlock analysis (§5).
//!
//! "The rules for route restriction are based on the spanning tree formed
//! during reconfiguration. Each link in the network is assigned an
//! orientation, with up being toward the root of the tree. (If the two ends
//! of the link are at the same level in the tree, then up is toward the
//! higher-numbered switch.) Messages are only routed on up\*/down\* paths,
//! i.e. paths in which no traversal down a link is followed by an upward
//! traversal. This restriction is sufficient to prevent cycle formation and
//! thus to prevent deadlock."
//!
//! This module implements the orientation rule, shortest legal-route search,
//! the channel-dependency-graph acyclicity check that proves (or refutes)
//! deadlock freedom for a route set, and the path-inflation metric for the
//! paper's observation that the restriction "may eliminate some potential
//! routes and thus have a negative effect on performance".

use crate::graph::{SwitchId, Topology};
use crate::paths;
use crate::spanning::SpanningTree;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// Whether traversing the link `from -> to` goes *up* under the tree's
/// orientation: toward smaller depth, with ties toward the higher-numbered
/// switch (§5).
///
/// # Panics
///
/// Panics if either switch is outside the spanning tree.
pub fn is_up(tree: &SpanningTree, from: SwitchId, to: SwitchId) -> bool {
    let df = tree.depth(from).expect("from outside spanning tree");
    let dt = tree.depth(to).expect("to outside spanning tree");
    match dt.cmp(&df) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => to > from,
    }
}

/// Whether a switch path obeys the up\*/down\* rule: once a hop goes down,
/// no later hop may go up.
pub fn is_legal_path(tree: &SpanningTree, path: &[SwitchId]) -> bool {
    let mut descended = false;
    for w in path.windows(2) {
        let up = is_up(tree, w[0], w[1]);
        if up && descended {
            return false;
        }
        if !up {
            descended = true;
        }
    }
    true
}

/// The shortest up\*/down\*-legal path from `src` to `dst` over working
/// links, or `None` if unreachable. BFS over `(switch, descended)` states;
/// deterministic tie-breaking by switch id.
///
/// A legal path always exists between tree members in a connected topology
/// (up to the root, then down), so `None` only occurs across partitions.
pub fn route(
    topo: &Topology,
    tree: &SpanningTree,
    src: SwitchId,
    dst: SwitchId,
) -> Option<Vec<SwitchId>> {
    if src == dst {
        return Some(vec![src]);
    }
    let n = topo.switch_count();
    // State: switch index * 2 + descended(0/1).
    let state = |s: SwitchId, descended: bool| (s.0 as usize) * 2 + usize::from(descended);
    let mut prev: Vec<Option<usize>> = vec![None; n * 2];
    let mut seen = vec![false; n * 2];
    let start = state(src, false);
    seen[start] = true;
    let mut q = VecDeque::new();
    q.push_back(start);
    while let Some(cur) = q.pop_front() {
        let s = SwitchId((cur / 2) as u16);
        let descended = cur % 2 == 1;
        for t in topo.switch_neighbors(s) {
            if !tree.contains(t) {
                continue;
            }
            let up = is_up(tree, s, t);
            if up && descended {
                continue; // illegal: up after down
            }
            let next = state(t, descended || !up);
            if seen[next] {
                continue;
            }
            seen[next] = true;
            prev[next] = Some(cur);
            if t == dst {
                // Reconstruct.
                let mut path = vec![t];
                let mut at = next;
                while let Some(p) = prev[at] {
                    path.push(SwitchId((p / 2) as u16));
                    at = p;
                }
                path.reverse();
                return Some(path);
            }
            q.push_back(next);
        }
    }
    None
}

/// Mean hop-count inflation of up\*/down\* routes relative to unrestricted
/// shortest paths, over all ordered switch pairs: `1.0` means no penalty.
/// Returns `None` for disconnected or trivial topologies.
pub fn path_inflation(topo: &Topology, tree: &SpanningTree) -> Option<f64> {
    let mut total_ratio = 0.0;
    let mut pairs = 0u64;
    for s in topo.switches() {
        for t in topo.switches() {
            if s == t {
                continue;
            }
            let free = paths::shortest_path(topo, s, t)?.len() as f64 - 1.0;
            let legal = route(topo, tree, s, t)?.len() as f64 - 1.0;
            total_ratio += legal / free;
            pairs += 1;
        }
    }
    if pairs == 0 {
        None
    } else {
        Some(total_ratio / pairs as f64)
    }
}

/// A directed channel: the use of a link in one direction by a route.
pub type Channel = (SwitchId, SwitchId);

/// Builds the channel-dependency graph of a route set: there is an edge from
/// channel `c1` to channel `c2` whenever some route uses `c2` immediately
/// after `c1` (a packet can hold a buffer on `c1` while waiting for one on
/// `c2`). Deadlock is possible in FIFO (wormhole-style) forwarding exactly
/// when this graph has a cycle.
pub fn channel_dependencies(routes: &[Vec<SwitchId>]) -> HashMap<Channel, HashSet<Channel>> {
    let mut deps: HashMap<Channel, HashSet<Channel>> = HashMap::new();
    for route in routes {
        for w in route.windows(3) {
            let c1 = (w[0], w[1]);
            let c2 = (w[1], w[2]);
            deps.entry(c1).or_default().insert(c2);
            deps.entry(c2).or_default();
        }
        if let [a, b] = route[..] {
            deps.entry((a, b)).or_default();
        }
    }
    deps
}

/// Whether a channel-dependency graph is acyclic (⇒ deadlock-free FIFO
/// forwarding for the route set that produced it).
pub fn dependency_graph_acyclic(deps: &HashMap<Channel, HashSet<Channel>>) -> bool {
    // Iterative three-color DFS.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color: HashMap<Channel, Color> = deps.keys().map(|&c| (c, Color::White)).collect();
    for &start in deps.keys() {
        if color[&start] != Color::White {
            continue;
        }
        let mut stack = vec![(start, false)];
        while let Some((node, processed)) = stack.pop() {
            if processed {
                color.insert(node, Color::Black);
                continue;
            }
            match color[&node] {
                Color::Black => continue,
                Color::Grey => continue,
                Color::White => {}
            }
            color.insert(node, Color::Grey);
            stack.push((node, true));
            if let Some(nexts) = deps.get(&node) {
                for &nxt in nexts {
                    match color.get(&nxt) {
                        Some(Color::Grey) => return false, // back edge: cycle
                        Some(Color::White) => stack.push((nxt, false)),
                        _ => {}
                    }
                }
            }
        }
    }
    true
}

/// Builds the *canonical* spanning forest of an agreed edge set: one BFS
/// tree per connected component, rooted at the component's highest-numbered
/// switch, with neighbours explored in ascending id order.
///
/// This is a pure function of `(live, edges)` — unlike the propagation tree
/// the reconfiguration protocol happens to build (which depends on message
/// race timing), two parties that agree on the surviving topology compute
/// byte-identical trees, and therefore byte-identical up\*/down\* routes.
/// The embedded control plane installs routes from this forest, and the
/// standalone harness oracle recomputes the same forest from its converged
/// view for comparison.
///
/// `live` lists the switches that exist (crashed switches are excluded);
/// isolated live switches become singleton trees. Edges with an endpoint
/// outside `live` are ignored. The forest is sorted by root id.
pub fn canonical_forest(
    switch_count: usize,
    live: &[SwitchId],
    edges: &[(SwitchId, SwitchId)],
) -> Vec<SpanningTree> {
    let live_set: BTreeSet<SwitchId> = live.iter().copied().collect();
    let mut adj: BTreeMap<SwitchId, BTreeSet<SwitchId>> =
        live_set.iter().map(|&s| (s, BTreeSet::new())).collect();
    for &(a, b) in edges {
        if a != b && live_set.contains(&a) && live_set.contains(&b) {
            adj.get_mut(&a).unwrap().insert(b);
            adj.get_mut(&b).unwrap().insert(a);
        }
    }
    // Component discovery: peel the highest unvisited switch, flood from it.
    let mut unvisited = live_set;
    let mut forest = Vec::new();
    while let Some(&seed) = unvisited.iter().next_back() {
        // Find the component containing `seed`.
        let mut component = BTreeSet::new();
        let mut q = VecDeque::new();
        component.insert(seed);
        q.push_back(seed);
        while let Some(s) = q.pop_front() {
            for &t in &adj[&s] {
                if component.insert(t) {
                    q.push_back(t);
                }
            }
        }
        // Canonical tree: BFS from the highest id, ascending neighbour order
        // (BTreeSet iteration), first visit assigns the parent.
        let root = *component.iter().next_back().expect("non-empty component");
        let mut parents = Vec::new();
        let mut seen: BTreeSet<SwitchId> = BTreeSet::new();
        seen.insert(root);
        q.push_back(root);
        while let Some(s) = q.pop_front() {
            for &t in &adj[&s] {
                if seen.insert(t) {
                    parents.push((t, s));
                    q.push_back(t);
                }
            }
        }
        forest.push(SpanningTree::from_parents(root, switch_count, parents));
        for s in &component {
            unvisited.remove(s);
        }
    }
    forest.sort_by_key(|t| t.root());
    forest
}

/// A memoizing wrapper around [`route`] keyed on a [`canonical_forest`],
/// supporting the incremental invalidation the embedded control plane needs:
/// when a link dies but the canonical forest is unchanged (the dead edge was
/// a cross edge — common on the dual-homed SRC topology), only the cached
/// routes that actually traversed that adjacency are dropped.
///
/// Dropping an edge never shortens a path and never reorders the BFS
/// tie-break among surviving candidates, so a retained cache entry is
/// byte-identical to what a fresh [`route`] call would return — callers may
/// compare cached routes against recomputation. Edge *additions* can shorten
/// paths, so [`RouteCache::set_forest`] with a changed forest, or an
/// explicit [`RouteCache::invalidate_all`], must follow any revival.
#[derive(Debug, Default)]
pub struct RouteCache {
    forest: Vec<SpanningTree>,
    routes: HashMap<(SwitchId, SwitchId), Option<Vec<SwitchId>>>,
    hits: u64,
    misses: u64,
}

impl RouteCache {
    /// An empty cache with no forest (every lookup returns `None` until
    /// [`RouteCache::set_forest`] is called).
    pub fn new() -> Self {
        RouteCache::default()
    }

    /// Installs the forest routes are computed against. Clears the memo only
    /// if the forest actually changed.
    pub fn set_forest(&mut self, forest: Vec<SpanningTree>) {
        if self.forest != forest {
            self.forest = forest;
            self.routes.clear();
        }
    }

    /// The installed forest.
    pub fn forest(&self) -> &[SpanningTree] {
        &self.forest
    }

    /// The tree containing `s`, if any.
    pub fn tree_of(&self, s: SwitchId) -> Option<&SpanningTree> {
        self.forest.iter().find(|t| t.contains(s))
    }

    /// The memoized up\*/down\* route from `src` to `dst` over `topo`'s
    /// working links, or `None` if they are in different partitions (also
    /// memoized). `topo` must be consistent with the installed forest.
    pub fn route(
        &mut self,
        topo: &Topology,
        src: SwitchId,
        dst: SwitchId,
    ) -> Option<Vec<SwitchId>> {
        if let Some(cached) = self.routes.get(&(src, dst)) {
            self.hits += 1;
            return cached.clone();
        }
        self.misses += 1;
        let computed = self
            .forest
            .iter()
            .find(|t| t.contains(src) && t.contains(dst))
            .and_then(|tree| route(topo, tree, src, dst));
        self.routes.insert((src, dst), computed.clone());
        computed
    }

    /// Drops every cached route that traverses the adjacency `a — b` (in
    /// either direction). Memoized misses are kept: a dead edge can newly
    /// partition pairs but never reconnect them, so `None` stays `None` and
    /// `Some` entries avoiding the edge stay valid.
    pub fn invalidate_edge(&mut self, a: SwitchId, b: SwitchId) {
        self.routes.retain(|_, r| match r {
            None => true,
            Some(path) => !path
                .windows(2)
                .any(|w| (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a)),
        });
    }

    /// Drops every memoized route (use after a link revival).
    pub fn invalidate_all(&mut self) {
        self.routes.clear();
    }

    /// `(hits, misses)` counters for the memo.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Convenience: computes up\*/down\* routes for every ordered switch pair and
/// checks that their channel-dependency graph is acyclic. This is the §5
/// deadlock-freedom theorem, checked constructively.
pub fn all_pairs_updown_deadlock_free(topo: &Topology, tree: &SpanningTree) -> bool {
    let mut routes = Vec::new();
    for s in topo.switches() {
        for t in topo.switches() {
            if s == t {
                continue;
            }
            if let Some(r) = route(topo, tree, s, t) {
                routes.push(r);
            }
        }
    }
    dependency_graph_acyclic(&channel_dependencies(&routes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn ring_with_tree(n: usize) -> (Topology, SpanningTree) {
        let topo = generators::ring(n);
        let tree = SpanningTree::bfs(&topo, SwitchId(0));
        (topo, tree)
    }

    #[test]
    fn orientation_depth_rule() {
        let (_, tree) = ring_with_tree(6);
        // sw1 (depth 1) -> sw0 (root) is up; reverse is down.
        assert!(is_up(&tree, SwitchId(1), SwitchId(0)));
        assert!(!is_up(&tree, SwitchId(0), SwitchId(1)));
    }

    #[test]
    fn orientation_tie_breaks_to_higher_id() {
        // In a 4-ring rooted at 0: sw1 and sw3 are depth 1; sw2 depth 2.
        // Check the equal-depth rule on a square with a diagonal.
        let mut topo = generators::ring(4);
        topo.link_switches(SwitchId(1), SwitchId(3)).unwrap();
        let tree = SpanningTree::bfs(&topo, SwitchId(0));
        assert_eq!(tree.depth(SwitchId(1)), tree.depth(SwitchId(3)));
        assert!(is_up(&tree, SwitchId(1), SwitchId(3)), "toward higher id");
        assert!(!is_up(&tree, SwitchId(3), SwitchId(1)));
    }

    #[test]
    fn legal_path_rule() {
        let (_, tree) = ring_with_tree(6);
        // up then down: 2 -> 1 -> 0 -> 5 is legal (up, up, down).
        assert!(is_legal_path(
            &tree,
            &[SwitchId(2), SwitchId(1), SwitchId(0), SwitchId(5)]
        ));
        // down then up: 0 -> 1 -> 0 style violation.
        assert!(!is_legal_path(
            &tree,
            &[SwitchId(0), SwitchId(1), SwitchId(2), SwitchId(1)]
        ));
        // single node and single hop are always legal.
        assert!(is_legal_path(&tree, &[SwitchId(3)]));
        assert!(is_legal_path(&tree, &[SwitchId(3), SwitchId(2)]));
    }

    #[test]
    fn route_finds_legal_shortest() {
        let (topo, tree) = ring_with_tree(6);
        for s in topo.switches() {
            for t in topo.switches() {
                let r = route(&topo, &tree, s, t).expect("connected");
                assert_eq!(r.first(), Some(&s));
                assert_eq!(r.last(), Some(&t));
                assert!(is_legal_path(&tree, &r), "route {r:?} must be legal");
            }
        }
    }

    #[test]
    fn route_may_be_longer_than_shortest() {
        // In a 6-ring rooted at 0, going 3 -> 4 -> 5 would be down-up at some
        // point; verify inflation exists for some pair.
        let (topo, tree) = ring_with_tree(6);
        let mut inflated = 0;
        for s in topo.switches() {
            for t in topo.switches() {
                if s == t {
                    continue;
                }
                let free = paths::shortest_path(&topo, s, t).unwrap().len();
                let legal = route(&topo, &tree, s, t).unwrap().len();
                assert!(legal >= free);
                if legal > free {
                    inflated += 1;
                }
            }
        }
        assert!(inflated > 0, "a ring must show some up*/down* inflation");
    }

    #[test]
    fn inflation_is_one_on_trees() {
        let topo = generators::tree(2, 3);
        let tree = SpanningTree::bfs(&topo, SwitchId(0));
        let inf = path_inflation(&topo, &tree).unwrap();
        assert!(
            (inf - 1.0).abs() < 1e-12,
            "tree topologies have unique paths"
        );
    }

    #[test]
    fn inflation_above_one_on_ring() {
        let (topo, tree) = ring_with_tree(8);
        let inf = path_inflation(&topo, &tree).unwrap();
        assert!(inf > 1.0);
    }

    #[test]
    fn updown_routes_deadlock_free_on_many_topologies() {
        let mut rng = an2_sim::SimRng::new(99);
        let cases: Vec<Topology> = vec![
            generators::ring(8),
            generators::torus(4, 4),
            generators::mesh(3, 5),
            generators::src_installation(8, 0),
            generators::random_connected(24, 20, &mut rng),
        ];
        for topo in cases {
            let tree = SpanningTree::bfs(&topo, SwitchId(0));
            assert!(
                all_pairs_updown_deadlock_free(&topo, &tree),
                "up*/down* produced a dependency cycle"
            );
        }
    }

    #[test]
    fn unrestricted_ring_routing_has_dependency_cycle() {
        // Force every route clockwise around a ring: the canonical deadlock.
        let n = 4;
        let routes: Vec<Vec<SwitchId>> = (0..n)
            .map(|i| vec![SwitchId(i), SwitchId((i + 1) % n), SwitchId((i + 2) % n)])
            .collect();
        let deps = channel_dependencies(&routes);
        assert!(!dependency_graph_acyclic(&deps), "cycle must be detected");
    }

    #[test]
    fn two_hop_routes_alone_cannot_deadlock() {
        let routes = vec![
            vec![SwitchId(0), SwitchId(1)],
            vec![SwitchId(1), SwitchId(0)],
        ];
        let deps = channel_dependencies(&routes);
        assert_eq!(deps.len(), 2);
        assert!(dependency_graph_acyclic(&deps));
    }

    #[test]
    fn route_same_switch() {
        let (topo, tree) = ring_with_tree(4);
        assert_eq!(
            route(&topo, &tree, SwitchId(2), SwitchId(2)),
            Some(vec![SwitchId(2)])
        );
    }

    #[test]
    fn route_across_partition_is_none() {
        let mut topo = generators::ring(4);
        let lonely = topo.add_switch();
        let tree = SpanningTree::bfs(&topo, SwitchId(0));
        assert_eq!(route(&topo, &tree, SwitchId(0), lonely), None);
    }

    /// Brute force: enumerate every simple path up to length n and keep the
    /// shortest legal one.
    fn brute_force_legal_shortest(
        topo: &Topology,
        tree: &SpanningTree,
        src: SwitchId,
        dst: SwitchId,
    ) -> Option<usize> {
        fn dfs(
            topo: &Topology,
            tree: &SpanningTree,
            dst: SwitchId,
            path: &mut Vec<SwitchId>,
            best: &mut Option<usize>,
        ) {
            let cur = *path.last().unwrap();
            if cur == dst {
                let len = path.len();
                if best.is_none() || len < best.unwrap() {
                    *best = Some(len);
                }
                return;
            }
            if best.is_some_and(|b| path.len() >= b) {
                return; // cannot improve
            }
            for t in topo.switch_neighbors(cur) {
                if path.contains(&t) {
                    continue;
                }
                path.push(t);
                if is_legal_path(tree, path) {
                    dfs(topo, tree, dst, path, best);
                }
                path.pop();
            }
        }
        let mut best = None;
        let mut path = vec![src];
        dfs(topo, tree, dst, &mut path, &mut best);
        best
    }

    #[test]
    fn canonical_forest_roots_and_determinism() {
        let topo = generators::ring(6);
        let live: Vec<SwitchId> = topo.switches().collect();
        let edges: Vec<(SwitchId, SwitchId)> = (0..6u16)
            .map(|i| {
                let j = (i + 1) % 6;
                (SwitchId(i.min(j)), SwitchId(i.max(j)))
            })
            .collect();
        let f1 = canonical_forest(6, &live, &edges);
        assert_eq!(f1.len(), 1);
        assert_eq!(f1[0].root(), SwitchId(5), "root = highest id in component");
        // Shuffled edge order yields the identical forest.
        let mut shuffled = edges.clone();
        shuffled.reverse();
        assert_eq!(f1, canonical_forest(6, &live, &shuffled));
    }

    #[test]
    fn canonical_forest_partitions_and_isolated() {
        // Two components {0,1} and {3,4}, plus isolated live switch 2, plus
        // a dead switch 5 (not in `live`) with a dangling edge.
        let live = [
            SwitchId(0),
            SwitchId(1),
            SwitchId(2),
            SwitchId(3),
            SwitchId(4),
        ];
        let edges = [
            (SwitchId(0), SwitchId(1)),
            (SwitchId(3), SwitchId(4)),
            (SwitchId(4), SwitchId(5)), // endpoint not live: ignored
        ];
        let forest = canonical_forest(6, &live, &edges);
        let roots: Vec<SwitchId> = forest.iter().map(|t| t.root()).collect();
        assert_eq!(roots, vec![SwitchId(1), SwitchId(2), SwitchId(4)]);
        assert_eq!(forest[1].len(), 1, "isolated switch is a singleton tree");
        assert!(!forest.iter().any(|t| t.contains(SwitchId(5))));
    }

    #[test]
    fn route_cache_matches_fresh_compute() {
        let topo = generators::src_installation(4, 0);
        let live: Vec<SwitchId> = topo.switches().collect();
        let edges: Vec<(SwitchId, SwitchId)> = topo
            .links()
            .filter_map(|l| {
                let (a, b) = topo.endpoints(l);
                match (a.node, b.node) {
                    (crate::Node::Switch(x), crate::Node::Switch(y)) => {
                        Some((SwitchId(x.0.min(y.0)), SwitchId(x.0.max(y.0))))
                    }
                    _ => None,
                }
            })
            .collect();
        let forest = canonical_forest(4, &live, &edges);
        let mut cache = RouteCache::new();
        cache.set_forest(forest.clone());
        for s in topo.switches() {
            for t in topo.switches() {
                let tree = forest.iter().find(|tr| tr.contains(s)).unwrap();
                let fresh = route(&topo, tree, s, t);
                assert_eq!(cache.route(&topo, s, t), fresh);
                // Second lookup is a hit with the same answer.
                assert_eq!(cache.route(&topo, s, t), fresh);
            }
        }
        let (hits, misses) = cache.stats();
        assert_eq!(hits, misses, "every pair looked up exactly twice");
    }

    #[test]
    fn route_cache_incremental_invalidation_is_exact() {
        // Kill a cross edge (forest unchanged), invalidate just that edge,
        // and check every surviving cache entry equals a fresh recompute.
        let mut topo = generators::ring(6);
        let live: Vec<SwitchId> = topo.switches().collect();
        let edges: Vec<(SwitchId, SwitchId)> = (0..6u16)
            .map(|i| {
                let j = (i + 1) % 6;
                (SwitchId(i.min(j)), SwitchId(i.max(j)))
            })
            .collect();
        let forest = canonical_forest(6, &live, &edges);
        let mut cache = RouteCache::new();
        cache.set_forest(forest);
        for s in topo.switches() {
            for t in topo.switches() {
                cache.route(&topo, s, t);
            }
        }
        // The 2—3 ring edge: both endpoints keep other links, and BFS from
        // root 5 never uses it as a tree edge check is not required — the
        // forest over the surviving edge set must simply stay equal.
        let dead = (SwitchId(2), SwitchId(3));
        let surviving: Vec<(SwitchId, SwitchId)> =
            edges.iter().copied().filter(|&e| e != dead).collect();
        let new_forest = canonical_forest(6, &live, &surviving);
        let link = topo
            .links_between(dead.0, dead.1)
            .first()
            .copied()
            .expect("ring edge exists");
        topo.set_link_state(link, crate::LinkState::Dead);
        cache.set_forest(new_forest.clone());
        cache.invalidate_edge(dead.0, dead.1);
        for s in topo.switches() {
            for t in topo.switches() {
                let fresh = new_forest
                    .iter()
                    .find(|tr| tr.contains(s) && tr.contains(t))
                    .and_then(|tree| route(&topo, tree, s, t));
                assert_eq!(cache.route(&topo, s, t), fresh, "{s} -> {t}");
            }
        }
    }

    #[test]
    fn route_is_shortest_among_legal_paths() {
        // Exhaustive check against brute force on several small graphs.
        let mut rng = an2_sim::SimRng::new(777);
        let mut cases = vec![
            generators::ring(6),
            generators::mesh(3, 3),
            generators::src_installation(6, 0),
        ];
        for _ in 0..3 {
            cases.push(generators::random_connected(7, 5, &mut rng));
        }
        for topo in cases {
            let tree = SpanningTree::bfs(&topo, SwitchId(0));
            for s in topo.switches() {
                for t in topo.switches() {
                    let got = route(&topo, &tree, s, t).unwrap().len();
                    let want = brute_force_legal_shortest(&topo, &tree, s, t)
                        .expect("legal path exists in connected graphs");
                    assert_eq!(got, want, "{s} -> {t}");
                }
            }
        }
    }
}
