//! Topology builders for experiments and tests.
//!
//! The paper's demo installation (Figure 1) has hosts with links to two
//! different switches and multiple switch-to-switch paths, so that a single
//! failure never partitions the network. [`src_installation`] reproduces
//! that style; the remaining generators cover the standard graph families
//! used when measuring reconfiguration and up\*/down\* behaviour.

use crate::graph::{SwitchId, Topology};
use an2_sim::SimRng;

/// A path of `n` switches: `0 - 1 - ... - n-1`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn line(n: usize) -> Topology {
    assert!(n > 0, "line needs at least one switch");
    let mut t = Topology::new();
    let sw: Vec<_> = (0..n).map(|_| t.add_switch()).collect();
    for w in sw.windows(2) {
        t.link_switches(w[0], w[1]).expect("line link");
    }
    t
}

/// A cycle of `n >= 3` switches.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> Topology {
    assert!(n >= 3, "ring needs at least three switches");
    let mut t = line(n);
    t.link_switches(SwitchId((n - 1) as u16), SwitchId(0))
        .expect("ring closure");
    t
}

/// A single wide-radix switch with `hosts` directly-attached hosts — the
/// smallest topology that exercises the multi-word port sets (> 64 ports)
/// in the crossbar schedulers. Pair it with a `SwitchConfig` whose `ports`
/// is at least `hosts`.
///
/// # Panics
///
/// Panics if `hosts` is 0 or exceeds the 255-port topology limit.
pub fn wide_hub(hosts: usize) -> Topology {
    assert!(
        (1..=u8::MAX as usize).contains(&hosts),
        "wide_hub takes 1..=255 hosts"
    );
    let mut t = Topology::new();
    let hub = t.add_switch_with_ports(hosts as u8);
    for _ in 0..hosts {
        let h = t.add_host();
        t.attach_host(h, hub).expect("hub host attach");
    }
    t
}

/// A hub (`sw0`) with `leaves` spokes.
///
/// # Panics
///
/// Panics if `leaves` exceeds the hub's 16 ports.
pub fn star(leaves: usize) -> Topology {
    let mut t = Topology::new();
    let hub = t.add_switch();
    for _ in 0..leaves {
        let leaf = t.add_switch();
        t.link_switches(hub, leaf).expect("star spoke");
    }
    t
}

/// A complete `arity`-ary tree of the given `depth` (depth 0 = just a root).
///
/// # Panics
///
/// Panics if `arity` is 0 or exceeds available ports.
pub fn tree(arity: usize, depth: usize) -> Topology {
    assert!(arity > 0, "tree arity must be positive");
    let mut t = Topology::new();
    let root = t.add_switch();
    let mut frontier = vec![root];
    for _ in 0..depth {
        let mut next = Vec::new();
        for &parent in &frontier {
            for _ in 0..arity {
                let child = t.add_switch();
                t.link_switches(parent, child).expect("tree edge");
                next.push(child);
            }
        }
        frontier = next;
    }
    t
}

/// A `w × h` grid (no wraparound). Switch `(x, y)` has id `y*w + x`.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn mesh(w: usize, h: usize) -> Topology {
    assert!(w > 0 && h > 0, "mesh dimensions must be positive");
    let mut t = Topology::new();
    let ids: Vec<Vec<SwitchId>> = (0..h)
        .map(|_| (0..w).map(|_| t.add_switch()).collect())
        .collect();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                t.link_switches(ids[y][x], ids[y][x + 1]).expect("mesh h");
            }
            if y + 1 < h {
                t.link_switches(ids[y][x], ids[y + 1][x]).expect("mesh v");
            }
        }
    }
    t
}

/// A `w × h` torus (grid with wraparound links). Needs `w, h >= 3` to avoid
/// parallel wrap edges colliding with grid edges.
///
/// # Panics
///
/// Panics if either dimension is below 3.
pub fn torus(w: usize, h: usize) -> Topology {
    assert!(w >= 3 && h >= 3, "torus dimensions must be at least 3");
    let mut t = mesh(w, h);
    for y in 0..h {
        t.link_switches(SwitchId((y * w + w - 1) as u16), SwitchId((y * w) as u16))
            .expect("torus wrap h");
    }
    for x in 0..w {
        t.link_switches(SwitchId(((h - 1) * w + x) as u16), SwitchId(x as u16))
            .expect("torus wrap v");
    }
    t
}

/// A connected random graph: a random spanning tree plus `extra_links`
/// additional random links (parallel links avoided; self-loops impossible).
/// With `extra_links >= n/2` these graphs are usually 2-edge-connected —
/// verify with [`Topology::survives_any_single_link_failure`] when the
/// experiment depends on it.
pub fn random_connected(n: usize, extra_links: usize, rng: &mut SimRng) -> Topology {
    assert!(n > 0, "need at least one switch");
    let mut t = Topology::new();
    let sw: Vec<_> = (0..n).map(|_| t.add_switch()).collect();
    // Random spanning tree: attach each new switch to a random earlier one.
    for i in 1..n {
        let j = rng.gen_range(i);
        t.link_switches(sw[i], sw[j]).expect("tree link");
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < extra_links && attempts < extra_links * 20 {
        attempts += 1;
        let a = rng.gen_range(n);
        let b = rng.gen_range(n);
        if a == b || !t.links_between(sw[a], sw[b]).is_empty() {
            continue;
        }
        if t.link_switches(sw[a], sw[b]).is_ok() {
            added += 1;
        }
    }
    t
}

/// A `k`-ary `n`-tree fat-tree: `n` levels of `k^(n-1)` switches each
/// (`n · k^(n-1)` total), butterfly-wired between adjacent levels, with
/// `k^n` hosts attached `k` per level-0 switch. Switch `(level, w)` has id
/// `level · k^(n-1) + w`; it links up to the `k` switches at `level + 1`
/// whose radix-`k` index differs from `w` only in digit `level`. Every
/// switch uses at most `2k` ports, so `k ≤ 8` fits the 16-port AN2 switch.
/// This is the scale topology for the N6 parallel-data-plane curve:
/// `fat_tree(2, 8)` is the 1024-switch, 256-host instance.
///
/// # Panics
///
/// Panics if `k < 2`, `k > 8`, `n < 2`, or the switch count overflows ids.
pub fn fat_tree(k: usize, n: usize) -> Topology {
    assert!((2..=8).contains(&k), "fat_tree arity must be in 2..=8");
    assert!(n >= 2, "fat_tree needs at least two levels");
    let radix: usize = k.pow((n - 1) as u32);
    let switches = n * radix;
    assert!(switches <= u16::MAX as usize, "fat_tree too large for ids");
    let mut t = Topology::new();
    let sw: Vec<_> = (0..switches).map(|_| t.add_switch()).collect();
    // `digit_stride[l] = k^l`: the place value of digit `l` of a
    // switch-in-level index.
    for level in 0..n - 1 {
        let stride = k.pow(level as u32);
        for w in 0..radix {
            let base = w - ((w / stride) % k) * stride; // digit `level` zeroed
            for d in 0..k {
                let up = base + d * stride;
                t.link_switches(sw[level * radix + w], sw[(level + 1) * radix + up])
                    .expect("fat-tree butterfly link");
            }
        }
    }
    for &edge in sw.iter().take(radix) {
        for _ in 0..k {
            let h = t.add_host();
            t.attach_host(h, edge).expect("fat-tree host link");
        }
    }
    t
}

/// An installation in the style of the paper's Figure 1:
///
/// * a redundant switch backbone (ring plus skip-chords, so no single link or
///   switch failure partitions it), and
/// * `hosts` workstations, each with an active link to one switch and an
///   alternate link to a *different* switch.
///
/// # Panics
///
/// Panics if `switches < 4`.
pub fn src_installation(switches: usize, hosts: usize) -> Topology {
    assert!(switches >= 4, "installation needs at least four switches");
    let mut t = Topology::new();
    let sw: Vec<_> = (0..switches).map(|_| t.add_switch()).collect();
    // Backbone ring.
    for i in 0..switches {
        t.link_switches(sw[i], sw[(i + 1) % switches])
            .expect("backbone ring");
    }
    // Skip-2 chords for switch-failure tolerance.
    for i in 0..switches {
        let j = (i + 2) % switches;
        if t.links_between(sw[i], sw[j]).is_empty() {
            let _ = t.link_switches(sw[i], sw[j]);
        }
    }
    // Dual-homed hosts, spread round-robin over adjacent switch pairs.
    for k in 0..hosts {
        let h = t.add_host();
        let primary = k % switches;
        let alternate = (primary + 1) % switches;
        t.attach_host(h, sw[primary]).expect("primary host link");
        t.attach_host(h, sw[alternate])
            .expect("alternate host link");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LinkState;

    #[test]
    fn line_shape() {
        let t = line(4);
        assert_eq!(t.switch_count(), 4);
        assert_eq!(t.link_count(), 3);
        assert!(t.switches_connected());
        assert!(!t.survives_any_single_link_failure());
    }

    #[test]
    fn ring_shape() {
        let t = ring(5);
        assert_eq!(t.link_count(), 5);
        assert!(t.survives_any_single_link_failure());
        assert_eq!(
            t.switch_neighbors(SwitchId(0)),
            vec![SwitchId(1), SwitchId(4)]
        );
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn ring_too_small() {
        ring(2);
    }

    #[test]
    fn star_shape() {
        let t = star(6);
        assert_eq!(t.switch_count(), 7);
        assert_eq!(t.switch_neighbors(SwitchId(0)).len(), 6);
        assert_eq!(t.switch_neighbors(SwitchId(3)), vec![SwitchId(0)]);
    }

    #[test]
    fn tree_shape() {
        let t = tree(2, 3); // 1 + 2 + 4 + 8
        assert_eq!(t.switch_count(), 15);
        assert_eq!(t.link_count(), 14);
        assert!(t.switches_connected());
    }

    #[test]
    fn mesh_and_torus_shape() {
        let m = mesh(3, 4);
        assert_eq!(m.switch_count(), 12);
        assert_eq!(m.link_count(), 3 * 3 + 2 * 4); // v + h edges: (w-1)*h + w*(h-1) = 2*4+3*3=17
        let t = torus(4, 4);
        assert_eq!(t.switch_count(), 16);
        assert_eq!(t.link_count(), 2 * 16);
        assert!(t.survives_any_single_link_failure());
        // Every torus switch has degree 4.
        for s in t.switches() {
            assert_eq!(t.switch_neighbors(s).len(), 4);
        }
    }

    #[test]
    fn fat_tree_shape() {
        let t = fat_tree(2, 3); // 3 levels × 4 switches
        assert_eq!(t.switch_count(), 12);
        assert_eq!(t.host_count(), 8);
        assert_eq!(t.link_count(), 2 * 4 * 2 + 8); // butterfly + host links
        assert!(t.switches_connected());
        // Interior switches: k down + k up; top level: k down only.
        assert_eq!(t.switch_neighbors(SwitchId(4)).len(), 4);
        assert_eq!(t.switch_neighbors(SwitchId(8)).len(), 2);
        // The N6 instance dimensions hold without building it here.
        assert_eq!(8 * 2usize.pow(7), 1024);
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = an2_sim::SimRng::new(1234);
        for n in [1, 2, 5, 20, 50] {
            let t = random_connected(n, n / 2, &mut rng);
            assert_eq!(t.switch_count(), n);
            assert!(t.switches_connected(), "n={n}");
        }
    }

    #[test]
    fn random_connected_deterministic_per_seed() {
        let a = random_connected(20, 10, &mut an2_sim::SimRng::new(7));
        let b = random_connected(20, 10, &mut an2_sim::SimRng::new(7));
        assert_eq!(a.link_count(), b.link_count());
        for (la, lb) in a.links().zip(b.links()) {
            assert_eq!(a.endpoints(la), b.endpoints(lb));
        }
    }

    #[test]
    fn src_installation_is_figure1_like() {
        let t = src_installation(6, 12);
        assert_eq!(t.switch_count(), 6);
        assert_eq!(t.host_count(), 12);
        // Dual homing: every host attaches to exactly two distinct switches.
        for h in t.hosts() {
            let att = t.host_attachments(h);
            assert_eq!(att.len(), 2);
            assert_ne!(att[0].1, att[1].1);
        }
        assert!(t.survives_any_single_link_failure());
        assert!(t.survives_any_single_switch_failure());
    }

    #[test]
    fn src_installation_survives_the_favorite_demo() {
        // "Pulling the plug on an arbitrary switch" (§1): kill each switch in
        // turn; remaining switches stay connected and hosts stay attached.
        let t = src_installation(8, 24);
        for victim in t.switches() {
            let mut probe = t.clone();
            probe.kill_switch(victim);
            let parts = probe.switch_partitions();
            let nonsingleton: Vec<_> = parts
                .iter()
                .filter(|p| !(p.len() == 1 && p[0] == victim))
                .collect();
            assert_eq!(nonsingleton.len(), 1, "killing {victim} partitioned");
            for h in probe.hosts() {
                assert!(!probe.host_attachments(h).is_empty());
            }
        }
    }

    #[test]
    fn generators_leave_links_working() {
        let t = src_installation(5, 5);
        assert!(t.links().all(|l| t.link_state(l) == LinkState::Working));
    }
}
