//! Wide-radix equivalence: schedulers on >64-port switches must produce
//! bit-identical matchings to the pre-refactor oracle implementations.
//!
//! The multi-word `PortSet` path (switches wider than one `u64`) runs the
//! same request/grant/accept algorithms one loop level deeper than the
//! single-word fast path. These tests drive the bitmask schedulers and the
//! scan-and-`Vec` oracles from [`an2_xbar::reference`] with the same seeded
//! RNG streams at 65, 96, and 128 ports — one word plus one bit, a ragged
//! mid-word width, and an exact two-word width — and assert the matchings
//! agree exactly. A property test sweeps the width range across the
//! one-word/two-word/three-word boundaries.

use an2_sim::SimRng;
use an2_xbar::reference::{ReferenceGreedy, ReferenceIslip, ReferencePim};
use an2_xbar::{outputs_unique, CrossbarScheduler, DemandMatrix, GreedyMaximal, Islip, Pim};
use proptest::prelude::*;

/// A random demand matrix: each (input, output) pair requests with
/// probability `density`, with a small random queue depth.
fn random_demand(n: usize, density: f64, rng: &mut SimRng) -> DemandMatrix {
    let mut d = DemandMatrix::new(n);
    for i in 0..n {
        for o in 0..n {
            if rng.gen_bool(density) {
                d.add(i, o, 1 + rng.gen_range(3) as u64);
            }
        }
    }
    d
}

/// The widths under test: one word + 1 bit, ragged mid-word, exactly two
/// words.
const WIDE: [usize; 3] = [65, 96, 128];

#[test]
fn wide_pim_matches_reference() {
    for n in WIDE {
        for seed in [11u64, 12, 13] {
            let mut seeder = SimRng::new(seed);
            for trial in 0..40u64 {
                let d = random_demand(n, 0.08, &mut seeder);
                let a = Pim::an2().schedule(&d, &mut SimRng::new(seed * 1000 + trial));
                let b = ReferencePim::an2().schedule(&d, &mut SimRng::new(seed * 1000 + trial));
                assert_eq!(a, b, "n={n} seed={seed} trial={trial}: PIM diverged");
                assert!(outputs_unique(&a), "n={n}: illegal matching");
            }
        }
    }
}

#[test]
fn wide_greedy_matches_reference() {
    for n in WIDE {
        for seed in [21u64, 22, 23] {
            let mut seeder = SimRng::new(seed);
            for trial in 0..40u64 {
                let d = random_demand(n, 0.08, &mut seeder);
                let a = GreedyMaximal::new().schedule(&d, &mut SimRng::new(seed * 1000 + trial));
                let b = ReferenceGreedy::new().schedule(&d, &mut SimRng::new(seed * 1000 + trial));
                assert_eq!(a, b, "n={n} seed={seed} trial={trial}: greedy diverged");
            }
        }
    }
}

#[test]
fn wide_islip_matches_reference_across_slots() {
    // iSLIP is stateful: the round-robin pointers must track across slots
    // on the wide path too.
    for n in WIDE {
        for seed in [31u64, 32, 33] {
            let mut seeder = SimRng::new(seed);
            let mut fast = Islip::new(n, 3);
            let mut slow = ReferenceIslip::new(n, 3);
            let mut rng_a = SimRng::new(seed);
            let mut rng_b = SimRng::new(seed);
            for slot in 0..80 {
                let d = random_demand(n, 0.06, &mut seeder);
                let a = fast.schedule(&d, &mut rng_a);
                let b = slow.schedule(&d, &mut rng_b);
                assert_eq!(a, b, "n={n} seed={seed} slot={slot}: iSLIP diverged");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sweeping the width across the single-word boundary (63/64/65) and
    /// beyond: every scheduler agrees with its oracle on any width.
    #[test]
    fn any_width_matches_reference(
        n in 2usize..140,
        density in 1u32..20,
        seed in 0u64..1_000,
    ) {
        let density = density as f64 / 100.0;
        let d = random_demand(n, density, &mut SimRng::new(seed));

        let a = Pim::an2().schedule(&d, &mut SimRng::new(seed));
        let b = ReferencePim::an2().schedule(&d, &mut SimRng::new(seed));
        prop_assert_eq!(&a, &b, "PIM diverged at n={}", n);

        let a = GreedyMaximal::new().schedule(&d, &mut SimRng::new(seed));
        let b = ReferenceGreedy::new().schedule(&d, &mut SimRng::new(seed));
        prop_assert_eq!(&a, &b, "greedy diverged at n={}", n);

        let a = Islip::new(n, 3).schedule(&d, &mut SimRng::new(seed));
        let b = ReferenceIslip::new(n, 3).schedule(&d, &mut SimRng::new(seed));
        prop_assert_eq!(&a, &b, "iSLIP diverged at n={}", n);
    }
}
