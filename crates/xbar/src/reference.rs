//! Pre-refactor scheduler implementations, preserved as oracles.
//!
//! These are the original scan-and-`Vec` schedulers from before the bitmask
//! fast path: candidate sets built by filtering `0..n` into freshly
//! allocated `Vec`s, one allocation (or several) per port per iteration.
//! They are kept for two jobs:
//!
//! 1. **Correctness oracle.** The bitmask schedulers were written to consume
//!    the RNG stream identically — an output's requester list was always
//!    materialised in ascending port order, so "pick element `k` of the
//!    sorted `Vec`" and "pick the `k`-th set bit of the mask" choose the
//!    same port. Property tests drive both from the same seed and assert
//!    bit-identical matchings.
//! 2. **Performance baseline.** The Criterion benches in `an2-bench` measure
//!    the fast path's speedup against these (the acceptance bar is ≥2× on a
//!    16×16 switch).
//!
//! Nothing else should use this module; it is `#[doc(hidden)]` from the
//! crate root's perspective but public so the bench crate can reach it.

use crate::matching::{DemandMatrix, Matching};
use crate::scratch::Scratch;
use crate::CrossbarScheduler;
use an2_sim::SimRng;

/// The original PIM implementation (per-iteration `Vec` allocation, `0..n`
/// scans).
#[derive(Debug, Clone)]
pub struct ReferencePim {
    iterations: usize,
}

impl ReferencePim {
    /// A reference PIM running a fixed number of iterations per slot.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn new(iterations: usize) -> Self {
        assert!(iterations > 0, "PIM needs at least one iteration");
        ReferencePim { iterations }
    }

    /// The AN2 hardware configuration: three iterations.
    pub fn an2() -> Self {
        ReferencePim::new(3)
    }

    /// One request/grant/accept round, exactly as originally written.
    // Indexed loops mirror the per-port hardware phases.
    #[allow(clippy::needless_range_loop)]
    fn iterate(demand: &DemandMatrix, matching: &mut Matching, rng: &mut SimRng) -> usize {
        let n = demand.size();
        let mut grants: Vec<Option<usize>> = vec![None; n]; // per input: granted output
        let mut grant_lists: Vec<Vec<usize>> = vec![Vec::new(); n]; // per input: all grants
        for output in 0..n {
            if !matching.output_free(output) {
                continue;
            }
            let requesters: Vec<usize> = (0..n)
                .filter(|&i| matching.input_free(i) && demand.wants(i, output))
                .collect();
            if let Some(&winner) = rng.choose(&requesters) {
                grant_lists[winner].push(output);
            }
        }
        for input in 0..n {
            if let Some(&choice) = rng.choose(&grant_lists[input]) {
                grants[input] = Some(choice);
            }
        }
        let mut new_pairs = 0;
        for input in 0..n {
            if let Some(output) = grants[input] {
                matching.set(input, output);
                new_pairs += 1;
            }
        }
        new_pairs
    }

    /// Runs rounds until no new match forms (the original `run_to_maximal`),
    /// returning the matching and the productive iteration count.
    pub fn run_to_maximal(demand: &DemandMatrix, rng: &mut SimRng) -> (Matching, usize) {
        let mut matching = Matching::empty(demand.size());
        let mut productive = 0;
        loop {
            let new_pairs = Self::iterate(demand, &mut matching, rng);
            if new_pairs == 0 {
                break;
            }
            productive += 1;
        }
        (matching, productive)
    }
}

impl CrossbarScheduler for ReferencePim {
    fn name(&self) -> &'static str {
        "PIM (reference)"
    }

    fn schedule_into(
        &mut self,
        demand: &DemandMatrix,
        rng: &mut SimRng,
        _scratch: &mut Scratch,
        out: &mut Matching,
    ) {
        out.reset(demand.size());
        for _ in 0..self.iterations {
            if Self::iterate(demand, out, rng) == 0 {
                break;
            }
        }
    }
}

/// The original sequential random-order greedy matcher.
#[derive(Debug, Clone, Default)]
pub struct ReferenceGreedy;

impl ReferenceGreedy {
    /// Creates the scheduler.
    pub fn new() -> Self {
        ReferenceGreedy
    }
}

impl CrossbarScheduler for ReferenceGreedy {
    fn name(&self) -> &'static str {
        "greedy-maximal (reference)"
    }

    fn schedule_into(
        &mut self,
        demand: &DemandMatrix,
        rng: &mut SimRng,
        _scratch: &mut Scratch,
        out: &mut Matching,
    ) {
        let n = demand.size();
        out.reset(n);
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        for &input in &order {
            let wanted: Vec<usize> = (0..n)
                .filter(|&o| out.output_free(o) && demand.wants(input, o))
                .collect();
            if let Some(&output) = rng.choose(&wanted) {
                out.set(input, output);
            }
        }
    }
}

/// The original iSLIP with boolean-`Vec` candidate sets.
#[derive(Debug, Clone)]
pub struct ReferenceIslip {
    iterations: usize,
    grant_ptr: Vec<usize>,
    accept_ptr: Vec<usize>,
}

impl ReferenceIslip {
    /// A reference iSLIP for an `n`-port switch.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0` or `n == 0`.
    pub fn new(n: usize, iterations: usize) -> Self {
        assert!(n > 0, "switch size must be positive");
        assert!(iterations > 0, "iSLIP needs at least one iteration");
        ReferenceIslip {
            iterations,
            grant_ptr: vec![0; n],
            accept_ptr: vec![0; n],
        }
    }

    fn round_robin_pick(candidates: &[bool], ptr: usize) -> Option<usize> {
        let n = candidates.len();
        (0..n).map(|k| (ptr + k) % n).find(|&i| candidates[i])
    }
}

impl CrossbarScheduler for ReferenceIslip {
    fn name(&self) -> &'static str {
        "iSLIP (reference)"
    }

    // Indexed loops mirror the per-port hardware phases.
    #[allow(clippy::needless_range_loop)]
    fn schedule_into(
        &mut self,
        demand: &DemandMatrix,
        _rng: &mut SimRng,
        _scratch: &mut Scratch,
        out: &mut Matching,
    ) {
        let n = demand.size();
        assert_eq!(
            n,
            self.grant_ptr.len(),
            "scheduler sized for another switch"
        );
        out.reset(n);
        for iter in 0..self.iterations {
            let mut granted_to: Vec<Vec<usize>> = vec![Vec::new(); n];
            for output in 0..n {
                if !out.output_free(output) {
                    continue;
                }
                let candidates: Vec<bool> = (0..n)
                    .map(|i| out.input_free(i) && demand.wants(i, output))
                    .collect();
                if let Some(input) = Self::round_robin_pick(&candidates, self.grant_ptr[output]) {
                    granted_to[input].push(output);
                }
            }
            let mut progressed = false;
            for input in 0..n {
                if granted_to[input].is_empty() {
                    continue;
                }
                let candidates: Vec<bool> = {
                    let mut c = vec![false; n];
                    for &o in &granted_to[input] {
                        c[o] = true;
                    }
                    c
                };
                if let Some(output) = Self::round_robin_pick(&candidates, self.accept_ptr[input]) {
                    out.set(input, output);
                    progressed = true;
                    if iter == 0 {
                        self.grant_ptr[output] = (input + 1) % n;
                        self.accept_ptr[input] = (output + 1) % n;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GreedyMaximal, Islip, Pim};

    fn random_demand(n: usize, density: f64, rng: &mut SimRng) -> DemandMatrix {
        let mut d = DemandMatrix::new(n);
        for i in 0..n {
            for o in 0..n {
                if rng.gen_bool(density) {
                    d.add(i, o, 1 + rng.gen_range(3) as u64);
                }
            }
        }
        d
    }

    #[test]
    fn pim_bitmask_matches_reference() {
        let mut seeder = SimRng::new(99);
        for trial in 0..200u64 {
            let d = random_demand(16, 0.3, &mut seeder);
            let mut fast = Pim::an2();
            let mut slow = ReferencePim::an2();
            let a = fast.schedule(&d, &mut SimRng::new(trial));
            let b = slow.schedule(&d, &mut SimRng::new(trial));
            assert_eq!(a, b, "trial {trial}: bitmask PIM diverged");
        }
    }

    #[test]
    fn pim_run_to_maximal_matches_reference() {
        let mut seeder = SimRng::new(17);
        for trial in 0..100u64 {
            let d = random_demand(16, 0.5, &mut seeder);
            let fast = Pim::run_to_maximal(&d, &mut SimRng::new(trial));
            let (matching, productive) = ReferencePim::run_to_maximal(&d, &mut SimRng::new(trial));
            assert_eq!(fast.matching, matching);
            assert_eq!(fast.productive_iterations, productive);
        }
    }

    #[test]
    fn greedy_bitmask_matches_reference() {
        let mut seeder = SimRng::new(7);
        for trial in 0..200u64 {
            let d = random_demand(16, 0.3, &mut seeder);
            let a = GreedyMaximal::new().schedule(&d, &mut SimRng::new(trial));
            let b = ReferenceGreedy::new().schedule(&d, &mut SimRng::new(trial));
            assert_eq!(a, b, "trial {trial}: bitmask greedy diverged");
        }
    }

    #[test]
    fn islip_bitmask_matches_reference_across_slots() {
        // iSLIP is stateful: drive both for many slots so pointer updates
        // must track too.
        let mut seeder = SimRng::new(5);
        let mut fast = Islip::new(16, 3);
        let mut slow = ReferenceIslip::new(16, 3);
        let mut rng_a = SimRng::new(1);
        let mut rng_b = SimRng::new(1);
        for slot in 0..300 {
            let d = random_demand(16, 0.25, &mut seeder);
            let a = fast.schedule(&d, &mut rng_a);
            let b = slow.schedule(&d, &mut rng_b);
            assert_eq!(a, b, "slot {slot}: bitmask iSLIP diverged");
        }
    }

    #[test]
    fn names_distinguish_reference() {
        assert_eq!(ReferencePim::an2().name(), "PIM (reference)");
        assert_eq!(ReferenceGreedy::new().name(), "greedy-maximal (reference)");
        assert_eq!(ReferenceIslip::new(4, 1).name(), "iSLIP (reference)");
    }
}
