//! Parallel iterative matching — the AN2 crossbar scheduler (§3).
//!
//! "The algorithm operates by repeating the following three steps (initially,
//! all inputs and outputs are unmatched):
//!
//! 1. Each unmatched input sends a request to *every* output for which it has
//!    a buffered cell.
//! 2. If an unmatched output receives any requests, it chooses one *randomly*
//!    to grant. The output notifies each input whether its request was
//!    granted.
//! 3. If an input receives any grants, it chooses one to accept and notifies
//!    that output."
//!
//! Iteration retains earlier matches and "fills in the gaps". The hardware
//! runs exactly three iterations; repeated until no new match forms, the
//! result is a maximal matching, in an expected `log₂ N + 4/3` iterations.
//!
//! The implementation mirrors the message structure of the hardware — each
//! iteration computes all requests, then all grants, then all accepts, with
//! no ordering between ports inside a phase — so the distributed character
//! of the algorithm is preserved even though it runs in one address space.
//!
//! The request sets themselves are `u64` bitmasks: an output's requesters
//! are `demand.col_mask(output) & matching.free_inputs()` — one AND, where
//! the reference implementation scans all N inputs. Random selection picks a
//! uniform rank and extracts that set bit, which chooses the same port the
//! reference's sorted-`Vec` indexing would, so both implementations consume
//! the RNG stream identically and produce identical matchings (see
//! [`crate::reference`]).

use crate::matching::{count_set, nth_set, nth_set_bit, DemandMatrix, Matching};
use crate::scratch::Scratch;
use crate::CrossbarScheduler;
use an2_sim::SimRng;
use an2_trace::{Entity, TraceEvent, Tracer};

/// The parallel iterative matching scheduler.
///
/// ```
/// use an2_xbar::{Pim, DemandMatrix, CrossbarScheduler};
/// use an2_sim::SimRng;
/// let mut pim = Pim::new(3); // AN2 uses three iterations (§3)
/// let mut d = DemandMatrix::new(4);
/// d.add(0, 1, 5);
/// d.add(2, 1, 1);
/// d.add(2, 3, 1);
/// let m = pim.schedule(&d, &mut SimRng::new(1));
/// assert!(m.is_legal(&d));
/// assert!(m.is_maximal(&d)); // 3 iterations always suffice at this size
/// ```
#[derive(Debug, Clone)]
pub struct Pim {
    iterations: usize,
    // Flight-recorder handle, Option-gated like the fault layer: grants are
    // emitted after the matching is computed, so tracing never touches the
    // RNG stream or the matching itself.
    tracer: Option<Tracer>,
    switch: u16,
}

/// The result of running PIM until quiescence, with convergence statistics
/// for experiment E4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PimOutcome {
    /// The matching produced.
    pub matching: Matching,
    /// Iterations that produced at least one new match, i.e. how many
    /// iterations were *needed* to reach this matching.
    pub productive_iterations: usize,
}

impl Pim {
    /// A PIM scheduler running a fixed number of iterations per slot.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn new(iterations: usize) -> Self {
        assert!(iterations > 0, "PIM needs at least one iteration");
        Pim {
            iterations,
            tracer: None,
            switch: 0,
        }
    }

    /// Attaches a flight recorder; every pair granted by
    /// [`schedule_into`](CrossbarScheduler::schedule_into) is emitted as a
    /// [`TraceEvent::XbarGrant`] attributed to switch `switch`. Tracing
    /// observes the finished matching only — it cannot perturb it.
    pub fn attach_tracer(&mut self, tracer: Tracer, switch: u16) {
        self.tracer = Some(tracer);
        self.switch = switch;
    }

    /// The AN2 hardware configuration: three iterations (§3).
    pub fn an2() -> Self {
        Pim::new(3)
    }

    /// Iterations per slot.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// One request/grant/accept round, extending `matching` in place.
    /// Returns the number of new pairs formed. Dispatches to the
    /// single-word fast path (every AN2-sized switch) or the multi-word
    /// generalization; both visit free outputs then granted inputs in
    /// ascending port order, so they draw from the RNG stream exactly as
    /// the reference scheduler's sorted-`Vec` indexing does.
    fn iterate(
        demand: &DemandMatrix,
        matching: &mut Matching,
        rng: &mut SimRng,
        scratch: &mut Scratch,
    ) -> usize {
        if demand.word_count() == 1 {
            Self::iterate_narrow(demand, matching, rng, &mut scratch.masks)
        } else {
            Self::iterate_wide(demand, matching, rng, scratch)
        }
    }

    /// The ≤ 64-port round: every port set is one `u64`.
    /// `grant_masks[i]` accumulates the outputs granting input `i` this
    /// round.
    fn iterate_narrow(
        demand: &DemandMatrix,
        matching: &mut Matching,
        rng: &mut SimRng,
        grant_masks: &mut [u64],
    ) -> usize {
        let n = demand.size();
        grant_masks[..n].fill(0);
        // Phase 1 — requests: every unmatched input requests every output it
        // has a cell for. (Unmatched outputs consider only unmatched inputs;
        // matched pairs from earlier iterations are retained.) The request
        // set of an output is one AND of its demand column with the free
        // inputs.
        // Phase 2 — grants: each unmatched output picks one requester
        // uniformly at random.
        let free_in = matching.free_inputs();
        let mut free_out = matching.free_outputs();
        while free_out != 0 {
            let output = free_out.trailing_zeros() as usize;
            free_out &= free_out - 1;
            let requesters = demand.col_mask(output) & free_in;
            if requesters != 0 {
                let rank = rng.gen_range(requesters.count_ones() as usize);
                let winner = nth_set_bit(requesters, rank);
                grant_masks[winner] |= 1 << output;
            }
        }
        // Phase 3 — accepts: each input that received grants picks one.
        // The paper does not fix the choice rule; hardware uses the random
        // tie-break, which we follow.
        let mut new_pairs = 0;
        for (input, &grants) in grant_masks[..n].iter().enumerate() {
            if grants != 0 {
                let rank = rng.gen_range(grants.count_ones() as usize);
                let output = nth_set_bit(grants, rank);
                matching.set(input, output);
                new_pairs += 1;
            }
        }
        new_pairs
    }

    /// The > 64-port round: port sets span `words` words, grant masks live
    /// at `scratch.masks[input * words ..]`, and the free/requester sets use
    /// the scratch word temporaries. Same phase structure and same
    /// ascending-port visit order as the narrow path.
    fn iterate_wide(
        demand: &DemandMatrix,
        matching: &mut Matching,
        rng: &mut SimRng,
        scratch: &mut Scratch,
    ) -> usize {
        let n = demand.size();
        let w = demand.word_count();
        scratch.masks[..n * w].fill(0);
        matching.write_free_inputs(&mut scratch.wa[..w]);
        matching.write_free_outputs(&mut scratch.wb[..w]);
        // Phases 1+2 — grants. Free sets don't change during the grant
        // phase, so each word of the free-output set can be walked by value.
        for wi in 0..w {
            let mut out_bits = scratch.wb[wi];
            while out_bits != 0 {
                let output = wi * 64 + out_bits.trailing_zeros() as usize;
                out_bits &= out_bits - 1;
                let col = demand.col(output);
                let mut count = 0usize;
                for ((wc, &c), &free) in scratch.wc[..w].iter_mut().zip(col).zip(&scratch.wa[..w]) {
                    let req = c & free;
                    *wc = req;
                    count += req.count_ones() as usize;
                }
                if count != 0 {
                    let rank = rng.gen_range(count);
                    let winner = nth_set(&scratch.wc[..w], rank);
                    scratch.masks[winner * w + output / 64] |= 1 << (output % 64);
                }
            }
        }
        // Phase 3 — accepts.
        let mut new_pairs = 0;
        for input in 0..n {
            let grants = &scratch.masks[input * w..(input + 1) * w];
            let count = count_set(grants);
            if count != 0 {
                let rank = rng.gen_range(count);
                let output = nth_set(grants, rank);
                matching.set(input, output);
                new_pairs += 1;
            }
        }
        new_pairs
    }

    /// Runs request/grant/accept rounds until no new match forms, returning
    /// the matching (always maximal) and how many productive iterations it
    /// took — the quantity bounded by `log₂ N + 4/3` in expectation (§3).
    pub fn run_to_maximal(demand: &DemandMatrix, rng: &mut SimRng) -> PimOutcome {
        let mut matching = Matching::empty(demand.size());
        let mut scratch = Scratch::new();
        scratch.ensure(demand.size(), demand.word_count());
        let mut productive = 0;
        loop {
            let new_pairs = Self::iterate(demand, &mut matching, rng, &mut scratch);
            if new_pairs == 0 {
                break;
            }
            productive += 1;
        }
        debug_assert!(matching.is_maximal(demand));
        PimOutcome {
            matching,
            productive_iterations: productive,
        }
    }
}

impl CrossbarScheduler for Pim {
    fn name(&self) -> &'static str {
        "PIM"
    }

    fn schedule_into(
        &mut self,
        demand: &DemandMatrix,
        rng: &mut SimRng,
        scratch: &mut Scratch,
        out: &mut Matching,
    ) {
        let n = demand.size();
        out.reset(n);
        scratch.ensure(n, demand.word_count());
        for _ in 0..self.iterations {
            if Self::iterate(demand, out, rng, scratch) == 0 {
                break; // already maximal; further iterations are no-ops
            }
        }
        if let Some(t) = &self.tracer {
            for (input, output) in out.iter() {
                t.emit(TraceEvent::XbarGrant {
                    switch: self.switch,
                    input: input as u16,
                    output: output as u16,
                });
            }
            t.counter_add("xbar.grants", Entity::Switch(self.switch), out.len() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_demand(n: usize) -> DemandMatrix {
        let mut d = DemandMatrix::new(n);
        for i in 0..n {
            for o in 0..n {
                d.add(i, o, 1);
            }
        }
        d
    }

    #[test]
    fn single_iteration_is_legal() {
        let mut rng = SimRng::new(42);
        let mut pim = Pim::new(1);
        for trial in 0..50 {
            let mut d = DemandMatrix::new(8);
            for i in 0..8 {
                for o in 0..8 {
                    if rng.gen_bool(0.4) {
                        d.add(i, o, 1 + trial % 3);
                    }
                }
            }
            let m = pim.schedule(&d, &mut rng);
            assert!(m.is_legal(&d));
        }
    }

    #[test]
    fn converges_to_maximal() {
        let mut rng = SimRng::new(7);
        for _ in 0..100 {
            let mut d = DemandMatrix::new(16);
            for i in 0..16 {
                for o in 0..16 {
                    if rng.gen_bool(0.3) {
                        d.add(i, o, 1);
                    }
                }
            }
            let out = Pim::run_to_maximal(&d, &mut rng);
            assert!(out.matching.is_legal(&d));
            assert!(out.matching.is_maximal(&d));
        }
    }

    #[test]
    fn full_demand_matches_everyone() {
        // With demand everywhere, a maximal matching is a perfect matching.
        let d = full_demand(16);
        let mut rng = SimRng::new(3);
        let out = Pim::run_to_maximal(&d, &mut rng);
        assert_eq!(out.matching.len(), 16);
    }

    #[test]
    fn an2_three_iterations_usually_maximal() {
        // §3: "simulations show that a maximal match is found within 4
        // iterations more than 98% of the time" — 3 comes very close; check
        // a weaker bound here and leave the exact figure to experiment E4.
        let mut rng = SimRng::new(11);
        let mut pim = Pim::an2();
        let trials = 500;
        let mut maximal = 0;
        for _ in 0..trials {
            let mut d = DemandMatrix::new(16);
            for i in 0..16 {
                for o in 0..16 {
                    if rng.gen_bool(0.5) {
                        d.add(i, o, 1);
                    }
                }
            }
            if pim.schedule(&d, &mut rng).is_maximal(&d) {
                maximal += 1;
            }
        }
        assert!(
            maximal as f64 / trials as f64 > 0.85,
            "only {maximal}/{trials} maximal after 3 iterations"
        );
    }

    #[test]
    fn expected_iterations_bound_holds() {
        // E[iterations to maximal] <= log2(N) + 4/3 (§3). For N=16: 5.33.
        let n = 16;
        let mut rng = SimRng::new(2026);
        let trials = 2_000;
        let mut total = 0usize;
        for _ in 0..trials {
            let d = full_demand(n); // worst-case contention
            let out = Pim::run_to_maximal(&d, &mut rng);
            total += out.productive_iterations;
        }
        let mean = total as f64 / trials as f64;
        let bound = (n as f64).log2() + 4.0 / 3.0;
        assert!(
            mean <= bound,
            "mean iterations {mean:.3} exceeds paper bound {bound:.3}"
        );
    }

    #[test]
    fn no_demand_no_matching() {
        let d = DemandMatrix::new(4);
        let mut rng = SimRng::new(1);
        let out = Pim::run_to_maximal(&d, &mut rng);
        assert!(out.matching.is_empty());
        assert_eq!(out.productive_iterations, 0);
        let m = Pim::an2().schedule(&d, &mut rng);
        assert!(m.is_empty());
    }

    #[test]
    fn randomness_prevents_starvation() {
        // The paper's example (§3): input 0 always has cells for outputs 1
        // and 2; input 1 always has cells for output 2. Under PIM, the
        // (0 -> 2) pairing must win sometimes, and (0 -> 1, 1 -> 2) other
        // times — nobody starves.
        let mut d = DemandMatrix::new(3);
        d.add(0, 1, 1);
        d.add(0, 2, 1);
        d.add(1, 2, 1);
        let mut rng = SimRng::new(5);
        let mut pim = Pim::an2();
        let mut zero_to_two = 0;
        let mut zero_to_one = 0;
        for _ in 0..1_000 {
            let m = pim.schedule(&d, &mut rng);
            match m.output_of(0) {
                Some(2) => zero_to_two += 1,
                Some(1) => zero_to_one += 1,
                _ => {}
            }
        }
        assert!(zero_to_two > 100, "0->2 starved: {zero_to_two}");
        assert!(zero_to_one > 100, "0->1 starved: {zero_to_one}");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = full_demand(8);
        let a = Pim::run_to_maximal(&d, &mut SimRng::new(9));
        let b = Pim::run_to_maximal(&d, &mut SimRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn schedule_into_reuses_buffers_across_sizes() {
        let mut pim = Pim::an2();
        let mut scratch = Scratch::new();
        let mut out = Matching::empty(1);
        let mut rng = SimRng::new(4);
        for &n in &[4usize, 16, 8, 64] {
            let d = full_demand(n);
            pim.schedule_into(&d, &mut rng, &mut scratch, &mut out);
            assert_eq!(out.size(), n);
            assert!(out.is_legal(&d));
            assert!(!out.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected() {
        Pim::new(0);
    }

    #[test]
    fn accessors() {
        assert_eq!(Pim::an2().iterations(), 3);
        assert_eq!(Pim::an2().name(), "PIM");
    }

    #[test]
    fn tracer_records_grants_without_touching_the_matching() {
        use an2_trace::{Entity, TraceConfig, TraceEvent, Tracer};
        let d = full_demand(8);
        let mut scratch = Scratch::new();

        let mut plain = Pim::an2();
        let mut baseline = Matching::empty(8);
        plain.schedule_into(&d, &mut SimRng::new(17), &mut scratch, &mut baseline);

        let tracer = Tracer::new(TraceConfig::default());
        let mut traced = Pim::an2();
        traced.attach_tracer(tracer.clone(), 4);
        let mut out = Matching::empty(8);
        traced.schedule_into(&d, &mut SimRng::new(17), &mut scratch, &mut out);

        // Identical RNG stream, identical matching: tracing is invisible.
        let a: Vec<_> = baseline.iter().collect();
        let b: Vec<_> = out.iter().collect();
        assert_eq!(a, b);

        assert_eq!(
            tracer.counter("xbar.grants", Entity::Switch(4)),
            out.len() as u64
        );
        let grants: Vec<_> = tracer
            .records()
            .into_iter()
            .filter_map(|r| match r.event {
                TraceEvent::XbarGrant {
                    switch,
                    input,
                    output,
                } => Some((switch, input as usize, output as usize)),
                _ => None,
            })
            .collect();
        assert_eq!(grants.len(), out.len());
        assert!(grants.iter().all(|&(s, _, _)| s == 4));
    }
}
