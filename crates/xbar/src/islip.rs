//! iSLIP: the round-robin descendant of PIM (extension baseline).
//!
//! The paper predates iSLIP, but the algorithm is the natural "later
//! version" of AN2's scheduler: it replaces PIM's random grant/accept
//! choices with rotating priority pointers, achieving the same maximal
//! matchings without random number generators and with better desynchronised
//! behaviour under uniform load. We include it as an ablation: how much of
//! PIM's performance comes from randomness versus iteration?
//!
//! Pointer update rule (McKeown): a grant pointer advances one past the
//! granted input, and an accept pointer one past the accepted output, *only*
//! when the grant is accepted in the first iteration. This is what prevents
//! starvation.

use crate::matching::{count_set, DemandMatrix, Matching};
use crate::scratch::Scratch;
use crate::CrossbarScheduler;
use an2_sim::SimRng;

/// The iSLIP scheduler with per-port round-robin pointers.
#[derive(Debug, Clone)]
pub struct Islip {
    iterations: usize,
    grant_ptr: Vec<usize>,  // per output: next input to favour
    accept_ptr: Vec<usize>, // per input: next output to favour
}

impl Islip {
    /// An iSLIP scheduler for an `n`-port switch.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0` or `n == 0`.
    pub fn new(n: usize, iterations: usize) -> Self {
        assert!(n > 0, "switch size must be positive");
        assert!(iterations > 0, "iSLIP needs at least one iteration");
        Islip {
            iterations,
            grant_ptr: vec![0; n],
            accept_ptr: vec![0; n],
        }
    }

    /// The first set bit of `candidates` at or after `ptr`, wrapping to the
    /// lowest set bit — round-robin priority over a port set in two
    /// instructions. `ptr` must be below the switch size, so the shift
    /// cannot overflow.
    fn round_robin_pick(candidates: u64, ptr: usize) -> Option<usize> {
        if candidates == 0 {
            return None;
        }
        debug_assert!(ptr < 64);
        let at_or_after = candidates & (u64::MAX << ptr);
        let pick = if at_or_after != 0 {
            at_or_after.trailing_zeros()
        } else {
            candidates.trailing_zeros()
        };
        Some(pick as usize)
    }

    /// [`Islip::round_robin_pick`] over a multi-word port set: the first
    /// member at or after `ptr`, wrapping to the lowest member.
    fn round_robin_pick_words(candidates: &[u64], ptr: usize) -> Option<usize> {
        let wi = ptr / 64;
        if wi < candidates.len() {
            let masked = candidates[wi] & (u64::MAX << (ptr % 64));
            if masked != 0 {
                return Some(wi * 64 + masked.trailing_zeros() as usize);
            }
            for (j, &w) in candidates.iter().enumerate().skip(wi + 1) {
                if w != 0 {
                    return Some(j * 64 + w.trailing_zeros() as usize);
                }
            }
        }
        // Wrap: the lowest member overall (members at or after `ptr` were
        // ruled out above).
        candidates
            .iter()
            .enumerate()
            .find(|(_, &w)| w != 0)
            .map(|(j, &w)| j * 64 + w.trailing_zeros() as usize)
    }
}

impl CrossbarScheduler for Islip {
    fn name(&self) -> &'static str {
        "iSLIP"
    }

    fn schedule_into(
        &mut self,
        demand: &DemandMatrix,
        _rng: &mut SimRng,
        scratch: &mut Scratch,
        out: &mut Matching,
    ) {
        let n = demand.size();
        assert_eq!(
            n,
            self.grant_ptr.len(),
            "scheduler sized for another switch"
        );
        out.reset(n);
        scratch.ensure(n, demand.word_count());
        if demand.word_count() == 1 {
            self.rounds_narrow(demand, scratch, out);
        } else {
            self.rounds_wide(demand, scratch, out);
        }
    }
}

impl Islip {
    /// The ≤ 64-port iteration loop: every port set is one `u64`.
    fn rounds_narrow(&mut self, demand: &DemandMatrix, scratch: &mut Scratch, out: &mut Matching) {
        let n = demand.size();
        for iter in 0..self.iterations {
            // Grants: each free output offers its round-robin favourite
            // among the free inputs requesting it.
            let grant_masks = &mut scratch.masks[..n];
            grant_masks.fill(0);
            let free_in = out.free_inputs();
            let mut free_out = out.free_outputs();
            while free_out != 0 {
                let output = free_out.trailing_zeros() as usize;
                free_out &= free_out - 1;
                let candidates = demand.col_mask(output) & free_in;
                if let Some(input) = Self::round_robin_pick(candidates, self.grant_ptr[output]) {
                    grant_masks[input] |= 1 << output;
                }
            }
            // Accepts: each granted input takes its round-robin favourite.
            let mut progressed = false;
            for input in 0..n {
                let grants = scratch.masks[input];
                if grants == 0 {
                    continue;
                }
                let output = Self::round_robin_pick(grants, self.accept_ptr[input])
                    .expect("non-empty grant set");
                out.set(input, output);
                progressed = true;
                // Pointers move only on first-iteration accepts.
                if iter == 0 {
                    self.grant_ptr[output] = (input + 1) % n;
                    self.accept_ptr[input] = (output + 1) % n;
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// The > 64-port iteration loop: same structure over multi-word sets.
    fn rounds_wide(&mut self, demand: &DemandMatrix, scratch: &mut Scratch, out: &mut Matching) {
        let n = demand.size();
        let w = demand.word_count();
        for iter in 0..self.iterations {
            scratch.masks[..n * w].fill(0);
            out.write_free_inputs(&mut scratch.wa[..w]);
            out.write_free_outputs(&mut scratch.wb[..w]);
            for wi in 0..w {
                let mut out_bits = scratch.wb[wi];
                while out_bits != 0 {
                    let output = wi * 64 + out_bits.trailing_zeros() as usize;
                    out_bits &= out_bits - 1;
                    let col = demand.col(output);
                    for ((wc, &c), &free) in
                        scratch.wc[..w].iter_mut().zip(col).zip(&scratch.wa[..w])
                    {
                        *wc = c & free;
                    }
                    if let Some(input) =
                        Self::round_robin_pick_words(&scratch.wc[..w], self.grant_ptr[output])
                    {
                        scratch.masks[input * w + output / 64] |= 1 << (output % 64);
                    }
                }
            }
            let mut progressed = false;
            for input in 0..n {
                let grants = &scratch.masks[input * w..(input + 1) * w];
                if count_set(grants) == 0 {
                    continue;
                }
                let output = Self::round_robin_pick_words(grants, self.accept_ptr[input])
                    .expect("non-empty grant set");
                out.set(input, output);
                progressed = true;
                if iter == 0 {
                    self.grant_ptr[output] = (input + 1) % n;
                    self.accept_ptr[input] = (output + 1) % n;
                }
            }
            if !progressed {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_and_converges_to_maximal() {
        let mut rng = SimRng::new(13);
        let mut islip = Islip::new(8, 8); // enough iterations for maximality
        for _ in 0..100 {
            let mut d = DemandMatrix::new(8);
            for i in 0..8 {
                for o in 0..8 {
                    if rng.gen_bool(0.4) {
                        d.add(i, o, 1);
                    }
                }
            }
            let m = islip.schedule(&d, &mut rng);
            assert!(m.is_legal(&d));
            assert!(m.is_maximal(&d));
        }
    }

    #[test]
    fn desynchronizes_under_persistent_uniform_demand() {
        // Under full demand, iSLIP pointers settle into a rotating perfect
        // schedule: after warm-up, every slot matches all n pairs.
        let n = 4;
        let mut d = DemandMatrix::new(n);
        for i in 0..n {
            for o in 0..n {
                d.add(i, o, 1_000);
            }
        }
        let mut islip = Islip::new(n, 1);
        let mut rng = SimRng::new(1);
        let mut sizes = Vec::new();
        for _ in 0..50 {
            sizes.push(islip.schedule(&d, &mut rng).len());
        }
        assert!(
            sizes[20..].iter().all(|&s| s == n),
            "pointers failed to desynchronize: {sizes:?}"
        );
    }

    #[test]
    fn round_robin_no_starvation() {
        // The fixed-priority starvation example: round-robin pointers must
        // serve 0->2 eventually.
        let mut d = DemandMatrix::new(4);
        d.add(0, 1, 1);
        d.add(0, 2, 1);
        d.add(3, 2, 1);
        let mut islip = Islip::new(4, 3);
        let mut rng = SimRng::new(1);
        let mut served_0_to_2 = false;
        for _ in 0..10 {
            let m = islip.schedule(&d, &mut rng);
            if m.output_of(0) == Some(2) {
                served_0_to_2 = true;
            }
        }
        assert!(served_0_to_2, "iSLIP starved 0->2");
    }

    #[test]
    fn round_robin_pick_wraps() {
        assert_eq!(Islip::round_robin_pick(0b010, 2), Some(1));
        assert_eq!(Islip::round_robin_pick(0, 0), None);
        assert_eq!(Islip::round_robin_pick(0b111, 2), Some(2));
        assert_eq!(Islip::round_robin_pick(1 << 63, 63), Some(63));
    }

    #[test]
    #[should_panic(expected = "another switch")]
    fn size_mismatch_panics() {
        let mut islip = Islip::new(4, 1);
        islip.schedule(&DemandMatrix::new(8), &mut SimRng::new(1));
    }

    #[test]
    fn name() {
        assert_eq!(Islip::new(4, 1).name(), "iSLIP");
    }
}
