//! Slot-level simulation of a single switch under synthetic cell arrivals.
//!
//! This is the apparatus behind the §3 performance claims: it drives a
//! buffering discipline (FIFO input queues, virtual output queues with a
//! matching scheduler, or output queueing with internal speedup *k*) with a
//! configurable arrival pattern and measures throughput and cell latency.
//!
//! "Simulation studies show that, for a 16×16 switch and a variety of cell
//! arrival patterns, random-access input buffers plus parallel iterative
//! matching yield throughput and latency nearly as good as that of output
//! queueing with k = 16 and unbounded buffer capacity." (§3)
//!
//! The inner loops are allocation-free after warm-up: queues are index-based
//! ring buffers that grow geometrically and are then reused, the VOQ
//! simulator maintains its [`DemandMatrix`] incrementally (add on arrival,
//! take on dispatch) instead of rebuilding an `n × n` table every slot, and
//! the scheduler runs through
//! [`schedule_into`](crate::CrossbarScheduler::schedule_into) with a single
//! [`Scratch`] and output [`Matching`] shared across all slots.

use crate::matching::DemandMatrix;
use crate::scratch::Scratch;
use crate::{CrossbarScheduler, Matching};
use an2_sim::metrics::Histogram;
use an2_sim::SimRng;

/// Synthetic cell arrival patterns, per input port per slot.
#[derive(Debug, Clone)]
pub enum Arrivals {
    /// Bernoulli arrivals with probability `load`; output uniform over all
    /// ports — the i.i.d. model under which FIFO saturates at 58%.
    Uniform {
        /// Offered load per input, in `[0, 1]`.
        load: f64,
    },
    /// Bernoulli arrivals; a `hot_fraction` of cells target `hot_output`,
    /// the rest are uniform.
    Hotspot {
        /// Offered load per input.
        load: f64,
        /// The overloaded output port.
        hot_output: usize,
        /// Fraction of cells aimed at the hot output.
        hot_fraction: f64,
    },
    /// Bernoulli arrivals; input `i` always sends to `perm[i]` — the
    /// contention-free pattern any input-queued switch should carry at full
    /// rate.
    Permutation {
        /// Offered load per input.
        load: f64,
        /// Fixed destination of each input.
        perm: Vec<usize>,
    },
    /// Bursty on/off traffic: geometric bursts of mean length `mean_burst`,
    /// all cells of a burst to one (uniform random) output; idle gaps sized
    /// so the long-run load is `load`. The correlated pattern LAN traffic
    /// actually exhibits (§3 argues LAN traffic violates the i.i.d.
    /// assumption output queueing analyses rely on).
    Bursty {
        /// Long-run offered load per input.
        load: f64,
        /// Mean burst length in cells.
        mean_burst: f64,
    },
}

/// Per-input generator state for [`Arrivals::Bursty`].
#[derive(Debug, Clone, Default)]
struct BurstState {
    /// Remaining cells in the current burst.
    remaining: u64,
    /// Destination of the current burst.
    dest: usize,
    /// Remaining idle slots before the next burst.
    idle: u64,
}

/// Drives an [`Arrivals`] pattern, holding per-input state.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    pattern: Arrivals,
    n: usize,
    bursts: Vec<BurstState>,
}

impl ArrivalGen {
    /// A generator for an `n`-port switch.
    ///
    /// # Panics
    ///
    /// Panics on malformed patterns (load outside `[0,1]`, permutation of
    /// the wrong length or with out-of-range entries, zero burst length).
    pub fn new(n: usize, pattern: Arrivals) -> Self {
        match &pattern {
            Arrivals::Uniform { load } => {
                assert!((0.0..=1.0).contains(load), "load must be in [0,1]");
            }
            Arrivals::Hotspot {
                load,
                hot_output,
                hot_fraction,
            } => {
                assert!((0.0..=1.0).contains(load));
                assert!(*hot_output < n, "hot output out of range");
                assert!((0.0..=1.0).contains(hot_fraction));
            }
            Arrivals::Permutation { load, perm } => {
                assert!((0.0..=1.0).contains(load));
                assert_eq!(perm.len(), n, "permutation must cover all inputs");
                assert!(
                    perm.iter().all(|&o| o < n),
                    "permutation entry out of range"
                );
            }
            Arrivals::Bursty { load, mean_burst } => {
                assert!((0.0..=1.0).contains(load));
                assert!(*mean_burst >= 1.0, "mean burst below one cell");
            }
        }
        ArrivalGen {
            pattern,
            n,
            bursts: vec![BurstState::default(); n],
        }
    }

    /// The destination of the cell arriving at `input` this slot, or `None`
    /// for no arrival.
    pub fn next(&mut self, input: usize, rng: &mut SimRng) -> Option<usize> {
        match &self.pattern {
            Arrivals::Uniform { load } => rng.gen_bool(*load).then(|| rng.gen_range(self.n)),
            Arrivals::Hotspot {
                load,
                hot_output,
                hot_fraction,
            } => rng.gen_bool(*load).then(|| {
                if rng.gen_bool(*hot_fraction) {
                    *hot_output
                } else {
                    rng.gen_range(self.n)
                }
            }),
            Arrivals::Permutation { load, perm } => rng.gen_bool(*load).then(|| perm[input]),
            Arrivals::Bursty { load, mean_burst } => {
                let st = &mut self.bursts[input];
                if st.remaining == 0 && st.idle == 0 {
                    // Start a new cycle: burst then gap sized for the load.
                    st.remaining = rng.gen_geometric(1.0 / mean_burst);
                    st.dest = rng.gen_range(self.n);
                    let mean_gap = if *load > 0.0 {
                        mean_burst * (1.0 - load) / load
                    } else {
                        f64::INFINITY
                    };
                    st.idle = if mean_gap.is_finite() && mean_gap > 0.0 {
                        rng.gen_geometric(1.0 / (mean_gap + 1.0)) - 1
                    } else {
                        u64::MAX
                    };
                }
                if st.remaining > 0 {
                    st.remaining -= 1;
                    Some(st.dest)
                } else {
                    st.idle = st.idle.saturating_sub(1);
                    None
                }
            }
        }
    }
}

/// A flat index-based FIFO ring buffer of `Copy` records.
///
/// Power-of-two capacity, geometric growth, no per-push allocation once
/// warm: the queue workhorse of the simulators, replacing `VecDeque` so the
/// whole simulation state is plain `Vec`s indexed by head/length counters.
#[derive(Debug, Clone)]
struct Ring<T> {
    buf: Vec<T>,
    head: usize,
    len: usize,
}

impl<T: Copy + Default> Ring<T> {
    fn new() -> Self {
        Ring {
            buf: Vec::new(),
            head: 0,
            len: 0,
        }
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn push(&mut self, value: T) {
        if self.len == self.buf.len() {
            self.grow();
        }
        let mask = self.buf.len() - 1;
        self.buf[(self.head + self.len) & mask] = value;
        self.len += 1;
    }

    #[inline]
    fn front(&self) -> Option<T> {
        (self.len > 0).then(|| self.buf[self.head])
    }

    #[inline]
    fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let value = self.buf[self.head];
        self.head = (self.head + 1) & (self.buf.len() - 1);
        self.len -= 1;
        Some(value)
    }

    #[cold]
    fn grow(&mut self) {
        let old_cap = self.buf.len();
        if old_cap == 0 {
            self.buf = vec![T::default(); 4];
            self.head = 0;
            return;
        }
        let mut grown = vec![T::default(); old_cap * 2];
        for (slot, grown_slot) in grown.iter_mut().enumerate().take(self.len) {
            *grown_slot = self.buf[(self.head + slot) & (old_cap - 1)];
        }
        self.buf = grown;
        self.head = 0;
    }
}

/// A cell waiting in an input-side FIFO: its destination and arrival slot.
#[derive(Debug, Clone, Copy, Default)]
struct QueuedCell {
    output: u32,
    arrived: u64,
}

/// The buffering discipline under test.
pub enum Discipline {
    /// Random-access input buffers (virtual output queues) with a crossbar
    /// scheduler — the AN2 design.
    Voq(Box<dyn CrossbarScheduler>),
    /// One FIFO per input; only the head cell is eligible. Head-of-line
    /// blocking limits throughput to ≈58% under uniform traffic.
    Fifo,
    /// Output queueing with internal speedup `k`: up to `k` cells may reach
    /// one output per slot (excess waits at the input in FIFO order);
    /// output buffers are unbounded. `k = n` is the paper's yardstick.
    OutputQueued {
        /// Internal fabric speedup factor.
        speedup: usize,
    },
}

impl std::fmt::Debug for Discipline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Discipline::Voq(s) => write!(f, "Voq({})", s.name()),
            Discipline::Fifo => write!(f, "Fifo"),
            Discipline::OutputQueued { speedup } => write!(f, "OutputQueued(k={speedup})"),
        }
    }
}

/// Results of a switch simulation run.
#[derive(Debug)]
pub struct SwitchReport {
    /// Ports on the simulated switch.
    pub ports: usize,
    /// Cell slots simulated.
    pub slots: u64,
    /// Cells offered by the arrival process.
    pub offered: u64,
    /// Cells delivered out of the switch.
    pub delivered: u64,
    /// Cell delays in slots (arrival to departure, inclusive).
    pub delay: Histogram,
    /// Largest total backlog (cells buffered anywhere) observed.
    pub peak_backlog: u64,
}

impl SwitchReport {
    /// Delivered throughput as a fraction of aggregate link capacity.
    pub fn throughput(&self) -> f64 {
        self.delivered as f64 / (self.slots as f64 * self.ports as f64)
    }

    /// Offered load as a fraction of aggregate link capacity.
    pub fn offered_load(&self) -> f64 {
        self.offered as f64 / (self.slots as f64 * self.ports as f64)
    }

    /// Mean cell delay in slots, if any cell was delivered.
    pub fn mean_delay(&self) -> Option<f64> {
        self.delay.mean()
    }
}

/// Simulates `slots` cell slots of an `n`-port switch.
///
/// Delay accounting: a cell arriving in slot `t` and crossing the switch in
/// slot `t` has delay 1 (one slot of service time); every queued slot adds
/// one. For output-queued disciplines the delay includes output-queue
/// residence, making the comparison with input queueing fair.
pub fn simulate(
    n: usize,
    discipline: &mut Discipline,
    arrivals: &mut ArrivalGen,
    slots: u64,
    rng: &mut SimRng,
) -> SwitchReport {
    match discipline {
        Discipline::Voq(scheduler) => simulate_voq(n, scheduler.as_mut(), arrivals, slots, rng),
        Discipline::Fifo => simulate_fifo(n, arrivals, slots, rng),
        Discipline::OutputQueued { speedup } => {
            simulate_output_queued(n, *speedup, arrivals, slots, rng)
        }
    }
}

fn simulate_voq(
    n: usize,
    scheduler: &mut dyn CrossbarScheduler,
    arrivals: &mut ArrivalGen,
    slots: u64,
    rng: &mut SimRng,
) -> SwitchReport {
    // Per (input, output): ring of arrival slots. The demand matrix mirrors
    // the ring lengths and is maintained incrementally, so no per-slot
    // rebuild and — with `schedule_into` — no per-slot allocation at all.
    let mut voq: Vec<Ring<u64>> = (0..n * n).map(|_| Ring::new()).collect();
    let mut demand = DemandMatrix::new(n);
    let mut matching = Matching::empty(n);
    let mut scratch = Scratch::new();
    let mut offered = 0;
    let mut delivered = 0;
    let mut delay = Histogram::new();
    let mut peak_backlog = 0u64;
    let mut backlog = 0u64;
    for slot in 0..slots {
        for input in 0..n {
            if let Some(output) = arrivals.next(input, rng) {
                voq[input * n + output].push(slot);
                demand.add(input, output, 1);
                offered += 1;
                backlog += 1;
            }
        }
        peak_backlog = peak_backlog.max(backlog);
        scheduler.schedule_into(&demand, rng, &mut scratch, &mut matching);
        debug_assert!(matching.is_legal(&demand));
        for (input, output) in matching.iter() {
            let arrived = voq[input * n + output].pop().expect("legal matching");
            demand.take_one(input, output);
            delivered += 1;
            backlog -= 1;
            delay.record(slot - arrived + 1);
        }
    }
    debug_assert_eq!(demand.total(), backlog, "demand mirrors ring lengths");
    SwitchReport {
        ports: n,
        slots,
        offered,
        delivered,
        delay,
        peak_backlog,
    }
}

fn simulate_fifo(
    n: usize,
    arrivals: &mut ArrivalGen,
    slots: u64,
    rng: &mut SimRng,
) -> SwitchReport {
    // Per input: ring of queued cells. Head contention is a bitmask per
    // output, resolved in ascending output order as before.
    let mut fifo: Vec<Ring<QueuedCell>> = (0..n).map(|_| Ring::new()).collect();
    let mut contenders: Vec<u64> = vec![0; n]; // per output: inputs whose head wants it
    let mut offered = 0;
    let mut delivered = 0;
    let mut delay = Histogram::new();
    let mut peak_backlog = 0u64;
    let mut backlog = 0u64;
    for slot in 0..slots {
        for (input, q) in fifo.iter_mut().enumerate() {
            if let Some(output) = arrivals.next(input, rng) {
                q.push(QueuedCell {
                    output: output as u32,
                    arrived: slot,
                });
                offered += 1;
                backlog += 1;
            }
        }
        peak_backlog = peak_backlog.max(backlog);
        // Heads contend; each output picks one contender at random.
        contenders.fill(0);
        for (input, q) in fifo.iter().enumerate() {
            if let Some(cell) = q.front() {
                contenders[cell.output as usize] |= 1 << input;
            }
        }
        for &mask in &contenders {
            if mask != 0 {
                let rank = rng.gen_range(mask.count_ones() as usize);
                let winner = crate::matching::nth_set_bit(mask, rank);
                let cell = fifo[winner].pop().expect("head exists");
                delivered += 1;
                backlog -= 1;
                delay.record(slot - cell.arrived + 1);
            }
        }
    }
    SwitchReport {
        ports: n,
        slots,
        offered,
        delivered,
        delay,
        peak_backlog,
    }
}

fn simulate_output_queued(
    n: usize,
    speedup: usize,
    arrivals: &mut ArrivalGen,
    slots: u64,
    rng: &mut SimRng,
) -> SwitchReport {
    assert!(speedup > 0, "speedup must be positive");
    // Staging ring per input (cells the fabric hasn't moved yet) and an
    // unbounded ring per output. The per-round visit order and per-slot
    // output budgets are hoisted out of the slot loop and refilled in place.
    let mut staging: Vec<Ring<QueuedCell>> = (0..n).map(|_| Ring::new()).collect();
    let mut out_q: Vec<Ring<u64>> = (0..n).map(|_| Ring::new()).collect();
    let mut budget: Vec<usize> = vec![0; n];
    let mut order: Vec<usize> = vec![0; n];
    let mut offered = 0;
    let mut delivered = 0;
    let mut delay = Histogram::new();
    let mut peak_backlog = 0u64;
    let mut backlog = 0u64;
    for slot in 0..slots {
        for (input, q) in staging.iter_mut().enumerate() {
            if let Some(output) = arrivals.next(input, rng) {
                q.push(QueuedCell {
                    output: output as u32,
                    arrived: slot,
                });
                offered += 1;
                backlog += 1;
            }
        }
        peak_backlog = peak_backlog.max(backlog);
        // Fabric passes: up to `speedup` rounds; in each round every input
        // may move its head cell unless the target output exhausted its
        // per-slot transfer budget. Random input order for fairness,
        // freshly shuffled from identity each round as before.
        budget.fill(speedup);
        for _round in 0..speedup {
            for (slot_idx, input) in order.iter_mut().enumerate() {
                *input = slot_idx;
            }
            rng.shuffle(&mut order);
            let mut moved = false;
            for &input in &order {
                if let Some(cell) = staging[input].front() {
                    let output = cell.output as usize;
                    if budget[output] > 0 {
                        staging[input].pop();
                        budget[output] -= 1;
                        out_q[output].push(cell.arrived);
                        moved = true;
                    }
                }
            }
            if !moved {
                break;
            }
        }
        // Each output transmits one cell per slot.
        for q in out_q.iter_mut() {
            if let Some(arrived) = q.pop() {
                delivered += 1;
                backlog -= 1;
                delay.record(slot - arrived + 1);
            }
        }
    }
    SwitchReport {
        ports: n,
        slots,
        offered,
        delivered,
        delay,
        peak_backlog,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pim::Pim;

    fn run(
        n: usize,
        mut discipline: Discipline,
        pattern: Arrivals,
        slots: u64,
        seed: u64,
    ) -> SwitchReport {
        let mut gen = ArrivalGen::new(n, pattern);
        let mut rng = SimRng::new(seed);
        simulate(n, &mut discipline, &mut gen, slots, &mut rng)
    }

    #[test]
    fn ring_fifo_order_and_growth() {
        let mut r: Ring<u64> = Ring::new();
        assert_eq!(r.pop(), None);
        for v in 0..100 {
            r.push(v);
        }
        assert_eq!(r.len(), 100);
        assert_eq!(r.front(), Some(0));
        for v in 0..60 {
            assert_eq!(r.pop(), Some(v));
        }
        // Interleave push/pop across the wrap point.
        for v in 100..140 {
            r.push(v);
        }
        for v in 60..140 {
            assert_eq!(r.pop(), Some(v));
        }
        assert_eq!(r.len(), 0);
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn fifo_saturates_near_58_percent() {
        // Karol et al. (§3): head-of-line blocking limits FIFO throughput to
        // 2 - sqrt(2) = 0.586 under saturated uniform traffic.
        let r = run(
            16,
            Discipline::Fifo,
            Arrivals::Uniform { load: 1.0 },
            20_000,
            1,
        );
        let tp = r.throughput();
        assert!(
            (0.55..0.62).contains(&tp),
            "FIFO saturation throughput {tp:.3} not near 0.586"
        );
    }

    #[test]
    fn pim_voq_sustains_high_load() {
        let r = run(
            16,
            Discipline::Voq(Box::new(Pim::an2())),
            Arrivals::Uniform { load: 0.9 },
            20_000,
            2,
        );
        // Delivered ≈ offered: the switch keeps up at 90% load.
        assert!(r.throughput() > 0.88, "throughput {:.3}", r.throughput());
        assert!(r.mean_delay().unwrap() < 20.0);
    }

    #[test]
    fn output_queueing_k16_is_the_yardstick() {
        let r = run(
            16,
            Discipline::OutputQueued { speedup: 16 },
            Arrivals::Uniform { load: 0.9 },
            20_000,
            3,
        );
        assert!(r.throughput() > 0.88);
    }

    #[test]
    fn pim_close_to_output_queueing() {
        // E5 in miniature: mean delays within a small factor at 80% load.
        let pim = run(
            16,
            Discipline::Voq(Box::new(Pim::an2())),
            Arrivals::Uniform { load: 0.8 },
            30_000,
            4,
        );
        let oq = run(
            16,
            Discipline::OutputQueued { speedup: 16 },
            Arrivals::Uniform { load: 0.8 },
            30_000,
            4,
        );
        let ratio = pim.mean_delay().unwrap() / oq.mean_delay().unwrap();
        assert!(
            ratio < 3.0,
            "PIM delay {:.2} vs OQ {:.2} (ratio {ratio:.2})",
            pim.mean_delay().unwrap(),
            oq.mean_delay().unwrap()
        );
    }

    #[test]
    fn permutation_traffic_full_rate_under_voq() {
        let perm: Vec<usize> = (0..16).map(|i| (i + 5) % 16).collect();
        let r = run(
            16,
            Discipline::Voq(Box::new(Pim::an2())),
            Arrivals::Permutation { load: 1.0, perm },
            10_000,
            5,
        );
        assert!(
            r.throughput() > 0.99,
            "contention-free traffic must flow at line rate"
        );
        // Delay is exactly 1 slot for almost every cell.
        assert!(r.mean_delay().unwrap() < 1.1);
    }

    #[test]
    fn hotspot_bounded_by_hot_output_capacity() {
        // 16 inputs at load 0.5 all aiming 50% of cells at output 0 offer
        // 4x output 0's capacity; delivered hot traffic caps at 1 cell/slot.
        let r = run(
            16,
            Discipline::Voq(Box::new(Pim::an2())),
            Arrivals::Hotspot {
                load: 0.5,
                hot_output: 0,
                hot_fraction: 0.5,
            },
            10_000,
            6,
        );
        // Aggregate throughput ≤ (1 hot + 15 * uniform share) — just check
        // the switch survives and delivers the feasible part.
        assert!(r.delivered > 0);
        assert!(r.throughput() < 0.5, "hot traffic cannot all be delivered");
    }

    #[test]
    fn bursty_long_run_load_close_to_target() {
        let mut gen = ArrivalGen::new(
            8,
            Arrivals::Bursty {
                load: 0.6,
                mean_burst: 10.0,
            },
        );
        let mut rng = SimRng::new(7);
        let slots = 200_000;
        let mut arrivals = 0u64;
        for _ in 0..slots {
            for input in 0..8 {
                if gen.next(input, &mut rng).is_some() {
                    arrivals += 1;
                }
            }
        }
        let load = arrivals as f64 / (slots * 8) as f64;
        assert!((load - 0.6).abs() < 0.05, "long-run bursty load {load:.3}");
    }

    #[test]
    fn bursts_are_correlated() {
        let mut gen = ArrivalGen::new(
            8,
            Arrivals::Bursty {
                load: 0.9,
                mean_burst: 16.0,
            },
        );
        let mut rng = SimRng::new(8);
        // Consecutive arrivals at one input mostly share a destination.
        let mut same = 0;
        let mut diff = 0;
        let mut last: Option<usize> = None;
        for _ in 0..10_000 {
            if let Some(d) = gen.next(0, &mut rng) {
                if let Some(l) = last {
                    if l == d {
                        same += 1;
                    } else {
                        diff += 1;
                    }
                }
                last = Some(d);
            }
        }
        assert!(
            same > diff * 5,
            "bursty traffic not correlated: {same} vs {diff}"
        );
    }

    #[test]
    fn zero_load_produces_nothing() {
        let r = run(
            4,
            Discipline::Voq(Box::new(Pim::an2())),
            Arrivals::Uniform { load: 0.0 },
            1_000,
            9,
        );
        assert_eq!(r.offered, 0);
        assert_eq!(r.delivered, 0);
        assert!(r.delay.is_empty());
        assert_eq!(r.peak_backlog, 0);
    }

    #[test]
    fn conservation_no_cell_lost() {
        // delivered + still-buffered == offered. Buffered = offered-delivered
        // must be small at modest load.
        let r = run(
            8,
            Discipline::Voq(Box::new(Pim::an2())),
            Arrivals::Uniform { load: 0.5 },
            10_000,
            10,
        );
        assert!(r.offered >= r.delivered);
        assert!(
            r.offered - r.delivered < 100,
            "backlog exploded at load 0.5"
        );
    }

    #[test]
    fn voq_matches_reference_scheduler_run() {
        // The whole simulator — incremental demand, ring buffers,
        // schedule_into — must produce the same numbers as driving the
        // reference scheduler, because both consume the RNG identically.
        let fast = run(
            8,
            Discipline::Voq(Box::new(Pim::an2())),
            Arrivals::Uniform { load: 0.7 },
            5_000,
            12,
        );
        let slow = run(
            8,
            Discipline::Voq(Box::new(crate::reference::ReferencePim::an2())),
            Arrivals::Uniform { load: 0.7 },
            5_000,
            12,
        );
        assert_eq!(fast.offered, slow.offered);
        assert_eq!(fast.delivered, slow.delivered);
        assert_eq!(fast.peak_backlog, slow.peak_backlog);
        assert_eq!(fast.mean_delay(), slow.mean_delay());
    }

    #[test]
    fn report_accessors() {
        let r = run(
            4,
            Discipline::Fifo,
            Arrivals::Uniform { load: 0.3 },
            5_000,
            11,
        );
        assert!((r.offered_load() - 0.3).abs() < 0.03);
        assert!(r.throughput() <= r.offered_load() + 1e-9);
        assert!(r.peak_backlog > 0);
    }

    #[test]
    #[should_panic(expected = "permutation must cover")]
    fn bad_permutation_rejected() {
        ArrivalGen::new(
            4,
            Arrivals::Permutation {
                load: 0.5,
                perm: vec![0, 1],
            },
        );
    }

    #[test]
    #[should_panic(expected = "hot output out of range")]
    fn bad_hotspot_rejected() {
        ArrivalGen::new(
            4,
            Arrivals::Hotspot {
                load: 0.5,
                hot_output: 4,
                hot_fraction: 0.5,
            },
        );
    }

    #[test]
    fn discipline_debug_strings() {
        let d = Discipline::Voq(Box::new(Pim::an2()));
        assert!(format!("{d:?}").contains("PIM"));
        assert!(format!("{:?}", Discipline::OutputQueued { speedup: 4 }).contains("k=4"));
    }
}
