//! Slot-level simulation of a single switch under synthetic cell arrivals.
//!
//! This is the apparatus behind the §3 performance claims: it drives a
//! buffering discipline (FIFO input queues, virtual output queues with a
//! matching scheduler, or output queueing with internal speedup *k*) with a
//! configurable arrival pattern and measures throughput and cell latency.
//!
//! "Simulation studies show that, for a 16×16 switch and a variety of cell
//! arrival patterns, random-access input buffers plus parallel iterative
//! matching yield throughput and latency nearly as good as that of output
//! queueing with k = 16 and unbounded buffer capacity." (§3)

use crate::matching::DemandMatrix;
use crate::CrossbarScheduler;
use an2_sim::metrics::Histogram;
use an2_sim::SimRng;
use std::collections::VecDeque;

/// Synthetic cell arrival patterns, per input port per slot.
#[derive(Debug, Clone)]
pub enum Arrivals {
    /// Bernoulli arrivals with probability `load`; output uniform over all
    /// ports — the i.i.d. model under which FIFO saturates at 58%.
    Uniform {
        /// Offered load per input, in `[0, 1]`.
        load: f64,
    },
    /// Bernoulli arrivals; a `hot_fraction` of cells target `hot_output`,
    /// the rest are uniform.
    Hotspot {
        /// Offered load per input.
        load: f64,
        /// The overloaded output port.
        hot_output: usize,
        /// Fraction of cells aimed at the hot output.
        hot_fraction: f64,
    },
    /// Bernoulli arrivals; input `i` always sends to `perm[i]` — the
    /// contention-free pattern any input-queued switch should carry at full
    /// rate.
    Permutation {
        /// Offered load per input.
        load: f64,
        /// Fixed destination of each input.
        perm: Vec<usize>,
    },
    /// Bursty on/off traffic: geometric bursts of mean length `mean_burst`,
    /// all cells of a burst to one (uniform random) output; idle gaps sized
    /// so the long-run load is `load`. The correlated pattern LAN traffic
    /// actually exhibits (§3 argues LAN traffic violates the i.i.d.
    /// assumption output queueing analyses rely on).
    Bursty {
        /// Long-run offered load per input.
        load: f64,
        /// Mean burst length in cells.
        mean_burst: f64,
    },
}

/// Per-input generator state for [`Arrivals::Bursty`].
#[derive(Debug, Clone, Default)]
struct BurstState {
    /// Remaining cells in the current burst.
    remaining: u64,
    /// Destination of the current burst.
    dest: usize,
    /// Remaining idle slots before the next burst.
    idle: u64,
}

/// Drives an [`Arrivals`] pattern, holding per-input state.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    pattern: Arrivals,
    n: usize,
    bursts: Vec<BurstState>,
}

impl ArrivalGen {
    /// A generator for an `n`-port switch.
    ///
    /// # Panics
    ///
    /// Panics on malformed patterns (load outside `[0,1]`, permutation of
    /// the wrong length or with out-of-range entries, zero burst length).
    pub fn new(n: usize, pattern: Arrivals) -> Self {
        match &pattern {
            Arrivals::Uniform { load } => {
                assert!((0.0..=1.0).contains(load), "load must be in [0,1]");
            }
            Arrivals::Hotspot {
                load,
                hot_output,
                hot_fraction,
            } => {
                assert!((0.0..=1.0).contains(load));
                assert!(*hot_output < n, "hot output out of range");
                assert!((0.0..=1.0).contains(hot_fraction));
            }
            Arrivals::Permutation { load, perm } => {
                assert!((0.0..=1.0).contains(load));
                assert_eq!(perm.len(), n, "permutation must cover all inputs");
                assert!(
                    perm.iter().all(|&o| o < n),
                    "permutation entry out of range"
                );
            }
            Arrivals::Bursty { load, mean_burst } => {
                assert!((0.0..=1.0).contains(load));
                assert!(*mean_burst >= 1.0, "mean burst below one cell");
            }
        }
        ArrivalGen {
            pattern,
            n,
            bursts: vec![BurstState::default(); n],
        }
    }

    /// The destination of the cell arriving at `input` this slot, or `None`
    /// for no arrival.
    pub fn next(&mut self, input: usize, rng: &mut SimRng) -> Option<usize> {
        match &self.pattern {
            Arrivals::Uniform { load } => rng.gen_bool(*load).then(|| rng.gen_range(self.n)),
            Arrivals::Hotspot {
                load,
                hot_output,
                hot_fraction,
            } => rng.gen_bool(*load).then(|| {
                if rng.gen_bool(*hot_fraction) {
                    *hot_output
                } else {
                    rng.gen_range(self.n)
                }
            }),
            Arrivals::Permutation { load, perm } => rng.gen_bool(*load).then(|| perm[input]),
            Arrivals::Bursty { load, mean_burst } => {
                let st = &mut self.bursts[input];
                if st.remaining == 0 && st.idle == 0 {
                    // Start a new cycle: burst then gap sized for the load.
                    st.remaining = rng.gen_geometric(1.0 / mean_burst);
                    st.dest = rng.gen_range(self.n);
                    let mean_gap = if *load > 0.0 {
                        mean_burst * (1.0 - load) / load
                    } else {
                        f64::INFINITY
                    };
                    st.idle = if mean_gap.is_finite() && mean_gap > 0.0 {
                        rng.gen_geometric(1.0 / (mean_gap + 1.0)) - 1
                    } else {
                        u64::MAX
                    };
                }
                if st.remaining > 0 {
                    st.remaining -= 1;
                    Some(st.dest)
                } else {
                    st.idle = st.idle.saturating_sub(1);
                    None
                }
            }
        }
    }
}

/// The buffering discipline under test.
pub enum Discipline {
    /// Random-access input buffers (virtual output queues) with a crossbar
    /// scheduler — the AN2 design.
    Voq(Box<dyn CrossbarScheduler>),
    /// One FIFO per input; only the head cell is eligible. Head-of-line
    /// blocking limits throughput to ≈58% under uniform traffic.
    Fifo,
    /// Output queueing with internal speedup `k`: up to `k` cells may reach
    /// one output per slot (excess waits at the input in FIFO order);
    /// output buffers are unbounded. `k = n` is the paper's yardstick.
    OutputQueued {
        /// Internal fabric speedup factor.
        speedup: usize,
    },
}

impl std::fmt::Debug for Discipline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Discipline::Voq(s) => write!(f, "Voq({})", s.name()),
            Discipline::Fifo => write!(f, "Fifo"),
            Discipline::OutputQueued { speedup } => write!(f, "OutputQueued(k={speedup})"),
        }
    }
}

/// Results of a switch simulation run.
#[derive(Debug)]
pub struct SwitchReport {
    /// Ports on the simulated switch.
    pub ports: usize,
    /// Cell slots simulated.
    pub slots: u64,
    /// Cells offered by the arrival process.
    pub offered: u64,
    /// Cells delivered out of the switch.
    pub delivered: u64,
    /// Cell delays in slots (arrival to departure, inclusive).
    pub delay: Histogram,
    /// Largest total backlog (cells buffered anywhere) observed.
    pub peak_backlog: u64,
}

impl SwitchReport {
    /// Delivered throughput as a fraction of aggregate link capacity.
    pub fn throughput(&self) -> f64 {
        self.delivered as f64 / (self.slots as f64 * self.ports as f64)
    }

    /// Offered load as a fraction of aggregate link capacity.
    pub fn offered_load(&self) -> f64 {
        self.offered as f64 / (self.slots as f64 * self.ports as f64)
    }

    /// Mean cell delay in slots, if any cell was delivered.
    pub fn mean_delay(&self) -> Option<f64> {
        self.delay.mean()
    }
}

/// Simulates `slots` cell slots of an `n`-port switch.
///
/// Delay accounting: a cell arriving in slot `t` and crossing the switch in
/// slot `t` has delay 1 (one slot of service time); every queued slot adds
/// one. For output-queued disciplines the delay includes output-queue
/// residence, making the comparison with input queueing fair.
pub fn simulate(
    n: usize,
    discipline: &mut Discipline,
    arrivals: &mut ArrivalGen,
    slots: u64,
    rng: &mut SimRng,
) -> SwitchReport {
    match discipline {
        Discipline::Voq(scheduler) => simulate_voq(n, scheduler.as_mut(), arrivals, slots, rng),
        Discipline::Fifo => simulate_fifo(n, arrivals, slots, rng),
        Discipline::OutputQueued { speedup } => {
            simulate_output_queued(n, *speedup, arrivals, slots, rng)
        }
    }
}

fn simulate_voq(
    n: usize,
    scheduler: &mut dyn CrossbarScheduler,
    arrivals: &mut ArrivalGen,
    slots: u64,
    rng: &mut SimRng,
) -> SwitchReport {
    // Per (input, output): FIFO of arrival slots.
    let mut voq: Vec<VecDeque<u64>> = vec![VecDeque::new(); n * n];
    let mut offered = 0;
    let mut delivered = 0;
    let mut delay = Histogram::new();
    let mut peak_backlog = 0u64;
    let mut backlog = 0u64;
    for slot in 0..slots {
        for input in 0..n {
            if let Some(output) = arrivals.next(input, rng) {
                voq[input * n + output].push_back(slot);
                offered += 1;
                backlog += 1;
            }
        }
        peak_backlog = peak_backlog.max(backlog);
        let mut demand = DemandMatrix::new(n);
        for input in 0..n {
            for output in 0..n {
                let q = voq[input * n + output].len() as u64;
                if q > 0 {
                    demand.add(input, output, q);
                }
            }
        }
        let matching = scheduler.schedule(&demand, rng);
        debug_assert!(matching.is_legal(&demand));
        for (input, output) in matching.iter() {
            let arrived = voq[input * n + output].pop_front().expect("legal matching");
            delivered += 1;
            backlog -= 1;
            delay.record(slot - arrived + 1);
        }
    }
    SwitchReport {
        ports: n,
        slots,
        offered,
        delivered,
        delay,
        peak_backlog,
    }
}

fn simulate_fifo(
    n: usize,
    arrivals: &mut ArrivalGen,
    slots: u64,
    rng: &mut SimRng,
) -> SwitchReport {
    // Per input: FIFO of (output, arrival slot).
    let mut fifo: Vec<VecDeque<(usize, u64)>> = vec![VecDeque::new(); n];
    let mut offered = 0;
    let mut delivered = 0;
    let mut delay = Histogram::new();
    let mut peak_backlog = 0u64;
    let mut backlog = 0u64;
    for slot in 0..slots {
        for (input, q) in fifo.iter_mut().enumerate() {
            if let Some(output) = arrivals.next(input, rng) {
                q.push_back((output, slot));
                offered += 1;
                backlog += 1;
            }
        }
        peak_backlog = peak_backlog.max(backlog);
        // Heads contend; each output picks one contender at random.
        let mut contenders: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (input, q) in fifo.iter().enumerate() {
            if let Some(&(output, _)) = q.front() {
                contenders[output].push(input);
            }
        }
        for contenders_for_output in &contenders {
            if let Some(&winner) = rng.choose(contenders_for_output) {
                let (_, arrived) = fifo[winner].pop_front().expect("head exists");
                delivered += 1;
                backlog -= 1;
                delay.record(slot - arrived + 1);
            }
        }
    }
    SwitchReport {
        ports: n,
        slots,
        offered,
        delivered,
        delay,
        peak_backlog,
    }
}

fn simulate_output_queued(
    n: usize,
    speedup: usize,
    arrivals: &mut ArrivalGen,
    slots: u64,
    rng: &mut SimRng,
) -> SwitchReport {
    assert!(speedup > 0, "speedup must be positive");
    // Staging FIFO per input (cells the fabric hasn't moved yet) and an
    // unbounded queue per output.
    let mut staging: Vec<VecDeque<(usize, u64)>> = vec![VecDeque::new(); n];
    let mut out_q: Vec<VecDeque<u64>> = vec![VecDeque::new(); n];
    let mut offered = 0;
    let mut delivered = 0;
    let mut delay = Histogram::new();
    let mut peak_backlog = 0u64;
    let mut backlog = 0u64;
    for slot in 0..slots {
        for (input, q) in staging.iter_mut().enumerate() {
            if let Some(output) = arrivals.next(input, rng) {
                q.push_back((output, slot));
                offered += 1;
                backlog += 1;
            }
        }
        peak_backlog = peak_backlog.max(backlog);
        // Fabric passes: up to `speedup` rounds; in each round every input
        // may move its head cell unless the target output exhausted its
        // per-slot transfer budget. Random input order for fairness.
        let mut budget = vec![speedup; n];
        for _round in 0..speedup {
            let mut order: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut order);
            let mut moved = false;
            for &input in &order {
                if let Some(&(output, arrived)) = staging[input].front() {
                    if budget[output] > 0 {
                        staging[input].pop_front();
                        budget[output] -= 1;
                        out_q[output].push_back(arrived);
                        moved = true;
                    }
                }
            }
            if !moved {
                break;
            }
        }
        // Each output transmits one cell per slot.
        for q in out_q.iter_mut() {
            if let Some(arrived) = q.pop_front() {
                delivered += 1;
                backlog -= 1;
                delay.record(slot - arrived + 1);
            }
        }
    }
    SwitchReport {
        ports: n,
        slots,
        offered,
        delivered,
        delay,
        peak_backlog,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pim::Pim;

    fn run(
        n: usize,
        mut discipline: Discipline,
        pattern: Arrivals,
        slots: u64,
        seed: u64,
    ) -> SwitchReport {
        let mut gen = ArrivalGen::new(n, pattern);
        let mut rng = SimRng::new(seed);
        simulate(n, &mut discipline, &mut gen, slots, &mut rng)
    }

    #[test]
    fn fifo_saturates_near_58_percent() {
        // Karol et al. (§3): head-of-line blocking limits FIFO throughput to
        // 2 - sqrt(2) = 0.586 under saturated uniform traffic.
        let r = run(
            16,
            Discipline::Fifo,
            Arrivals::Uniform { load: 1.0 },
            20_000,
            1,
        );
        let tp = r.throughput();
        assert!(
            (0.55..0.62).contains(&tp),
            "FIFO saturation throughput {tp:.3} not near 0.586"
        );
    }

    #[test]
    fn pim_voq_sustains_high_load() {
        let r = run(
            16,
            Discipline::Voq(Box::new(Pim::an2())),
            Arrivals::Uniform { load: 0.9 },
            20_000,
            2,
        );
        // Delivered ≈ offered: the switch keeps up at 90% load.
        assert!(r.throughput() > 0.88, "throughput {:.3}", r.throughput());
        assert!(r.mean_delay().unwrap() < 20.0);
    }

    #[test]
    fn output_queueing_k16_is_the_yardstick() {
        let r = run(
            16,
            Discipline::OutputQueued { speedup: 16 },
            Arrivals::Uniform { load: 0.9 },
            20_000,
            3,
        );
        assert!(r.throughput() > 0.88);
    }

    #[test]
    fn pim_close_to_output_queueing() {
        // E5 in miniature: mean delays within a small factor at 80% load.
        let pim = run(
            16,
            Discipline::Voq(Box::new(Pim::an2())),
            Arrivals::Uniform { load: 0.8 },
            30_000,
            4,
        );
        let oq = run(
            16,
            Discipline::OutputQueued { speedup: 16 },
            Arrivals::Uniform { load: 0.8 },
            30_000,
            4,
        );
        let ratio = pim.mean_delay().unwrap() / oq.mean_delay().unwrap();
        assert!(
            ratio < 3.0,
            "PIM delay {:.2} vs OQ {:.2} (ratio {ratio:.2})",
            pim.mean_delay().unwrap(),
            oq.mean_delay().unwrap()
        );
    }

    #[test]
    fn permutation_traffic_full_rate_under_voq() {
        let perm: Vec<usize> = (0..16).map(|i| (i + 5) % 16).collect();
        let r = run(
            16,
            Discipline::Voq(Box::new(Pim::an2())),
            Arrivals::Permutation { load: 1.0, perm },
            10_000,
            5,
        );
        assert!(
            r.throughput() > 0.99,
            "contention-free traffic must flow at line rate"
        );
        // Delay is exactly 1 slot for almost every cell.
        assert!(r.mean_delay().unwrap() < 1.1);
    }

    #[test]
    fn hotspot_bounded_by_hot_output_capacity() {
        // 16 inputs at load 0.5 all aiming 50% of cells at output 0 offer
        // 4x output 0's capacity; delivered hot traffic caps at 1 cell/slot.
        let r = run(
            16,
            Discipline::Voq(Box::new(Pim::an2())),
            Arrivals::Hotspot {
                load: 0.5,
                hot_output: 0,
                hot_fraction: 0.5,
            },
            10_000,
            6,
        );
        // Aggregate throughput ≤ (1 hot + 15 * uniform share) — just check
        // the switch survives and delivers the feasible part.
        assert!(r.delivered > 0);
        assert!(r.throughput() < 0.5, "hot traffic cannot all be delivered");
    }

    #[test]
    fn bursty_long_run_load_close_to_target() {
        let mut gen = ArrivalGen::new(
            8,
            Arrivals::Bursty {
                load: 0.6,
                mean_burst: 10.0,
            },
        );
        let mut rng = SimRng::new(7);
        let slots = 200_000;
        let mut arrivals = 0u64;
        for _ in 0..slots {
            for input in 0..8 {
                if gen.next(input, &mut rng).is_some() {
                    arrivals += 1;
                }
            }
        }
        let load = arrivals as f64 / (slots * 8) as f64;
        assert!((load - 0.6).abs() < 0.05, "long-run bursty load {load:.3}");
    }

    #[test]
    fn bursts_are_correlated() {
        let mut gen = ArrivalGen::new(
            8,
            Arrivals::Bursty {
                load: 0.9,
                mean_burst: 16.0,
            },
        );
        let mut rng = SimRng::new(8);
        // Consecutive arrivals at one input mostly share a destination.
        let mut same = 0;
        let mut diff = 0;
        let mut last: Option<usize> = None;
        for _ in 0..10_000 {
            if let Some(d) = gen.next(0, &mut rng) {
                if let Some(l) = last {
                    if l == d {
                        same += 1;
                    } else {
                        diff += 1;
                    }
                }
                last = Some(d);
            }
        }
        assert!(
            same > diff * 5,
            "bursty traffic not correlated: {same} vs {diff}"
        );
    }

    #[test]
    fn zero_load_produces_nothing() {
        let r = run(
            4,
            Discipline::Voq(Box::new(Pim::an2())),
            Arrivals::Uniform { load: 0.0 },
            1_000,
            9,
        );
        assert_eq!(r.offered, 0);
        assert_eq!(r.delivered, 0);
        assert!(r.delay.is_empty());
        assert_eq!(r.peak_backlog, 0);
    }

    #[test]
    fn conservation_no_cell_lost() {
        // delivered + still-buffered == offered. Buffered = offered-delivered
        // must be small at modest load.
        let r = run(
            8,
            Discipline::Voq(Box::new(Pim::an2())),
            Arrivals::Uniform { load: 0.5 },
            10_000,
            10,
        );
        assert!(r.offered >= r.delivered);
        assert!(
            r.offered - r.delivered < 100,
            "backlog exploded at load 0.5"
        );
    }

    #[test]
    fn report_accessors() {
        let r = run(
            4,
            Discipline::Fifo,
            Arrivals::Uniform { load: 0.3 },
            5_000,
            11,
        );
        assert!((r.offered_load() - 0.3).abs() < 0.03);
        assert!(r.throughput() <= r.offered_load() + 1e-9);
        assert!(r.peak_backlog > 0);
    }

    #[test]
    #[should_panic(expected = "permutation must cover")]
    fn bad_permutation_rejected() {
        ArrivalGen::new(
            4,
            Arrivals::Permutation {
                load: 0.5,
                perm: vec![0, 1],
            },
        );
    }

    #[test]
    #[should_panic(expected = "hot output out of range")]
    fn bad_hotspot_rejected() {
        ArrivalGen::new(
            4,
            Arrivals::Hotspot {
                load: 0.5,
                hot_output: 4,
                hot_fraction: 0.5,
            },
        );
    }

    #[test]
    fn discipline_debug_strings() {
        let d = Discipline::Voq(Box::new(Pim::an2()));
        assert!(format!("{d:?}").contains("PIM"));
        assert!(format!("{:?}", Discipline::OutputQueued { speedup: 4 }).contains("k=4"));
    }
}
