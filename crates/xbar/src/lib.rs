//! # an2-xbar — crossbar scheduling for the AN2 switch (§3)
//!
//! Every cell slot, an AN2 switch must pair inputs with outputs across its
//! 16×16 crossbar: "some pairing of inputs and outputs must be determined
//! such that each input is paired with at most one output, and vice versa,
//! considering only those pairs with a queued cell to transmit between them.
//! This bi-partite matching problem must be solved every time slot, in the
//! half microsecond required to transmit a cell."
//!
//! The paper's answer is **parallel iterative matching** ([`Pim`]): a
//! distributed request/grant/accept protocol run by the line cards, using
//! randomness for fairness and iteration to fill in the gaps. This crate
//! implements PIM together with every baseline the paper discusses:
//!
//! * FIFO input queues with head-of-line blocking, whose throughput
//!   saturates at ≈58% (Karol et al., cited §3) — see [`simulate`];
//! * output queueing with internal speedup *k* — the "maximum attainable"
//!   yardstick the paper compares PIM against — see [`simulate`];
//! * [`GreedyMaximal`] — a centralized sequential maximal matcher;
//! * [`MaximumMatching`] — a true maximum matcher (Hopcroft–Karp), which the
//!   paper rejects both for speed and because it "can lead to starvation";
//! * [`Islip`] — the round-robin descendant of PIM, included as an
//!   extension baseline.
//!
//! The [`simulate`] module provides the slot-level switch simulator used by
//! the experiments to measure throughput and latency under configurable
//! arrival patterns, reproducing the §3 claims (E3, E4, E5, E6 in
//! EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod greedy;
mod islip;
mod matching;
mod maximum;
mod pim;
pub mod simulate;

pub use greedy::GreedyMaximal;
pub use islip::Islip;
pub use matching::{outputs_unique, DemandMatrix, Matching};
pub use maximum::MaximumMatching;
pub use pim::{Pim, PimOutcome};

use an2_sim::SimRng;

/// A crossbar scheduler: given the queued demand at each (input, output)
/// pair, produce a legal matching for this cell slot.
///
/// Implementations may keep state across slots (e.g. iSLIP's round-robin
/// pointers), which is why `schedule` takes `&mut self`.
pub trait CrossbarScheduler {
    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Computes the matching for one slot.
    ///
    /// The returned matching must be *legal*: each input paired with at most
    /// one output and vice versa, and only pairs with queued demand matched.
    fn schedule(&mut self, demand: &DemandMatrix, rng: &mut SimRng) -> Matching;
}
