//! # an2-xbar — crossbar scheduling for the AN2 switch (§3)
//!
//! Every cell slot, an AN2 switch must pair inputs with outputs across its
//! 16×16 crossbar: "some pairing of inputs and outputs must be determined
//! such that each input is paired with at most one output, and vice versa,
//! considering only those pairs with a queued cell to transmit between them.
//! This bi-partite matching problem must be solved every time slot, in the
//! half microsecond required to transmit a cell."
//!
//! The paper's answer is **parallel iterative matching** ([`Pim`]): a
//! distributed request/grant/accept protocol run by the line cards, using
//! randomness for fairness and iteration to fill in the gaps. This crate
//! implements PIM together with every baseline the paper discusses:
//!
//! * FIFO input queues with head-of-line blocking, whose throughput
//!   saturates at ≈58% (Karol et al., cited §3) — see [`simulate`];
//! * output queueing with internal speedup *k* — the "maximum attainable"
//!   yardstick the paper compares PIM against — see [`simulate`];
//! * [`GreedyMaximal`] — a centralized sequential maximal matcher;
//! * [`MaximumMatching`] — a true maximum matcher (Hopcroft–Karp), which the
//!   paper rejects both for speed and because it "can lead to starvation";
//! * [`Islip`] — the round-robin descendant of PIM, included as an
//!   extension baseline.
//!
//! The [`simulate`] module provides the slot-level switch simulator used by
//! the experiments to measure throughput and latency under configurable
//! arrival patterns, reproducing the §3 claims (E3, E4, E5, E6 in
//! EXPERIMENTS.md).
//!
//! ## The bitmask fast path
//!
//! Port sets — "which inputs request output `o`", "which outputs are still
//! free" — are represented as packed bitmasks throughout ([`DemandMatrix`]
//! keeps per-row and per-column request masks alongside the queue-length
//! table, [`Matching`] keeps matched-port masks, and [`PortSet`] is the
//! public face of the representation). Scheduler inner loops walk set bits
//! instead of scanning `0..n`, and all per-slot working state lives in a
//! caller-supplied [`Scratch`], so a multi-thousand-slot simulation performs
//! no per-slot heap allocation. Switches of up to 64 ports — every
//! configuration in the paper — pack each port set into a single `u64` and
//! take specialized fast paths that compile to the original one-word code;
//! wider switches (up to [`MAX_PORTS`] = 1024 ports) spread each set over
//! `⌈n/64⌉` words and run the same algorithms one loop level deeper, with
//! identical RNG-stream behaviour.
//!
//! The pre-refactor scan-and-`Vec` schedulers are preserved verbatim in
//! [`mod@reference`]; property tests assert the fast path produces bit-identical
//! matchings from the same RNG stream, and the Criterion benches measure the
//! speedup against them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod greedy;
mod islip;
mod matching;
mod maximum;
mod pim;
pub mod reference;
mod scratch;
pub mod simulate;

pub use greedy::GreedyMaximal;
pub use islip::Islip;
pub use matching::{outputs_unique, DemandMatrix, Matching, PortSet, MAX_PORTS};
pub use maximum::MaximumMatching;
pub use pim::{Pim, PimOutcome};
pub use scratch::Scratch;

use an2_sim::SimRng;

/// A crossbar scheduler: given the queued demand at each (input, output)
/// pair, produce a legal matching for this cell slot.
///
/// Implementations may keep state across slots (e.g. iSLIP's round-robin
/// pointers), which is why scheduling takes `&mut self`.
///
/// Implementors provide [`schedule_into`](CrossbarScheduler::schedule_into),
/// the allocation-free entry point used by the slot-level simulator; the
/// convenience wrapper [`schedule`](CrossbarScheduler::schedule) allocates a
/// fresh matching per call and is fine anywhere off the hot path.
pub trait CrossbarScheduler {
    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Computes the matching for one slot into `out`, reusing `scratch` for
    /// working state. `out` is reset to an empty matching of the demand's
    /// size first; callers need not clear it between slots.
    ///
    /// The resulting matching must be *legal*: each input paired with at
    /// most one output and vice versa, and only pairs with queued demand
    /// matched.
    fn schedule_into(
        &mut self,
        demand: &DemandMatrix,
        rng: &mut SimRng,
        scratch: &mut Scratch,
        out: &mut Matching,
    );

    /// Computes the matching for one slot, allocating the result.
    ///
    /// Equivalent to [`schedule_into`](CrossbarScheduler::schedule_into) with
    /// throwaway buffers — identical output, per-call allocations.
    fn schedule(&mut self, demand: &DemandMatrix, rng: &mut SimRng) -> Matching {
        let mut scratch = Scratch::new();
        let mut out = Matching::empty(demand.size());
        self.schedule_into(demand, rng, &mut scratch, &mut out);
        out
    }
}
