//! A centralized greedy maximal matcher — the sequential strawman PIM's
//! distributed protocol replaces.
//!
//! Visiting inputs in random order and giving each the first free output it
//! wants produces a maximal matching in one pass, but requires a central
//! scheduler touching all N ports serially — exactly what the line-card
//! hardware cannot afford within a cell slot. It serves as a quality
//! reference: PIM should match its throughput while running distributed.

use crate::matching::{count_set, nth_set, nth_set_bit, DemandMatrix, Matching};
use crate::scratch::Scratch;
use crate::CrossbarScheduler;
use an2_sim::SimRng;

/// Sequential random-order greedy maximal matching.
#[derive(Debug, Clone, Default)]
pub struct GreedyMaximal;

impl GreedyMaximal {
    /// Creates the scheduler.
    pub fn new() -> Self {
        GreedyMaximal
    }
}

impl CrossbarScheduler for GreedyMaximal {
    fn name(&self) -> &'static str {
        "greedy-maximal"
    }

    fn schedule_into(
        &mut self,
        demand: &DemandMatrix,
        rng: &mut SimRng,
        scratch: &mut Scratch,
        out: &mut Matching,
    ) {
        let n = demand.size();
        let w = demand.word_count();
        out.reset(n);
        scratch.ensure(n, w);
        let order = &mut scratch.order[..n];
        for (slot, input) in order.iter_mut().enumerate() {
            *input = slot;
        }
        rng.shuffle(order);
        if w == 1 {
            // Single-word fast path: every AN2-sized switch.
            for idx in 0..n {
                let input = scratch.order[idx];
                // The input's candidate outputs in one AND: what it wants,
                // restricted to outputs still free.
                let wanted = demand.row_mask(input) & out.free_outputs();
                if wanted != 0 {
                    let rank = rng.gen_range(wanted.count_ones() as usize);
                    out.set(input, nth_set_bit(wanted, rank));
                }
            }
        } else {
            // Multi-word path: the free-output set lives in `wa` and is
            // maintained incrementally as outputs get claimed.
            out.write_free_outputs(&mut scratch.wa[..w]);
            for idx in 0..n {
                let input = scratch.order[idx];
                let row = demand.row(input);
                let mut count = 0usize;
                for ((wb, &r), &free) in scratch.wb[..w].iter_mut().zip(row).zip(&scratch.wa[..w]) {
                    let wanted = r & free;
                    *wb = wanted;
                    count += wanted.count_ones() as usize;
                }
                if count != 0 {
                    let rank = rng.gen_range(count);
                    let output = nth_set(&scratch.wb[..w], rank);
                    out.set(input, output);
                    scratch.wa[output / 64] &= !(1 << (output % 64));
                }
            }
            debug_assert_eq!(count_set(&scratch.wa[..w]), n - out.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_maximal_and_legal() {
        let mut rng = SimRng::new(17);
        let mut g = GreedyMaximal::new();
        for _ in 0..200 {
            let mut d = DemandMatrix::new(8);
            for i in 0..8 {
                for o in 0..8 {
                    if rng.gen_bool(0.35) {
                        d.add(i, o, 1);
                    }
                }
            }
            let m = g.schedule(&d, &mut rng);
            assert!(m.is_legal(&d));
            assert!(m.is_maximal(&d));
        }
    }

    #[test]
    fn empty_demand_empty_matching() {
        let mut g = GreedyMaximal::new();
        let m = g.schedule(&DemandMatrix::new(4), &mut SimRng::new(1));
        assert!(m.is_empty());
        assert_eq!(g.name(), "greedy-maximal");
    }

    #[test]
    fn random_order_is_fair() {
        // Same starvation scenario as PIM's test: both pairings occur.
        let mut d = DemandMatrix::new(3);
        d.add(0, 1, 1);
        d.add(0, 2, 1);
        d.add(1, 2, 1);
        let mut rng = SimRng::new(23);
        let mut g = GreedyMaximal::new();
        let mut patterns = std::collections::HashSet::new();
        for _ in 0..200 {
            let m = g.schedule(&d, &mut rng);
            patterns.insert(m.to_string());
        }
        assert!(patterns.len() >= 2, "only saw {patterns:?}");
    }
}
