//! Maximum bipartite matching via Hopcroft–Karp — the baseline the paper
//! rejects.
//!
//! "Why not implement a maximum matching algorithm instead? The simplest
//! answer is that we don't know of a fast enough algorithm for maximum
//! matching. Besides, maximum matching can lead to starvation." (§3)
//!
//! This implementation is deliberately deterministic: when several maximum
//! matchings exist it prefers lower-numbered pairs, which is what makes the
//! paper's starvation example reproducible (experiment E6). A real hardware
//! maximum matcher would exhibit the same pathology whenever its tie-break
//! is any fixed rule.

use crate::matching::{DemandMatrix, Matching};
use crate::scratch::Scratch;
use crate::CrossbarScheduler;
use an2_sim::SimRng;
use std::collections::VecDeque;

/// Maximum-cardinality matching (Hopcroft–Karp), deterministic tie-breaks.
#[derive(Debug, Clone, Default)]
pub struct MaximumMatching;

impl MaximumMatching {
    /// Creates the scheduler.
    pub fn new() -> Self {
        MaximumMatching
    }

    /// Computes a maximum matching for `demand` (no randomness involved).
    pub fn solve(demand: &DemandMatrix) -> Matching {
        let mut m = Matching::empty(demand.size());
        Self::solve_into(demand, &mut m);
        m
    }

    /// Like [`solve`](MaximumMatching::solve), writing into `out` (reset
    /// first). Hopcroft–Karp's layer structures are still allocated per
    /// call — this scheduler is the rejected baseline, not the hot path.
    pub fn solve_into(demand: &DemandMatrix, out: &mut Matching) {
        let n = demand.size();
        const NIL: usize = usize::MAX;
        let adj: Vec<Vec<usize>> = (0..n).map(|i| demand.requests_of(i)).collect();
        let mut pair_u = vec![NIL; n]; // input -> output
        let mut pair_v = vec![NIL; n]; // output -> input
        let mut dist = vec![0u32; n];

        // BFS layering over free inputs.
        fn bfs(adj: &[Vec<usize>], pair_u: &[usize], pair_v: &[usize], dist: &mut [u32]) -> bool {
            const NIL: usize = usize::MAX;
            let mut q = VecDeque::new();
            let inf = u32::MAX;
            for u in 0..adj.len() {
                if pair_u[u] == NIL {
                    dist[u] = 0;
                    q.push_back(u);
                } else {
                    dist[u] = inf;
                }
            }
            let mut found = false;
            while let Some(u) = q.pop_front() {
                for &v in &adj[u] {
                    let w = pair_v[v];
                    if w == NIL {
                        found = true;
                    } else if dist[w] == inf {
                        dist[w] = dist[u] + 1;
                        q.push_back(w);
                    }
                }
            }
            found
        }

        fn dfs(
            u: usize,
            adj: &[Vec<usize>],
            pair_u: &mut [usize],
            pair_v: &mut [usize],
            dist: &mut [u32],
        ) -> bool {
            const NIL: usize = usize::MAX;
            for &v in &adj[u] {
                let w = pair_v[v];
                if w == NIL || (dist[w] == dist[u] + 1 && dfs(w, adj, pair_u, pair_v, dist)) {
                    pair_u[u] = v;
                    pair_v[v] = u;
                    return true;
                }
            }
            dist[u] = u32::MAX - 1; // dead end this phase
            false
        }

        while bfs(&adj, &pair_u, &pair_v, &mut dist) {
            for u in 0..n {
                if pair_u[u] == NIL {
                    dfs(u, &adj, &mut pair_u, &mut pair_v, &mut dist);
                }
            }
        }

        out.reset(n);
        for (u, &v) in pair_u.iter().enumerate() {
            if v != NIL {
                out.set(u, v);
            }
        }
    }
}

impl CrossbarScheduler for MaximumMatching {
    fn name(&self) -> &'static str {
        "maximum (Hopcroft-Karp)"
    }

    fn schedule_into(
        &mut self,
        demand: &DemandMatrix,
        _rng: &mut SimRng,
        _scratch: &mut Scratch,
        out: &mut Matching,
    ) {
        Self::solve_into(demand, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pim::Pim;

    #[test]
    fn maximum_on_simple_cases() {
        // Perfect matching available: diagonal demand.
        let mut d = DemandMatrix::new(4);
        for i in 0..4 {
            d.add(i, (i + 1) % 4, 1);
        }
        let m = MaximumMatching::solve(&d);
        assert_eq!(m.len(), 4);
        assert!(m.is_legal(&d));
    }

    #[test]
    fn maximum_beats_or_equals_maximal() {
        let mut rng = SimRng::new(31);
        for _ in 0..100 {
            let mut d = DemandMatrix::new(10);
            for i in 0..10 {
                for o in 0..10 {
                    if rng.gen_bool(0.25) {
                        d.add(i, o, 1);
                    }
                }
            }
            let max = MaximumMatching::solve(&d).len();
            let pim = Pim::run_to_maximal(&d, &mut rng).matching.len();
            assert!(max >= pim, "maximum {max} < maximal {pim}");
            // A maximal matching is at least half the maximum.
            assert!(pim * 2 >= max, "maximal {pim} below half of maximum {max}");
        }
    }

    #[test]
    fn paper_starvation_example() {
        // §3: "input 1 consistently has cells for outputs 2 and 3, and input
        // 4 consistently has cells for output 3. The maximum match always
        // pairs input 1 with output 2 and input 4 with output 3, and the
        // virtual circuit between input 1 and output 2..." (the paper means
        // the 1->3 pairing is starved). With 0-based ids: input 0 wants
        // outputs 1 and 2; input 3 wants output 2.
        let mut d = DemandMatrix::new(4);
        d.add(0, 1, 1);
        d.add(0, 2, 1);
        d.add(3, 2, 1);
        let mut rng = SimRng::new(1);
        let mut sched = MaximumMatching::new();
        for _ in 0..100 {
            let m = sched.schedule(&d, &mut rng);
            assert_eq!(m.len(), 2, "maximum is 2 pairs");
            assert_eq!(m.output_of(0), Some(1), "deterministic: 0->1 always");
            assert_eq!(m.output_of(3), Some(2));
            // 0->2 never happens: that virtual circuit is starved.
        }
    }

    #[test]
    fn known_maximum_smaller_than_perfect() {
        // Two inputs want only output 0: maximum is 1.
        let mut d = DemandMatrix::new(3);
        d.add(0, 0, 1);
        d.add(1, 0, 1);
        let m = MaximumMatching::solve(&d);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn augmenting_path_case() {
        // Greedy 0->0 would block; maximum must find the augmenting path
        // 0->1, 1->0.
        let mut d = DemandMatrix::new(2);
        d.add(0, 0, 1);
        d.add(0, 1, 1);
        d.add(1, 0, 1);
        let m = MaximumMatching::solve(&d);
        assert_eq!(m.len(), 2);
        assert_eq!(m.output_of(0), Some(1));
        assert_eq!(m.output_of(1), Some(0));
    }

    #[test]
    fn empty_demand() {
        let m = MaximumMatching::solve(&DemandMatrix::new(5));
        assert!(m.is_empty());
        assert_eq!(MaximumMatching::new().name(), "maximum (Hopcroft-Karp)");
    }
}
