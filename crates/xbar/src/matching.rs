//! Demand matrices and matchings — the vocabulary of crossbar scheduling.
//!
//! Both types are backed by `u64` port-set bitmasks (bit `i` of a mask names
//! port `i`), which caps switches at 64 ports — far beyond AN2's 16×16
//! crossbar — and turns the schedulers' inner loops into word operations:
//! "which unmatched inputs want this output" is a single `AND` instead of an
//! `N`-element scan.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Largest switch the bitmask representation supports.
pub const MAX_PORTS: usize = 64;

/// A mask with bits `0..n` set: the full port set of an `n`-port switch.
#[inline]
pub(crate) fn all_ports(n: usize) -> u64 {
    debug_assert!(n <= MAX_PORTS);
    if n == MAX_PORTS {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// The index of the `k`-th (0-based) set bit of `mask`, counting from the
/// least significant bit. Used to turn "pick requester `k` of this port
/// set" into the same element an index into the sorted port list would give.
///
/// # Panics
///
/// Debug-asserts that `mask` has more than `k` set bits.
#[inline]
pub(crate) fn nth_set_bit(mask: u64, k: usize) -> usize {
    debug_assert!((mask.count_ones() as usize) > k, "rank out of range");
    let mut m = mask;
    for _ in 0..k {
        m &= m - 1; // clear lowest set bit
    }
    m.trailing_zeros() as usize
}

/// The queued demand of a switch at one instant: how many cells wait at each
/// (input, output) virtual output queue.
///
/// Alongside the dense queue-length table, the matrix maintains per-input
/// and per-output request bitmasks so schedulers can intersect "inputs that
/// want output `o`" with "currently unmatched inputs" in one instruction.
///
/// ```
/// use an2_xbar::DemandMatrix;
/// let mut d = DemandMatrix::new(4);
/// d.add(0, 2, 3);
/// assert!(d.wants(0, 2));
/// assert_eq!(d.queued(0, 2), 3);
/// assert_eq!(d.row_mask(0), 0b100);
/// assert_eq!(d.col_mask(2), 0b001);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DemandMatrix {
    n: usize,
    queued: Vec<u64>,
    /// `row_masks[i]`: outputs input `i` has at least one cell for.
    row_masks: Vec<u64>,
    /// `col_masks[o]`: inputs holding at least one cell for output `o`.
    col_masks: Vec<u64>,
}

impl DemandMatrix {
    /// An `n × n` matrix with no demand.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n >` [`MAX_PORTS`] (the bitmask fast path
    /// packs a port set into one `u64`).
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "switch size must be positive");
        assert!(
            n <= MAX_PORTS,
            "bitmask port sets support at most {MAX_PORTS} ports (got {n})"
        );
        DemandMatrix {
            n,
            queued: vec![0; n * n],
            row_masks: vec![0; n],
            col_masks: vec![0; n],
        }
    }

    /// Switch size.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Cells queued from `input` to `output`.
    pub fn queued(&self, input: usize, output: usize) -> u64 {
        self.queued[input * self.n + output]
    }

    /// Whether any cell waits from `input` to `output`.
    #[inline]
    pub fn wants(&self, input: usize, output: usize) -> bool {
        self.row_masks[input] & (1 << output) != 0
    }

    /// The outputs requested by `input`, as a bitmask.
    #[inline]
    pub fn row_mask(&self, input: usize) -> u64 {
        self.row_masks[input]
    }

    /// The inputs requesting `output`, as a bitmask.
    #[inline]
    pub fn col_mask(&self, output: usize) -> u64 {
        self.col_masks[output]
    }

    /// Adds `cells` of demand.
    pub fn add(&mut self, input: usize, output: usize, cells: u64) {
        let q = &mut self.queued[input * self.n + output];
        *q += cells;
        if *q > 0 {
            self.row_masks[input] |= 1 << output;
            self.col_masks[output] |= 1 << input;
        }
    }

    /// Resets all demand to zero, keeping the allocation and size. Lets a
    /// caller that rebuilds demand every slot (the switch data plane) reuse
    /// one matrix instead of allocating three vectors per slot. Zeroes only
    /// the entries the row masks mark non-zero (every positive entry has its
    /// mask bit set), so clearing a sparsely used matrix touches a handful
    /// of words instead of memsetting the whole `n × n` table.
    pub fn clear(&mut self) {
        for input in 0..self.n {
            let mut mask = self.row_masks[input];
            while mask != 0 {
                let output = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                self.queued[input * self.n + output] = 0;
            }
            self.row_masks[input] = 0;
        }
        self.col_masks.fill(0);
    }

    /// Removes one queued cell (used when a matching dispatches it).
    ///
    /// # Panics
    ///
    /// Panics if no cell is queued there.
    pub fn take_one(&mut self, input: usize, output: usize) {
        let q = &mut self.queued[input * self.n + output];
        assert!(*q > 0, "no cell queued at ({input}, {output})");
        *q -= 1;
        if *q == 0 {
            self.row_masks[input] &= !(1 << output);
            self.col_masks[output] &= !(1 << input);
        }
    }

    /// Outputs requested by `input`, in ascending order.
    pub fn requests_of(&self, input: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.row_masks[input].count_ones() as usize);
        let mut mask = self.row_masks[input];
        while mask != 0 {
            out.push(mask.trailing_zeros() as usize);
            mask &= mask - 1;
        }
        out
    }

    /// Total queued cells.
    pub fn total(&self) -> u64 {
        self.queued.iter().sum()
    }

    /// Whether no demand exists at all.
    pub fn is_empty(&self) -> bool {
        self.row_masks.iter().all(|&m| m == 0)
    }

    /// Builds a matrix from a dense row-major table of queue lengths.
    ///
    /// # Panics
    ///
    /// Panics unless `table.len()` is a perfect square matching `n * n`.
    pub fn from_table(n: usize, table: &[u64]) -> Self {
        assert_eq!(table.len(), n * n, "table must be n*n entries");
        let mut d = DemandMatrix::new(n);
        d.queued.copy_from_slice(table);
        for i in 0..n {
            for o in 0..n {
                if d.queued[i * n + o] > 0 {
                    d.row_masks[i] |= 1 << o;
                    d.col_masks[o] |= 1 << i;
                }
            }
        }
        d
    }
}

/// A crossbar configuration for one slot: each input paired with at most one
/// output and vice versa.
///
/// Matched-port bitmasks make `input_free` / `output_free` single bit tests
/// and give schedulers the free-port sets ([`Matching::free_inputs`],
/// [`Matching::free_outputs`]) as whole words.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Matching {
    /// `pair[i] = Some(o)` when input `i` transmits to output `o`.
    pair: Vec<Option<usize>>,
    /// Bit `i` set when input `i` is matched.
    matched_in: u64,
    /// Bit `o` set when output `o` is matched.
    matched_out: u64,
}

impl Matching {
    /// An empty matching for an `n`-port switch.
    ///
    /// # Panics
    ///
    /// Panics if `n > ` [`MAX_PORTS`].
    pub fn empty(n: usize) -> Self {
        assert!(
            n <= MAX_PORTS,
            "bitmask port sets support at most {MAX_PORTS} ports (got {n})"
        );
        Matching {
            pair: vec![None; n],
            matched_in: 0,
            matched_out: 0,
        }
    }

    /// Builds from an explicit input→output table.
    ///
    /// # Panics
    ///
    /// Panics if two inputs claim the same output (illegal configuration).
    pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut m = Matching::empty(n);
        for (i, o) in pairs {
            m.set(i, o);
        }
        m
    }

    /// Resets to the empty matching of size `n`, reusing the allocation.
    pub fn reset(&mut self, n: usize) {
        assert!(
            n <= MAX_PORTS,
            "bitmask port sets support at most {MAX_PORTS} ports (got {n})"
        );
        self.pair.clear();
        self.pair.resize(n, None);
        self.matched_in = 0;
        self.matched_out = 0;
    }

    /// Switch size.
    pub fn size(&self) -> usize {
        self.pair.len()
    }

    /// The output matched to `input`, if any.
    pub fn output_of(&self, input: usize) -> Option<usize> {
        self.pair[input]
    }

    /// The input matched to `output`, if any.
    pub fn input_of(&self, output: usize) -> Option<usize> {
        self.pair.iter().position(|&p| p == Some(output))
    }

    /// Whether `input` is unmatched.
    #[inline]
    pub fn input_free(&self, input: usize) -> bool {
        self.matched_in & (1 << input) == 0
    }

    /// Whether `output` is unmatched.
    #[inline]
    pub fn output_free(&self, output: usize) -> bool {
        self.matched_out & (1 << output) == 0
    }

    /// The unmatched inputs, as a bitmask.
    #[inline]
    pub fn free_inputs(&self) -> u64 {
        !self.matched_in & all_ports(self.pair.len())
    }

    /// The unmatched outputs, as a bitmask.
    #[inline]
    pub fn free_outputs(&self) -> u64 {
        !self.matched_out & all_ports(self.pair.len())
    }

    /// Pairs `input` with `output`.
    ///
    /// # Panics
    ///
    /// Panics if either side is already matched — schedulers must only fill
    /// gaps, never overwrite.
    pub fn set(&mut self, input: usize, output: usize) {
        assert!(self.input_free(input), "input {input} already matched");
        assert!(self.output_free(output), "output {output} already matched");
        self.pair[input] = Some(output);
        self.matched_in |= 1 << input;
        self.matched_out |= 1 << output;
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.matched_in.count_ones() as usize
    }

    /// `true` when nothing is matched.
    pub fn is_empty(&self) -> bool {
        self.matched_in == 0
    }

    /// Iterates over `(input, output)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.pair
            .iter()
            .enumerate()
            .filter_map(|(i, &o)| o.map(|o| (i, o)))
    }

    /// A matching is *legal* for a demand matrix when every matched pair has
    /// queued demand. (Pair uniqueness is enforced structurally.)
    pub fn is_legal(&self, demand: &DemandMatrix) -> bool {
        self.iter().all(|(i, o)| demand.wants(i, o))
    }

    /// A matching is *maximal* when no unmatched input still has demand for
    /// an unmatched output — "there can be no head-of-line blocking, since
    /// all potential connections are considered at each iteration" (§3).
    pub fn is_maximal(&self, demand: &DemandMatrix) -> bool {
        let free_out = self.free_outputs();
        let mut free_in = self.free_inputs();
        while free_in != 0 {
            let i = free_in.trailing_zeros() as usize;
            free_in &= free_in - 1;
            if demand.row_mask(i) & free_out != 0 {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for Matching {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        write!(f, "{{")?;
        for (i, o) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{i}->{o}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Verifies the structural invariant that no output is matched twice.
/// `Matching::set` makes violations unrepresentable, so this exists for
/// property tests over scheduler outputs.
pub fn outputs_unique(m: &Matching) -> bool {
    let mut seen = vec![false; m.size()];
    for (_, o) in m.iter() {
        if seen[o] {
            return false;
        }
        seen[o] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_basics() {
        let mut d = DemandMatrix::new(3);
        assert!(d.is_empty());
        d.add(0, 1, 2);
        d.add(2, 0, 1);
        assert_eq!(d.total(), 3);
        assert_eq!(d.queued(0, 1), 2);
        assert!(d.wants(2, 0));
        assert!(!d.wants(1, 1));
        assert_eq!(d.requests_of(0), vec![1]);
        d.take_one(0, 1);
        assert_eq!(d.queued(0, 1), 1);
        assert_eq!(d.size(), 3);
    }

    #[test]
    fn masks_track_demand() {
        let mut d = DemandMatrix::new(4);
        d.add(1, 2, 1);
        d.add(1, 3, 2);
        d.add(0, 2, 1);
        assert_eq!(d.row_mask(1), 0b1100);
        assert_eq!(d.col_mask(2), 0b0011);
        d.take_one(1, 2);
        assert_eq!(d.row_mask(1), 0b1000, "bit clears when queue empties");
        assert_eq!(d.col_mask(2), 0b0001);
        d.take_one(1, 3);
        assert_eq!(d.row_mask(1), 0b1000, "two queued: bit survives one take");
        d.take_one(1, 3);
        assert_eq!(d.row_mask(1), 0);
    }

    #[test]
    fn add_zero_cells_leaves_no_demand() {
        let mut d = DemandMatrix::new(2);
        d.add(0, 1, 0);
        assert!(!d.wants(0, 1));
        assert_eq!(d.row_mask(0), 0);
        assert!(d.is_empty());
    }

    #[test]
    #[should_panic(expected = "no cell queued")]
    fn take_from_empty_panics() {
        DemandMatrix::new(2).take_one(0, 0);
    }

    #[test]
    fn from_table() {
        let d = DemandMatrix::from_table(2, &[0, 1, 2, 0]);
        assert_eq!(d.queued(0, 1), 1);
        assert_eq!(d.queued(1, 0), 2);
        assert_eq!(d.row_mask(0), 0b10);
        assert_eq!(d.col_mask(0), 0b10);
    }

    #[test]
    #[should_panic(expected = "n*n")]
    fn from_table_wrong_len_panics() {
        DemandMatrix::from_table(2, &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at most 64 ports")]
    fn oversized_switch_rejected() {
        DemandMatrix::new(65);
    }

    #[test]
    fn full_width_switch_supported() {
        let mut d = DemandMatrix::new(64);
        d.add(63, 63, 1);
        assert_eq!(d.row_mask(63), 1 << 63);
        let mut m = Matching::empty(64);
        assert_eq!(m.free_inputs(), u64::MAX);
        m.set(63, 0);
        assert_eq!(m.free_inputs(), u64::MAX >> 1);
    }

    #[test]
    fn matching_set_and_query() {
        let mut m = Matching::empty(4);
        assert!(m.is_empty());
        m.set(0, 2);
        m.set(3, 1);
        assert_eq!(m.len(), 2);
        assert_eq!(m.output_of(0), Some(2));
        assert_eq!(m.input_of(1), Some(3));
        assert_eq!(m.input_of(0), None);
        assert!(m.input_free(1));
        assert!(!m.output_free(2));
        assert_eq!(m.free_inputs(), 0b0110);
        assert_eq!(m.free_outputs(), 0b1001);
        assert_eq!(m.to_string(), "{0->2, 3->1}");
        assert!(outputs_unique(&m));
    }

    #[test]
    fn reset_reuses_allocation() {
        let mut m = Matching::empty(4);
        m.set(1, 1);
        m.reset(4);
        assert!(m.is_empty());
        assert_eq!(m.free_outputs(), 0b1111);
        m.reset(2);
        assert_eq!(m.size(), 2);
        assert_eq!(m.free_inputs(), 0b11);
    }

    #[test]
    #[should_panic(expected = "output 2 already matched")]
    fn double_output_panics() {
        let mut m = Matching::empty(3);
        m.set(0, 2);
        m.set(1, 2);
    }

    #[test]
    #[should_panic(expected = "input 0 already matched")]
    fn double_input_panics() {
        let mut m = Matching::empty(3);
        m.set(0, 2);
        m.set(0, 1);
    }

    #[test]
    fn legality_and_maximality() {
        let mut d = DemandMatrix::new(3);
        d.add(0, 0, 1);
        d.add(0, 1, 1);
        d.add(1, 1, 1);
        // {0->0, 1->1} is legal and maximal.
        let m = Matching::from_pairs(3, [(0, 0), (1, 1)]);
        assert!(m.is_legal(&d));
        assert!(m.is_maximal(&d));
        // {0->0} alone is legal but not maximal: input 1 / output 1 could
        // still be paired.
        let m2 = Matching::from_pairs(3, [(0, 0)]);
        assert!(m2.is_legal(&d));
        assert!(!m2.is_maximal(&d), "1->1 still possible");
        // A matching using a pair with no demand is illegal.
        let m3 = Matching::from_pairs(3, [(2, 2)]);
        assert!(!m3.is_legal(&d));
    }

    #[test]
    fn empty_matching_maximal_iff_no_demand() {
        let d = DemandMatrix::new(2);
        assert!(Matching::empty(2).is_maximal(&d));
        let mut d2 = DemandMatrix::new(2);
        d2.add(1, 1, 1);
        assert!(!Matching::empty(2).is_maximal(&d2));
    }

    #[test]
    fn bit_helpers() {
        assert_eq!(all_ports(64), u64::MAX);
        assert_eq!(all_ports(3), 0b111);
        assert_eq!(nth_set_bit(0b1011, 0), 0);
        assert_eq!(nth_set_bit(0b1011, 1), 1);
        assert_eq!(nth_set_bit(0b1011, 2), 3);
        assert_eq!(nth_set_bit(1 << 63, 0), 63);
    }
}
