//! Demand matrices and matchings — the vocabulary of crossbar scheduling.
//!
//! Both types are backed by multi-word port-set bitmasks (bit `i` of word
//! `i / 64` names port `i`). Switches of 64 ports or fewer — every AN2
//! configuration in the paper — fit one `u64` per set, and the schedulers
//! keep a specialized single-word fast path for them that compiles to the
//! same code as the original one-word representation. Wider switches (up to
//! [`MAX_PORTS`]) spread each set over `⌈n/64⌉` words and pay one extra loop
//! level; either way "which unmatched inputs want this output" is a handful
//! of `AND`s instead of an `N`-element scan.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Largest switch the bitmask representation supports.
pub const MAX_PORTS: usize = 1024;

/// Bits per port-set word.
pub(crate) const WORD_BITS: usize = 64;

/// Words needed for an `n`-port set.
#[inline]
pub(crate) fn words_for(n: usize) -> usize {
    n.div_ceil(WORD_BITS).max(1)
}

/// A mask with bits `0..n` set: the full port set of an `n`-port switch,
/// for `n ≤ 64`.
#[inline]
pub(crate) fn all_ports(n: usize) -> u64 {
    debug_assert!(n <= WORD_BITS);
    if n == WORD_BITS {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// The full-set mask of word `wi` of an `n`-port set: all ones for words
/// entirely below `n`, a partial mask for the word containing `n`, zero
/// above.
#[inline]
pub(crate) fn word_all(n: usize, wi: usize) -> u64 {
    all_ports(n.saturating_sub(wi * WORD_BITS).min(WORD_BITS))
}

/// The index of the `k`-th (0-based) set bit of `mask`, counting from the
/// least significant bit. Used to turn "pick requester `k` of this port
/// set" into the same element an index into the sorted port list would give.
///
/// # Panics
///
/// Debug-asserts that `mask` has more than `k` set bits.
#[inline]
pub(crate) fn nth_set_bit(mask: u64, k: usize) -> usize {
    debug_assert!((mask.count_ones() as usize) > k, "rank out of range");
    let mut m = mask;
    for _ in 0..k {
        m &= m - 1; // clear lowest set bit
    }
    m.trailing_zeros() as usize
}

/// Set bits across a word slice.
#[inline]
pub(crate) fn count_set(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// The index of the `k`-th (0-based) set bit across a word slice — the
/// multi-word twin of [`nth_set_bit`], preserving the "same element as an
/// index into the sorted port list" property that keeps the fast schedulers
/// on the reference oracles' RNG stream.
///
/// # Panics
///
/// Debug-asserts the slice has more than `k` set bits.
#[inline]
pub(crate) fn nth_set(words: &[u64], k: usize) -> usize {
    let mut k = k;
    for (wi, &w) in words.iter().enumerate() {
        let c = w.count_ones() as usize;
        if k < c {
            return wi * WORD_BITS + nth_set_bit(w, k);
        }
        k -= c;
    }
    debug_assert!(false, "rank out of range");
    0
}

/// A set of ports on one switch, packed 64 ports per word.
///
/// This is the public face of the schedulers' internal multi-word masks:
/// switches up to 64 ports use exactly one word (the hot paths specialize on
/// that), larger switches spread over `⌈n/64⌉` words. The set knows its
/// capacity, so complement-style queries ([`Matching::free_input_ports`])
/// stay well-defined past the last port.
///
/// ```
/// use an2_xbar::PortSet;
/// let mut s = PortSet::empty(100);
/// s.insert(3);
/// s.insert(97);
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(97) && !s.contains(96));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 97]);
/// assert_eq!(s.nth(1), 97);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortSet {
    n: usize,
    words: Vec<u64>,
}

impl PortSet {
    /// The empty set over ports `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n >` [`MAX_PORTS`].
    pub fn empty(n: usize) -> Self {
        assert!(n > 0, "switch size must be positive");
        assert!(
            n <= MAX_PORTS,
            "bitmask port sets support at most {MAX_PORTS} ports (got {n})"
        );
        PortSet {
            n,
            words: vec![0; words_for(n)],
        }
    }

    /// The full set over ports `0..n`.
    ///
    /// # Panics
    ///
    /// As [`PortSet::empty`].
    pub fn full(n: usize) -> Self {
        let mut s = PortSet::empty(n);
        for (wi, w) in s.words.iter_mut().enumerate() {
            *w = word_all(n, wi);
        }
        s
    }

    /// Wraps an existing word slice (little-endian port order).
    pub(crate) fn from_words(n: usize, words: &[u64]) -> Self {
        debug_assert_eq!(words.len(), words_for(n));
        PortSet {
            n,
            words: words.to_vec(),
        }
    }

    /// The number of ports the set ranges over (not the member count).
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// Whether `port` is in the set.
    #[inline]
    pub fn contains(&self, port: usize) -> bool {
        port < self.n && self.words[port / WORD_BITS] & (1 << (port % WORD_BITS)) != 0
    }

    /// Adds `port` to the set.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn insert(&mut self, port: usize) {
        assert!(port < self.n, "port {port} out of range (size {})", self.n);
        self.words[port / WORD_BITS] |= 1 << (port % WORD_BITS);
    }

    /// Removes `port` from the set (no-op when absent or out of range).
    pub fn remove(&mut self, port: usize) {
        if port < self.n {
            self.words[port / WORD_BITS] &= !(1 << (port % WORD_BITS));
        }
    }

    /// Member count.
    pub fn len(&self) -> usize {
        count_set(&self.words)
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The `k`-th (0-based) member in ascending port order — the same
    /// element an index into the sorted member list would give.
    ///
    /// # Panics
    ///
    /// Debug-asserts `k < len()`.
    pub fn nth(&self, k: usize) -> usize {
        nth_set(&self.words, k)
    }

    /// Members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(move |&p| self.contains(p))
    }

    /// The backing words, 64 ports each, little-endian port order.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }
}

/// The queued demand of a switch at one instant: how many cells wait at each
/// (input, output) virtual output queue.
///
/// Alongside the dense queue-length table, the matrix maintains per-input
/// and per-output request bitmasks so schedulers can intersect "inputs that
/// want output `o`" with "currently unmatched inputs" in a few instructions.
///
/// ```
/// use an2_xbar::DemandMatrix;
/// let mut d = DemandMatrix::new(4);
/// d.add(0, 2, 3);
/// assert!(d.wants(0, 2));
/// assert_eq!(d.queued(0, 2), 3);
/// assert_eq!(d.row_mask(0), 0b100);
/// assert_eq!(d.col_mask(2), 0b001);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DemandMatrix {
    n: usize,
    /// Words per port set: `words_for(n)`, 1 for every AN2-sized switch.
    words: usize,
    queued: Vec<u64>,
    /// `row_masks[i*words..]`: outputs input `i` has at least one cell for.
    row_masks: Vec<u64>,
    /// `col_masks[o*words..]`: inputs holding at least one cell for `o`.
    col_masks: Vec<u64>,
}

impl DemandMatrix {
    /// An `n × n` matrix with no demand.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n >` [`MAX_PORTS`].
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "switch size must be positive");
        assert!(
            n <= MAX_PORTS,
            "bitmask port sets support at most {MAX_PORTS} ports (got {n})"
        );
        let words = words_for(n);
        DemandMatrix {
            n,
            words,
            queued: vec![0; n * n],
            row_masks: vec![0; n * words],
            col_masks: vec![0; n * words],
        }
    }

    /// Switch size.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Words per port set (1 for switches of ≤ 64 ports — the fast path).
    #[inline]
    pub(crate) fn word_count(&self) -> usize {
        self.words
    }

    /// Cells queued from `input` to `output`.
    pub fn queued(&self, input: usize, output: usize) -> u64 {
        self.queued[input * self.n + output]
    }

    /// Whether any cell waits from `input` to `output`.
    #[inline]
    pub fn wants(&self, input: usize, output: usize) -> bool {
        self.row_masks[input * self.words + output / WORD_BITS] & (1 << (output % WORD_BITS)) != 0
    }

    /// The outputs requested by `input`, as a single-word bitmask. Only
    /// valid on switches of ≤ 64 ports; wider switches use
    /// [`DemandMatrix::row_ports`].
    #[inline]
    pub fn row_mask(&self, input: usize) -> u64 {
        debug_assert_eq!(self.words, 1, "row_mask on a >64-port switch");
        self.row_masks[input]
    }

    /// The inputs requesting `output`, as a single-word bitmask. Only valid
    /// on switches of ≤ 64 ports; wider switches use
    /// [`DemandMatrix::col_ports`].
    #[inline]
    pub fn col_mask(&self, output: usize) -> u64 {
        debug_assert_eq!(self.words, 1, "col_mask on a >64-port switch");
        self.col_masks[output]
    }

    /// The outputs requested by `input`, at any switch width.
    pub fn row_ports(&self, input: usize) -> PortSet {
        PortSet::from_words(self.n, self.row(input))
    }

    /// The inputs requesting `output`, at any switch width.
    pub fn col_ports(&self, output: usize) -> PortSet {
        PortSet::from_words(self.n, self.col(output))
    }

    /// The words of input `i`'s request set.
    #[inline]
    pub(crate) fn row(&self, input: usize) -> &[u64] {
        &self.row_masks[input * self.words..(input + 1) * self.words]
    }

    /// The words of output `o`'s requester set.
    #[inline]
    pub(crate) fn col(&self, output: usize) -> &[u64] {
        &self.col_masks[output * self.words..(output + 1) * self.words]
    }

    /// Adds `cells` of demand.
    pub fn add(&mut self, input: usize, output: usize, cells: u64) {
        let q = &mut self.queued[input * self.n + output];
        *q += cells;
        if *q > 0 {
            self.row_masks[input * self.words + output / WORD_BITS] |= 1 << (output % WORD_BITS);
            self.col_masks[output * self.words + input / WORD_BITS] |= 1 << (input % WORD_BITS);
        }
    }

    /// Resets all demand to zero, keeping the allocation and size. Lets a
    /// caller that rebuilds demand every slot (the switch data plane) reuse
    /// one matrix instead of allocating three vectors per slot. Zeroes only
    /// the entries the row masks mark non-zero (every positive entry has its
    /// mask bit set), so clearing a sparsely used matrix touches a handful
    /// of words instead of memsetting the whole `n × n` table.
    pub fn clear(&mut self) {
        for input in 0..self.n {
            for wi in 0..self.words {
                let mut mask = self.row_masks[input * self.words + wi];
                while mask != 0 {
                    let output = wi * WORD_BITS + mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    self.queued[input * self.n + output] = 0;
                }
                self.row_masks[input * self.words + wi] = 0;
            }
        }
        self.col_masks.fill(0);
    }

    /// Removes one queued cell (used when a matching dispatches it).
    ///
    /// # Panics
    ///
    /// Panics if no cell is queued there.
    pub fn take_one(&mut self, input: usize, output: usize) {
        let q = &mut self.queued[input * self.n + output];
        assert!(*q > 0, "no cell queued at ({input}, {output})");
        *q -= 1;
        if *q == 0 {
            self.row_masks[input * self.words + output / WORD_BITS] &= !(1 << (output % WORD_BITS));
            self.col_masks[output * self.words + input / WORD_BITS] &= !(1 << (input % WORD_BITS));
        }
    }

    /// Outputs requested by `input`, in ascending order.
    pub fn requests_of(&self, input: usize) -> Vec<usize> {
        let row = self.row(input);
        let mut out = Vec::with_capacity(count_set(row));
        for (wi, &w) in row.iter().enumerate() {
            let mut mask = w;
            while mask != 0 {
                out.push(wi * WORD_BITS + mask.trailing_zeros() as usize);
                mask &= mask - 1;
            }
        }
        out
    }

    /// Total queued cells.
    pub fn total(&self) -> u64 {
        self.queued.iter().sum()
    }

    /// Whether no demand exists at all.
    pub fn is_empty(&self) -> bool {
        self.row_masks.iter().all(|&m| m == 0)
    }

    /// Builds a matrix from a dense row-major table of queue lengths.
    ///
    /// # Panics
    ///
    /// Panics unless `table.len()` is a perfect square matching `n * n`.
    pub fn from_table(n: usize, table: &[u64]) -> Self {
        assert_eq!(table.len(), n * n, "table must be n*n entries");
        let mut d = DemandMatrix::new(n);
        d.queued.copy_from_slice(table);
        for i in 0..n {
            for o in 0..n {
                if d.queued[i * n + o] > 0 {
                    d.row_masks[i * d.words + o / WORD_BITS] |= 1 << (o % WORD_BITS);
                    d.col_masks[o * d.words + i / WORD_BITS] |= 1 << (i % WORD_BITS);
                }
            }
        }
        d
    }
}

/// A crossbar configuration for one slot: each input paired with at most one
/// output and vice versa.
///
/// Matched-port bitmasks make `input_free` / `output_free` single bit tests
/// and give schedulers the free-port sets ([`Matching::free_inputs`] on
/// single-word switches, [`Matching::free_input_ports`] at any width) as
/// whole words.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Matching {
    /// `pair[i] = Some(o)` when input `i` transmits to output `o`.
    pair: Vec<Option<usize>>,
    /// Words per port set.
    words: usize,
    /// Bit `i` set when input `i` is matched.
    matched_in: Vec<u64>,
    /// Bit `o` set when output `o` is matched.
    matched_out: Vec<u64>,
}

impl Matching {
    /// An empty matching for an `n`-port switch.
    ///
    /// # Panics
    ///
    /// Panics if `n > ` [`MAX_PORTS`].
    pub fn empty(n: usize) -> Self {
        assert!(
            n <= MAX_PORTS,
            "bitmask port sets support at most {MAX_PORTS} ports (got {n})"
        );
        let words = words_for(n);
        Matching {
            pair: vec![None; n],
            words,
            matched_in: vec![0; words],
            matched_out: vec![0; words],
        }
    }

    /// Builds from an explicit input→output table.
    ///
    /// # Panics
    ///
    /// Panics if two inputs claim the same output (illegal configuration).
    pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut m = Matching::empty(n);
        for (i, o) in pairs {
            m.set(i, o);
        }
        m
    }

    /// Resets to the empty matching of size `n`, reusing the allocation.
    pub fn reset(&mut self, n: usize) {
        assert!(
            n <= MAX_PORTS,
            "bitmask port sets support at most {MAX_PORTS} ports (got {n})"
        );
        self.pair.clear();
        self.pair.resize(n, None);
        self.words = words_for(n);
        self.matched_in.clear();
        self.matched_in.resize(self.words, 0);
        self.matched_out.clear();
        self.matched_out.resize(self.words, 0);
    }

    /// Switch size.
    pub fn size(&self) -> usize {
        self.pair.len()
    }

    /// The output matched to `input`, if any.
    pub fn output_of(&self, input: usize) -> Option<usize> {
        self.pair[input]
    }

    /// The input matched to `output`, if any.
    pub fn input_of(&self, output: usize) -> Option<usize> {
        self.pair.iter().position(|&p| p == Some(output))
    }

    /// Whether `input` is unmatched.
    #[inline]
    pub fn input_free(&self, input: usize) -> bool {
        self.matched_in[input / WORD_BITS] & (1 << (input % WORD_BITS)) == 0
    }

    /// Whether `output` is unmatched.
    #[inline]
    pub fn output_free(&self, output: usize) -> bool {
        self.matched_out[output / WORD_BITS] & (1 << (output % WORD_BITS)) == 0
    }

    /// The unmatched inputs, as a single-word bitmask. Only valid on
    /// switches of ≤ 64 ports; wider switches use
    /// [`Matching::free_input_ports`].
    #[inline]
    pub fn free_inputs(&self) -> u64 {
        debug_assert_eq!(self.words, 1, "free_inputs on a >64-port switch");
        !self.matched_in[0] & all_ports(self.pair.len())
    }

    /// The unmatched outputs, as a single-word bitmask. Only valid on
    /// switches of ≤ 64 ports; wider switches use
    /// [`Matching::free_output_ports`].
    #[inline]
    pub fn free_outputs(&self) -> u64 {
        debug_assert_eq!(self.words, 1, "free_outputs on a >64-port switch");
        !self.matched_out[0] & all_ports(self.pair.len())
    }

    /// The unmatched inputs, at any switch width.
    pub fn free_input_ports(&self) -> PortSet {
        let mut s = PortSet::empty(self.pair.len().max(1));
        self.write_free_inputs(&mut s.words);
        s
    }

    /// The unmatched outputs, at any switch width.
    pub fn free_output_ports(&self) -> PortSet {
        let mut s = PortSet::empty(self.pair.len().max(1));
        self.write_free_outputs(&mut s.words);
        s
    }

    /// Writes the free-input words into a caller buffer (alloc-free wide
    /// scheduler path).
    #[inline]
    pub(crate) fn write_free_inputs(&self, out: &mut [u64]) {
        let n = self.pair.len();
        for (wi, w) in out.iter_mut().enumerate().take(self.words) {
            *w = !self.matched_in[wi] & word_all(n, wi);
        }
    }

    /// Writes the free-output words into a caller buffer.
    #[inline]
    pub(crate) fn write_free_outputs(&self, out: &mut [u64]) {
        let n = self.pair.len();
        for (wi, w) in out.iter_mut().enumerate().take(self.words) {
            *w = !self.matched_out[wi] & word_all(n, wi);
        }
    }

    /// Pairs `input` with `output`.
    ///
    /// # Panics
    ///
    /// Panics if either side is already matched — schedulers must only fill
    /// gaps, never overwrite.
    pub fn set(&mut self, input: usize, output: usize) {
        assert!(self.input_free(input), "input {input} already matched");
        assert!(self.output_free(output), "output {output} already matched");
        self.pair[input] = Some(output);
        self.matched_in[input / WORD_BITS] |= 1 << (input % WORD_BITS);
        self.matched_out[output / WORD_BITS] |= 1 << (output % WORD_BITS);
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        count_set(&self.matched_in)
    }

    /// `true` when nothing is matched.
    pub fn is_empty(&self) -> bool {
        self.matched_in.iter().all(|&w| w == 0)
    }

    /// Iterates over `(input, output)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.pair
            .iter()
            .enumerate()
            .filter_map(|(i, &o)| o.map(|o| (i, o)))
    }

    /// A matching is *legal* for a demand matrix when every matched pair has
    /// queued demand. (Pair uniqueness is enforced structurally.)
    pub fn is_legal(&self, demand: &DemandMatrix) -> bool {
        self.iter().all(|(i, o)| demand.wants(i, o))
    }

    /// A matching is *maximal* when no unmatched input still has demand for
    /// an unmatched output — "there can be no head-of-line blocking, since
    /// all potential connections are considered at each iteration" (§3).
    pub fn is_maximal(&self, demand: &DemandMatrix) -> bool {
        let n = self.pair.len();
        for input in 0..n {
            if !self.input_free(input) {
                continue;
            }
            let row = demand.row(input);
            for (wi, (&r, &matched)) in row.iter().zip(&self.matched_out).enumerate() {
                let free_out = !matched & word_all(n, wi);
                if r & free_out != 0 {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for Matching {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        write!(f, "{{")?;
        for (i, o) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{i}->{o}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Verifies the structural invariant that no output is matched twice.
/// `Matching::set` makes violations unrepresentable, so this exists for
/// property tests over scheduler outputs.
pub fn outputs_unique(m: &Matching) -> bool {
    let mut seen = vec![false; m.size()];
    for (_, o) in m.iter() {
        if seen[o] {
            return false;
        }
        seen[o] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_basics() {
        let mut d = DemandMatrix::new(3);
        assert!(d.is_empty());
        d.add(0, 1, 2);
        d.add(2, 0, 1);
        assert_eq!(d.total(), 3);
        assert_eq!(d.queued(0, 1), 2);
        assert!(d.wants(2, 0));
        assert!(!d.wants(1, 1));
        assert_eq!(d.requests_of(0), vec![1]);
        d.take_one(0, 1);
        assert_eq!(d.queued(0, 1), 1);
        assert_eq!(d.size(), 3);
    }

    #[test]
    fn masks_track_demand() {
        let mut d = DemandMatrix::new(4);
        d.add(1, 2, 1);
        d.add(1, 3, 2);
        d.add(0, 2, 1);
        assert_eq!(d.row_mask(1), 0b1100);
        assert_eq!(d.col_mask(2), 0b0011);
        d.take_one(1, 2);
        assert_eq!(d.row_mask(1), 0b1000, "bit clears when queue empties");
        assert_eq!(d.col_mask(2), 0b0001);
        d.take_one(1, 3);
        assert_eq!(d.row_mask(1), 0b1000, "two queued: bit survives one take");
        d.take_one(1, 3);
        assert_eq!(d.row_mask(1), 0);
    }

    #[test]
    fn add_zero_cells_leaves_no_demand() {
        let mut d = DemandMatrix::new(2);
        d.add(0, 1, 0);
        assert!(!d.wants(0, 1));
        assert_eq!(d.row_mask(0), 0);
        assert!(d.is_empty());
    }

    #[test]
    #[should_panic(expected = "no cell queued")]
    fn take_from_empty_panics() {
        DemandMatrix::new(2).take_one(0, 0);
    }

    #[test]
    fn from_table() {
        let d = DemandMatrix::from_table(2, &[0, 1, 2, 0]);
        assert_eq!(d.queued(0, 1), 1);
        assert_eq!(d.queued(1, 0), 2);
        assert_eq!(d.row_mask(0), 0b10);
        assert_eq!(d.col_mask(0), 0b10);
    }

    #[test]
    #[should_panic(expected = "n*n")]
    fn from_table_wrong_len_panics() {
        DemandMatrix::from_table(2, &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at most 1024 ports")]
    fn oversized_switch_rejected() {
        DemandMatrix::new(MAX_PORTS + 1);
    }

    #[test]
    fn full_width_switch_supported() {
        let mut d = DemandMatrix::new(64);
        d.add(63, 63, 1);
        assert_eq!(d.row_mask(63), 1 << 63);
        let mut m = Matching::empty(64);
        assert_eq!(m.free_inputs(), u64::MAX);
        m.set(63, 0);
        assert_eq!(m.free_inputs(), u64::MAX >> 1);
    }

    #[test]
    fn wide_switch_demand_and_matching() {
        // Ports past 64 land in the second word and behave identically.
        let n = 130;
        let mut d = DemandMatrix::new(n);
        d.add(0, 129, 1);
        d.add(100, 3, 2);
        d.add(100, 65, 1);
        assert!(d.wants(0, 129) && d.wants(100, 65));
        assert_eq!(d.requests_of(100), vec![3, 65]);
        assert_eq!(d.row_ports(100).iter().collect::<Vec<_>>(), vec![3, 65]);
        assert_eq!(d.col_ports(3).iter().collect::<Vec<_>>(), vec![100]);
        d.take_one(100, 65);
        assert!(!d.wants(100, 65));
        d.clear();
        assert!(d.is_empty());
        assert_eq!(d.queued(0, 129), 0);

        let mut m = Matching::empty(n);
        assert_eq!(m.free_input_ports().len(), n);
        m.set(129, 64);
        assert!(!m.input_free(129) && !m.output_free(64));
        assert!(m.input_free(128) && m.output_free(65));
        assert_eq!(m.free_output_ports().len(), n - 1);
        assert_eq!(m.len(), 1);
        assert_eq!(m.output_of(129), Some(64));
        assert_eq!(m.input_of(64), Some(129));
    }

    #[test]
    fn wide_maximality() {
        let n = 70;
        let mut d = DemandMatrix::new(n);
        d.add(68, 69, 1);
        let m = Matching::empty(n);
        assert!(!m.is_maximal(&d), "68->69 still possible");
        let m2 = Matching::from_pairs(n, [(68, 69)]);
        assert!(m2.is_maximal(&d));
        assert!(m2.is_legal(&d));
    }

    #[test]
    fn port_set_basics() {
        let full = PortSet::full(100);
        assert_eq!(full.len(), 100);
        assert_eq!(full.capacity(), 100);
        assert!(full.contains(99) && !full.contains(100));
        let mut s = PortSet::empty(65);
        assert!(s.is_empty());
        s.insert(64);
        s.insert(0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.nth(0), 0);
        assert_eq!(s.nth(1), 64);
        s.remove(0);
        s.remove(64);
        s.remove(1_000); // out of range: no-op
        assert!(s.is_empty());
        assert_eq!(s.as_words().len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn port_set_insert_out_of_range_panics() {
        PortSet::empty(64).insert(64);
    }

    #[test]
    fn matching_set_and_query() {
        let mut m = Matching::empty(4);
        assert!(m.is_empty());
        m.set(0, 2);
        m.set(3, 1);
        assert_eq!(m.len(), 2);
        assert_eq!(m.output_of(0), Some(2));
        assert_eq!(m.input_of(1), Some(3));
        assert_eq!(m.input_of(0), None);
        assert!(m.input_free(1));
        assert!(!m.output_free(2));
        assert_eq!(m.free_inputs(), 0b0110);
        assert_eq!(m.free_outputs(), 0b1001);
        assert_eq!(m.to_string(), "{0->2, 3->1}");
        assert!(outputs_unique(&m));
    }

    #[test]
    fn reset_reuses_allocation() {
        let mut m = Matching::empty(4);
        m.set(1, 1);
        m.reset(4);
        assert!(m.is_empty());
        assert_eq!(m.free_outputs(), 0b1111);
        m.reset(2);
        assert_eq!(m.size(), 2);
        assert_eq!(m.free_inputs(), 0b11);
    }

    #[test]
    fn reset_across_word_boundaries() {
        let mut m = Matching::empty(4);
        m.set(0, 0);
        m.reset(100);
        assert_eq!(m.size(), 100);
        assert!(m.is_empty());
        m.set(99, 1);
        m.reset(4);
        assert_eq!(m.free_inputs(), 0b1111);
    }

    #[test]
    #[should_panic(expected = "output 2 already matched")]
    fn double_output_panics() {
        let mut m = Matching::empty(3);
        m.set(0, 2);
        m.set(1, 2);
    }

    #[test]
    #[should_panic(expected = "input 0 already matched")]
    fn double_input_panics() {
        let mut m = Matching::empty(3);
        m.set(0, 2);
        m.set(0, 1);
    }

    #[test]
    fn legality_and_maximality() {
        let mut d = DemandMatrix::new(3);
        d.add(0, 0, 1);
        d.add(0, 1, 1);
        d.add(1, 1, 1);
        // {0->0, 1->1} is legal and maximal.
        let m = Matching::from_pairs(3, [(0, 0), (1, 1)]);
        assert!(m.is_legal(&d));
        assert!(m.is_maximal(&d));
        // {0->0} alone is legal but not maximal: input 1 / output 1 could
        // still be paired.
        let m2 = Matching::from_pairs(3, [(0, 0)]);
        assert!(m2.is_legal(&d));
        assert!(!m2.is_maximal(&d), "1->1 still possible");
        // A matching using a pair with no demand is illegal.
        let m3 = Matching::from_pairs(3, [(2, 2)]);
        assert!(!m3.is_legal(&d));
    }

    #[test]
    fn empty_matching_maximal_iff_no_demand() {
        let d = DemandMatrix::new(2);
        assert!(Matching::empty(2).is_maximal(&d));
        let mut d2 = DemandMatrix::new(2);
        d2.add(1, 1, 1);
        assert!(!Matching::empty(2).is_maximal(&d2));
    }

    #[test]
    fn bit_helpers() {
        assert_eq!(all_ports(64), u64::MAX);
        assert_eq!(all_ports(3), 0b111);
        assert_eq!(nth_set_bit(0b1011, 0), 0);
        assert_eq!(nth_set_bit(0b1011, 1), 1);
        assert_eq!(nth_set_bit(0b1011, 2), 3);
        assert_eq!(nth_set_bit(1 << 63, 0), 63);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(1024), 16);
        assert_eq!(word_all(70, 0), u64::MAX);
        assert_eq!(word_all(70, 1), 0b11_1111);
        assert_eq!(word_all(70, 2), 0);
        assert_eq!(nth_set(&[0b100, 0b11], 0), 2);
        assert_eq!(nth_set(&[0b100, 0b11], 1), 64);
        assert_eq!(nth_set(&[0b100, 0b11], 2), 65);
        assert_eq!(count_set(&[0b100, 0b11]), 3);
    }
}
