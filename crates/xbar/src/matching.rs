//! Demand matrices and matchings — the vocabulary of crossbar scheduling.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The queued demand of a switch at one instant: how many cells wait at each
/// (input, output) virtual output queue.
///
/// ```
/// use an2_xbar::DemandMatrix;
/// let mut d = DemandMatrix::new(4);
/// d.add(0, 2, 3);
/// assert!(d.wants(0, 2));
/// assert_eq!(d.queued(0, 2), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DemandMatrix {
    n: usize,
    queued: Vec<u64>,
}

impl DemandMatrix {
    /// An `n × n` matrix with no demand.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "switch size must be positive");
        DemandMatrix {
            n,
            queued: vec![0; n * n],
        }
    }

    /// Switch size.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Cells queued from `input` to `output`.
    pub fn queued(&self, input: usize, output: usize) -> u64 {
        self.queued[input * self.n + output]
    }

    /// Whether any cell waits from `input` to `output`.
    pub fn wants(&self, input: usize, output: usize) -> bool {
        self.queued(input, output) > 0
    }

    /// Adds `cells` of demand.
    pub fn add(&mut self, input: usize, output: usize, cells: u64) {
        self.queued[input * self.n + output] += cells;
    }

    /// Removes one queued cell (used when a matching dispatches it).
    ///
    /// # Panics
    ///
    /// Panics if no cell is queued there.
    pub fn take_one(&mut self, input: usize, output: usize) {
        let q = &mut self.queued[input * self.n + output];
        assert!(*q > 0, "no cell queued at ({input}, {output})");
        *q -= 1;
    }

    /// Outputs requested by `input`, in ascending order.
    pub fn requests_of(&self, input: usize) -> Vec<usize> {
        (0..self.n).filter(|&o| self.wants(input, o)).collect()
    }

    /// Total queued cells.
    pub fn total(&self) -> u64 {
        self.queued.iter().sum()
    }

    /// Whether no demand exists at all.
    pub fn is_empty(&self) -> bool {
        self.queued.iter().all(|&q| q == 0)
    }

    /// Builds a matrix from a dense row-major table of queue lengths.
    ///
    /// # Panics
    ///
    /// Panics unless `table.len()` is a perfect square matching `n * n`.
    pub fn from_table(n: usize, table: &[u64]) -> Self {
        assert_eq!(table.len(), n * n, "table must be n*n entries");
        let mut d = DemandMatrix::new(n);
        d.queued.copy_from_slice(table);
        d
    }
}

/// A crossbar configuration for one slot: each input paired with at most one
/// output and vice versa.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Matching {
    /// `pair[i] = Some(o)` when input `i` transmits to output `o`.
    pair: Vec<Option<usize>>,
}

impl Matching {
    /// An empty matching for an `n`-port switch.
    pub fn empty(n: usize) -> Self {
        Matching {
            pair: vec![None; n],
        }
    }

    /// Builds from an explicit input→output table.
    ///
    /// # Panics
    ///
    /// Panics if two inputs claim the same output (illegal configuration).
    pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut m = Matching::empty(n);
        for (i, o) in pairs {
            m.set(i, o);
        }
        m
    }

    /// Switch size.
    pub fn size(&self) -> usize {
        self.pair.len()
    }

    /// The output matched to `input`, if any.
    pub fn output_of(&self, input: usize) -> Option<usize> {
        self.pair[input]
    }

    /// The input matched to `output`, if any.
    pub fn input_of(&self, output: usize) -> Option<usize> {
        self.pair.iter().position(|&p| p == Some(output))
    }

    /// Whether `input` is unmatched.
    pub fn input_free(&self, input: usize) -> bool {
        self.pair[input].is_none()
    }

    /// Whether `output` is unmatched.
    pub fn output_free(&self, output: usize) -> bool {
        !self.pair.contains(&Some(output))
    }

    /// Pairs `input` with `output`.
    ///
    /// # Panics
    ///
    /// Panics if either side is already matched — schedulers must only fill
    /// gaps, never overwrite.
    pub fn set(&mut self, input: usize, output: usize) {
        assert!(self.input_free(input), "input {input} already matched");
        assert!(self.output_free(output), "output {output} already matched");
        self.pair[input] = Some(output);
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.pair.iter().flatten().count()
    }

    /// `true` when nothing is matched.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over `(input, output)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.pair
            .iter()
            .enumerate()
            .filter_map(|(i, &o)| o.map(|o| (i, o)))
    }

    /// A matching is *legal* for a demand matrix when every matched pair has
    /// queued demand. (Pair uniqueness is enforced structurally.)
    pub fn is_legal(&self, demand: &DemandMatrix) -> bool {
        self.iter().all(|(i, o)| demand.wants(i, o))
    }

    /// A matching is *maximal* when no unmatched input still has demand for
    /// an unmatched output — "there can be no head-of-line blocking, since
    /// all potential connections are considered at each iteration" (§3).
    pub fn is_maximal(&self, demand: &DemandMatrix) -> bool {
        for i in 0..self.size() {
            if !self.input_free(i) {
                continue;
            }
            for o in 0..self.size() {
                if self.output_free(o) && demand.wants(i, o) {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for Matching {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        write!(f, "{{")?;
        for (i, o) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{i}->{o}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Verifies the structural invariant that no output is matched twice.
/// `Matching::set` makes violations unrepresentable, so this exists for
/// property tests over scheduler outputs.
pub fn outputs_unique(m: &Matching) -> bool {
    let mut seen = vec![false; m.size()];
    for (_, o) in m.iter() {
        if seen[o] {
            return false;
        }
        seen[o] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_basics() {
        let mut d = DemandMatrix::new(3);
        assert!(d.is_empty());
        d.add(0, 1, 2);
        d.add(2, 0, 1);
        assert_eq!(d.total(), 3);
        assert_eq!(d.queued(0, 1), 2);
        assert!(d.wants(2, 0));
        assert!(!d.wants(1, 1));
        assert_eq!(d.requests_of(0), vec![1]);
        d.take_one(0, 1);
        assert_eq!(d.queued(0, 1), 1);
        assert_eq!(d.size(), 3);
    }

    #[test]
    #[should_panic(expected = "no cell queued")]
    fn take_from_empty_panics() {
        DemandMatrix::new(2).take_one(0, 0);
    }

    #[test]
    fn from_table() {
        let d = DemandMatrix::from_table(2, &[0, 1, 2, 0]);
        assert_eq!(d.queued(0, 1), 1);
        assert_eq!(d.queued(1, 0), 2);
    }

    #[test]
    #[should_panic(expected = "n*n")]
    fn from_table_wrong_len_panics() {
        DemandMatrix::from_table(2, &[1, 2, 3]);
    }

    #[test]
    fn matching_set_and_query() {
        let mut m = Matching::empty(4);
        assert!(m.is_empty());
        m.set(0, 2);
        m.set(3, 1);
        assert_eq!(m.len(), 2);
        assert_eq!(m.output_of(0), Some(2));
        assert_eq!(m.input_of(1), Some(3));
        assert_eq!(m.input_of(0), None);
        assert!(m.input_free(1));
        assert!(!m.output_free(2));
        assert_eq!(m.to_string(), "{0->2, 3->1}");
        assert!(outputs_unique(&m));
    }

    #[test]
    #[should_panic(expected = "output 2 already matched")]
    fn double_output_panics() {
        let mut m = Matching::empty(3);
        m.set(0, 2);
        m.set(1, 2);
    }

    #[test]
    #[should_panic(expected = "input 0 already matched")]
    fn double_input_panics() {
        let mut m = Matching::empty(3);
        m.set(0, 2);
        m.set(0, 1);
    }

    #[test]
    fn legality_and_maximality() {
        let mut d = DemandMatrix::new(3);
        d.add(0, 0, 1);
        d.add(0, 1, 1);
        d.add(1, 1, 1);
        // {0->0, 1->1} is legal and maximal.
        let m = Matching::from_pairs(3, [(0, 0), (1, 1)]);
        assert!(m.is_legal(&d));
        assert!(m.is_maximal(&d));
        // {0->0} alone is legal but not maximal: input 1 / output 1 could
        // still be paired.
        let m2 = Matching::from_pairs(3, [(0, 0)]);
        assert!(m2.is_legal(&d));
        assert!(!m2.is_maximal(&d), "1->1 still possible");
        // A matching using a pair with no demand is illegal.
        let m3 = Matching::from_pairs(3, [(2, 2)]);
        assert!(!m3.is_legal(&d));
    }

    #[test]
    fn empty_matching_maximal_iff_no_demand() {
        let d = DemandMatrix::new(2);
        assert!(Matching::empty(2).is_maximal(&d));
        let mut d2 = DemandMatrix::new(2);
        d2.add(1, 1, 1);
        assert!(!Matching::empty(2).is_maximal(&d2));
    }
}
