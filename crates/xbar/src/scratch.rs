//! Reusable scheduler working memory.
//!
//! Every scheduler needs a little per-slot working state — PIM and iSLIP a
//! grant mask per input, the greedy matcher a visit order. Allocating those
//! inside `schedule` puts a heap allocation on the per-cell-slot hot path;
//! threading a [`Scratch`] through [`crate::CrossbarScheduler::schedule_into`]
//! instead lets a simulation run millions of slots with zero per-slot
//! allocation.

/// Reusable working buffers for crossbar schedulers.
///
/// A `Scratch` is sized lazily on first use and grows to the largest switch
/// it has served; one instance can be shared across schedulers and switch
/// sizes. Contents are unspecified between calls — schedulers must
/// re-initialise the prefix they use.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Port-set words, `words` per port (grant masks, candidate sets, ...).
    /// Single-word switches use exactly one word per port — the fast path.
    pub(crate) masks: Vec<u64>,
    /// One index per port (visit orders, permutations, ...).
    pub(crate) order: Vec<usize>,
    /// Three word-wide temporaries for the multi-word scheduler paths
    /// (free-input / free-output / intersection sets).
    pub(crate) wa: Vec<u64>,
    pub(crate) wb: Vec<u64>,
    pub(crate) wc: Vec<u64>,
}

impl Scratch {
    /// An empty scratch; buffers are allocated on first use.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Grows the buffers to serve an `n`-port switch whose port sets span
    /// `words` words. Never shrinks, so a scratch bounced between switch
    /// sizes settles at the largest.
    pub(crate) fn ensure(&mut self, n: usize, words: usize) {
        if self.masks.len() < n * words {
            self.masks.resize(n * words, 0);
        }
        if self.order.len() < n {
            self.order.resize(n, 0);
        }
        if self.wa.len() < words {
            self.wa.resize(words, 0);
            self.wb.resize(words, 0);
            self.wc.resize(words, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_and_never_shrinks() {
        let mut s = Scratch::new();
        assert!(s.masks.is_empty());
        s.ensure(8, 1);
        assert_eq!(s.masks.len(), 8);
        assert_eq!(s.order.len(), 8);
        s.ensure(4, 1);
        assert_eq!(s.masks.len(), 8, "ensure never shrinks");
        s.ensure(16, 1);
        assert_eq!(s.order.len(), 16);
        s.ensure(100, 2);
        assert_eq!(s.masks.len(), 200, "wide switches get words per port");
        assert_eq!(s.wa.len(), 2);
        assert_eq!(s.wb.len(), 2);
        assert_eq!(s.wc.len(), 2);
    }
}
