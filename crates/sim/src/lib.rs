//! # an2-sim — deterministic discrete-event simulation kernel
//!
//! The AN2 paper describes a local area network whose switches cooperate as a
//! distributed system: they exchange asynchronous messages, race against each
//! other during reconfiguration, and schedule hardware on a common cell-slot
//! clock. This crate provides the substrate on which the rest of the
//! reproduction models that behaviour:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time.
//! * [`SimRng`] — a seedable, splittable pseudo-random generator so that every
//!   experiment is exactly reproducible from a single seed.
//! * [`World`] / [`Actor`] — an actor-style discrete-event engine. Each
//!   switch, line card, host, or protocol module is an actor with a mailbox;
//!   messages are delivered at programmable virtual-time delays, modelling
//!   link and processing latency.
//! * [`metrics`] — counters, histograms and online statistics used by every
//!   experiment harness.
//!
//! The kernel is intentionally single-threaded: determinism is what lets the
//! test-suite assert exact latencies (e.g. the paper's "2 microseconds through
//! an uncontended switch") and lets property tests shrink failing seeds.
//!
//! ## Example
//!
//! ```
//! use an2_sim::{World, Actor, Context, SimDuration};
//!
//! struct Ping { peer: an2_sim::ActorId, remaining: u32 }
//!
//! impl Actor<&'static str> for Ping {
//!     fn on_message(&mut self, ctx: &mut Context<'_, &'static str>, msg: &'static str) {
//!         if self.remaining > 0 {
//!             self.remaining -= 1;
//!             ctx.send_after(SimDuration::from_micros(1), self.peer, msg);
//!         }
//!     }
//! }
//!
//! let mut world = World::new(42);
//! let a = world.add_actor(Ping { peer: an2_sim::ActorId(1), remaining: 3 });
//! let b = world.add_actor(Ping { peer: a, remaining: 3 });
//! world.send_now(b, "ping");
//! world.run();
//! assert_eq!(world.now().as_micros(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod metrics;
mod rng;
mod time;

pub use engine::{Actor, ActorId, Context, EngineProbe, StopReason, World};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
