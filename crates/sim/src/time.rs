//! Virtual time for the simulation.
//!
//! All of AN2's quantitative claims are latency claims — 2 µs cut-through,
//! <200 ms reconfiguration, `p * (2f + l)` guaranteed-traffic delay — so the
//! kernel keeps time at nanosecond resolution in a `u64`, which covers about
//! 584 years of simulated time: far more than any experiment needs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant of virtual time, measured in nanoseconds since the start of the
/// simulation.
///
/// `SimTime` is totally ordered and cheap to copy. Construct instants by
/// adding a [`SimDuration`] to [`SimTime::ZERO`] or to another instant.
///
/// ```
/// use an2_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_micros(2);
/// assert_eq!(t.as_nanos(), 2_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from a raw nanosecond count.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the start of the simulation.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since the start of the simulation.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since the start of the simulation.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the start of the simulation, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; elapsed time in a
    /// monotonically-ordered simulation can never be negative, so this
    /// indicates a bug in the caller.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is in the future"),
        )
    }

    /// `duration_since` that saturates to zero instead of panicking.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

/// A span of virtual time, in nanoseconds.
///
/// ```
/// use an2_sim::SimDuration;
/// let slot = SimDuration::from_nanos(680); // one ATM cell slot at 622 Mb/s
/// assert_eq!((slot * 1024).as_micros(), 696); // ~0.7 ms frame
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(rhs.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the duration by a float factor, rounding to the nearest
    /// nanosecond. Useful for jittering timers.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == 0 {
            write!(f, "0ns")
        } else if ns.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", ns / 1_000_000_000)
        } else if ns.is_multiple_of(1_000_000) {
            write!(f, "{}ms", ns / 1_000_000)
        } else if ns.is_multiple_of(1_000) {
            write!(f, "{}us", ns / 1_000)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<SimDuration> for u64 {
    type Output = SimDuration;
    fn mul(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self * rhs.0)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    /// How many times `rhs` fits in `self` (integer division).
    type Output = u64;
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(3).as_millis(), 3_000);
        assert_eq!(SimTime::from_nanos(1234).as_nanos(), 1234);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_micros(5);
        let t2 = t1 + SimDuration::from_micros(7);
        assert_eq!(t2 - t0, SimDuration::from_micros(12));
        assert_eq!(t2.duration_since(t1), SimDuration::from_micros(7));
        assert_eq!(t0.saturating_duration_since(t2), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_future() {
        let t1 = SimTime::from_nanos(10);
        let t2 = SimTime::from_nanos(20);
        let _ = t1.duration_since(t2);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_nanos(100);
        let b = SimDuration::from_nanos(40);
        assert_eq!(a + b, SimDuration::from_nanos(140));
        assert_eq!(a - b, SimDuration::from_nanos(60));
        assert_eq!(a * 3, SimDuration::from_nanos(300));
        assert_eq!(3 * a, SimDuration::from_nanos(300));
        assert_eq!(a / 4, SimDuration::from_nanos(25));
        assert_eq!(a / b, 2);
        assert_eq!(a.checked_sub(b), Some(SimDuration::from_nanos(60)));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(1000);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_nanos(1500));
        assert_eq!(d.mul_f64(0.0004), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_coarsest_unit() {
        assert_eq!(SimDuration::ZERO.to_string(), "0ns");
        assert_eq!(SimDuration::from_nanos(680).to_string(), "680ns");
        assert_eq!(SimDuration::from_micros(2).to_string(), "2us");
        assert_eq!(SimDuration::from_millis(200).to_string(), "200ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3s");
        assert_eq!(SimTime::from_nanos(5_000).to_string(), "5us");
    }

    #[test]
    fn float_conversions() {
        assert!((SimDuration::from_millis(500).as_secs_f64() - 0.5).abs() < 1e-12);
        assert!((SimTime::from_nanos(1_500_000_000).as_secs_f64() - 1.5).abs() < 1e-12);
    }
}
