//! Measurement utilities shared by every experiment in the reproduction:
//! counters, sample histograms with percentiles, and online mean/variance.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A monotonically increasing event counter.
///
/// ```
/// use an2_sim::metrics::Counter;
/// let mut sent = Counter::new();
/// sent.add(3);
/// sent.incr();
/// assert_eq!(sent.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// HDR-style log-linear buckets: values below `1 << sub_bits` land in their
/// own bucket (exact); above that, each power-of-two range is split into
/// `1 << sub_bits` equal sub-buckets, bounding the relative quantization
/// error at `2^-sub_bits`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Buckets {
    sub_bits: u32,
    /// Bucket occupancy, grown on demand (index via [`Buckets::index_of`]).
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Buckets {
    fn new(sub_bits: u32) -> Self {
        assert!(
            (1..=16).contains(&sub_bits),
            "sub_bits must be in 1..=16 (got {sub_bits})"
        );
        Buckets {
            sub_bits,
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket a value falls in. Total buckets are bounded by
    /// `(65 - sub_bits) << sub_bits` (≈ 2 k at the default resolution),
    /// regardless of how many samples are recorded.
    fn index_of(&self, v: u64) -> usize {
        let sub = 1u64 << self.sub_bits;
        if v < sub {
            return v as usize;
        }
        let exp = 63 - v.leading_zeros() as u64; // floor(log2 v) >= sub_bits
        let group = exp - self.sub_bits as u64 + 1;
        let offset = (v >> (exp - self.sub_bits as u64)) - sub;
        (group * sub + offset) as usize
    }

    /// The smallest value that maps to bucket `i` (the representative
    /// reported by percentile queries; never above any sample in `i`).
    fn low_edge(&self, i: usize) -> u64 {
        let sub = 1usize << self.sub_bits;
        if i < sub {
            return i as u64;
        }
        let group = (i / sub) as u64; // >= 1
        let offset = (i % sub) as u64;
        (sub as u64 + offset) << (group - 1)
    }

    fn record(&mut self, v: u64) {
        let i = self.index_of(v);
        if i >= self.counts.len() {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

/// A latency/size histogram with two storage modes.
///
/// The default ([`Histogram::new`]) records every sample in a `Vec`,
/// supporting exact means and percentiles — simulation scales in this
/// repository mostly stay well under a few hundred million samples, so
/// exact recording avoids bucket-resolution artifacts in latency tails.
///
/// [`Histogram::bucketed`] switches to HDR-style log-linear buckets whose
/// memory is bounded by the value range, not the sample count — the right
/// mode for million-cell soaks and always-on tracing registries. Percentiles
/// then carry a bounded relative quantization error of `2^-sub_bits`
/// (reported values are bucket lower edges, so they never exceed the true
/// quantile's bucket).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    repr: Repr,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Repr {
    Exact { samples: Vec<u64>, sorted: bool },
    Bucketed(Buckets),
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty exact-mode histogram (every sample kept).
    pub fn new() -> Self {
        Histogram {
            repr: Repr::Exact {
                samples: Vec::new(),
                sorted: true,
            },
        }
    }

    /// An empty bucketed histogram with `1 << sub_bits` sub-buckets per
    /// power of two (relative error ≤ `2^-sub_bits`). Memory is bounded by
    /// the value *range* instead of the sample count.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= sub_bits <= 16`.
    pub fn bucketed(sub_bits: u32) -> Self {
        Histogram {
            repr: Repr::Bucketed(Buckets::new(sub_bits)),
        }
    }

    /// `true` when this histogram stores buckets rather than raw samples.
    pub fn is_bucketed(&self) -> bool {
        matches!(self.repr, Repr::Bucketed(_))
    }

    /// Records a sample.
    pub fn record(&mut self, value: u64) {
        match &mut self.repr {
            Repr::Exact { samples, sorted } => {
                samples.push(value);
                *sorted = false;
            }
            Repr::Bucketed(b) => b.record(value),
        }
    }

    /// Records a duration sample in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        match &self.repr {
            Repr::Exact { samples, .. } => samples.len(),
            Repr::Bucketed(b) => b.count as usize,
        }
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Arithmetic mean, or `None` when empty. Exact in both modes (the
    /// bucketed mode keeps a running sum of the raw values).
    pub fn mean(&self) -> Option<f64> {
        match &self.repr {
            Repr::Exact { samples, .. } => {
                if samples.is_empty() {
                    None
                } else {
                    Some(samples.iter().map(|&s| s as f64).sum::<f64>() / samples.len() as f64)
                }
            }
            Repr::Bucketed(b) => {
                if b.count == 0 {
                    None
                } else {
                    Some(b.sum as f64 / b.count as f64)
                }
            }
        }
    }

    /// Largest sample (exact in both modes).
    pub fn max(&self) -> Option<u64> {
        match &self.repr {
            Repr::Exact { samples, .. } => samples.iter().copied().max(),
            Repr::Bucketed(b) => (b.count > 0).then_some(b.max),
        }
    }

    /// Smallest sample (exact in both modes).
    pub fn min(&self) -> Option<u64> {
        match &self.repr {
            Repr::Exact { samples, .. } => samples.iter().copied().min(),
            Repr::Bucketed(b) => (b.count > 0).then_some(b.min),
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) by the nearest-rank method, or `None`
    /// when empty. In bucketed mode the result is the lower edge of the
    /// rank's bucket (relative error ≤ `2^-sub_bits`), clamped to the
    /// recorded min/max.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&mut self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "percentile out of range");
        match &mut self.repr {
            Repr::Exact { samples, sorted } => {
                if !*sorted {
                    samples.sort_unstable();
                    *sorted = true;
                }
                if samples.is_empty() {
                    return None;
                }
                let rank = ((q * samples.len() as f64).ceil() as usize).max(1) - 1;
                Some(samples[rank.min(samples.len() - 1)])
            }
            Repr::Bucketed(b) => {
                if b.count == 0 {
                    return None;
                }
                let rank = ((q * b.count as f64).ceil() as u64).max(1);
                let mut seen = 0u64;
                for (i, &n) in b.counts.iter().enumerate() {
                    seen += n;
                    if seen >= rank {
                        return Some(b.low_edge(i).clamp(b.min, b.max));
                    }
                }
                Some(b.max)
            }
        }
    }

    /// The fraction of samples `<= threshold`. In bucketed mode a sample
    /// counts when its bucket's lower edge is `<= threshold` (the boundary
    /// bucket is counted whole, consistent with [`Histogram::percentile`]'s
    /// lower-edge convention).
    pub fn fraction_at_most(&self, threshold: u64) -> f64 {
        match &self.repr {
            Repr::Exact { samples, .. } => {
                if samples.is_empty() {
                    return 0.0;
                }
                let hits = samples.iter().filter(|&&s| s <= threshold).count();
                hits as f64 / samples.len() as f64
            }
            Repr::Bucketed(b) => {
                if b.count == 0 {
                    return 0.0;
                }
                let hits: u64 = b
                    .counts
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| b.low_edge(i) <= threshold)
                    .map(|(_, &n)| n)
                    .sum();
                hits as f64 / b.count as f64
            }
        }
    }

    /// Read-only view of the raw samples (unsorted order not guaranteed).
    /// Bucketed histograms do not retain raw samples and return an empty
    /// slice; gate on [`Histogram::is_bucketed`] where it matters.
    pub fn samples(&self) -> &[u64] {
        match &self.repr {
            Repr::Exact { samples, .. } => samples,
            Repr::Bucketed(_) => &[],
        }
    }

    /// Merges another histogram into this one. Exact-into-exact keeps every
    /// sample; same-resolution bucketed pairs add bucket counts (lossless
    /// relative to their shared quantization); any other combination
    /// re-records the other side's samples or bucket representatives.
    pub fn merge(&mut self, other: &Histogram) {
        match (&mut self.repr, &other.repr) {
            (Repr::Exact { samples, sorted }, Repr::Exact { samples: o, .. }) => {
                samples.extend_from_slice(o);
                *sorted = false;
            }
            (Repr::Bucketed(a), Repr::Bucketed(b)) if a.sub_bits == b.sub_bits => {
                if b.counts.len() > a.counts.len() {
                    a.counts.resize(b.counts.len(), 0);
                }
                for (i, &n) in b.counts.iter().enumerate() {
                    a.counts[i] += n;
                }
                a.count += b.count;
                a.sum += b.sum;
                a.min = a.min.min(b.min);
                a.max = a.max.max(b.max);
            }
            (_, Repr::Exact { samples: o, .. }) => {
                for &v in o {
                    self.record(v);
                }
            }
            (_, Repr::Bucketed(b)) => {
                // Cross-resolution: replay each bucket's lower edge, with
                // one sample pinned to each recorded extreme so min/max
                // stay exact.
                let first = b.counts.iter().position(|&n| n > 0);
                let last = b.counts.iter().rposition(|&n| n > 0);
                for (i, &n) in b.counts.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    let mut remaining = n;
                    if Some(i) == first {
                        self.record(b.min);
                        remaining -= 1;
                    }
                    if Some(i) == last && remaining > 0 {
                        self.record(b.max);
                        remaining -= 1;
                    }
                    let v = b.low_edge(i).clamp(b.min, b.max);
                    for _ in 0..remaining {
                        self.record(v);
                    }
                }
            }
        }
    }
    /// The distribution of samples recorded since `baseline` was cloned
    /// off this histogram — `self` minus `baseline`. This is what turns a
    /// cumulative registry histogram into a *per-interval* one: snapshot a
    /// clone every scrape and diff against the previous clone.
    ///
    /// Same-resolution bucketed pairs subtract bucket-wise (exact relative
    /// to their shared quantization; the delta's min/max are reported as
    /// occupied-bucket edges clamped into `self`'s recorded range). Exact
    /// or mixed-mode pairs fall back to a multiset difference of the raw
    /// samples. `baseline` must be a prefix of `self`'s history; a
    /// non-ancestor baseline yields a saturating (never panicking) result.
    pub fn delta_since(&self, baseline: &Histogram) -> Histogram {
        match (&self.repr, &baseline.repr) {
            (Repr::Bucketed(cur), Repr::Bucketed(base)) if cur.sub_bits == base.sub_bits => {
                let mut d = Buckets::new(cur.sub_bits);
                d.counts = cur
                    .counts
                    .iter()
                    .enumerate()
                    .map(|(i, &n)| n.saturating_sub(base.counts.get(i).copied().unwrap_or(0)))
                    .collect();
                d.count = cur.count.saturating_sub(base.count);
                d.sum = cur.sum.saturating_sub(base.sum);
                if d.count > 0 {
                    let first = d.counts.iter().position(|&n| n > 0).unwrap_or(0);
                    let last = d.counts.iter().rposition(|&n| n > 0).unwrap_or(0);
                    let upper = d.low_edge(last + 1).saturating_sub(1);
                    d.max = upper.min(cur.max);
                    d.min = d.low_edge(first).max(cur.min).min(d.max);
                }
                Histogram {
                    repr: Repr::Bucketed(d),
                }
            }
            _ => {
                let mut seen = std::collections::BTreeMap::new();
                for &v in baseline.samples() {
                    *seen.entry(v).or_insert(0u64) += 1;
                }
                let mut out = match &self.repr {
                    Repr::Exact { .. } => Histogram::new(),
                    Repr::Bucketed(b) => Histogram::bucketed(b.sub_bits),
                };
                for &v in self.samples() {
                    match seen.get_mut(&v) {
                        Some(n) if *n > 0 => *n -= 1,
                        _ => out.record(v),
                    }
                }
                out
            }
        }
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

impl Extend<u64> for Histogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

/// Online mean / variance / extremes over `f64` observations
/// (Welford's algorithm), for when storing every sample is wasteful.
///
/// ```
/// use an2_sim::metrics::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_stddev(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty statistics.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records an observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn population_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn population_stddev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// One named interval on the simulation timeline — a control-plane phase
/// (detect, converge, install, …) with explicit start/end stamps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSpan {
    /// Phase name (e.g. `"converge"`).
    pub name: String,
    /// When the phase began.
    pub started: crate::time::SimTime,
    /// When the phase ended; `None` while still open.
    pub ended: Option<crate::time::SimTime>,
}

impl PhaseSpan {
    /// The span's length, if it has ended.
    pub fn duration(&self) -> Option<SimDuration> {
        self.ended.map(|e| e.duration_since(self.started))
    }
}

/// Records named, possibly repeating phases against simulation time — the
/// per-phase instrumentation the embedded control plane feeds (failure
/// detection → protocol convergence → route installation) and experiments
/// read back as latency spans.
///
/// ```
/// use an2_sim::metrics::PhaseRecorder;
/// use an2_sim::{SimDuration, SimTime};
/// let mut r = PhaseRecorder::new();
/// let t0 = SimTime::ZERO;
/// r.begin("converge", t0);
/// r.end("converge", t0 + SimDuration::from_micros(5));
/// assert_eq!(r.spans().len(), 1);
/// assert_eq!(r.total("converge"), SimDuration::from_micros(5));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PhaseRecorder {
    spans: Vec<PhaseSpan>,
}

impl PhaseRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        PhaseRecorder { spans: Vec::new() }
    }

    /// Opens a new span named `name` at `now`. Phases may repeat; each
    /// `begin` appends a fresh span.
    pub fn begin(&mut self, name: &str, now: crate::time::SimTime) {
        self.spans.push(PhaseSpan {
            name: name.to_string(),
            started: now,
            ended: None,
        });
    }

    /// Closes the most recent open span named `name` at `now`. Unmatched
    /// ends are ignored (a phase aborted by a newer epoch simply stays
    /// open-ended).
    pub fn end(&mut self, name: &str, now: crate::time::SimTime) {
        if let Some(s) = self
            .spans
            .iter_mut()
            .rev()
            .find(|s| s.ended.is_none() && s.name == name)
        {
            s.ended = Some(now);
        }
    }

    /// Every recorded span, in begin order.
    pub fn spans(&self) -> &[PhaseSpan] {
        &self.spans
    }

    /// Closed spans named `name`, in begin order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a PhaseSpan> + 'a {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Sum of the durations of every *closed* span named `name`.
    pub fn total(&self, name: &str) -> SimDuration {
        self.spans_named(name)
            .filter_map(PhaseSpan::duration)
            .fold(SimDuration::ZERO, |acc, d| acc + d)
    }

    /// The last closed span named `name`, if any.
    pub fn last_closed(&self, name: &str) -> Option<&PhaseSpan> {
        self.spans
            .iter()
            .rfind(|s| s.name == name && s.ended.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn delta_since_recovers_the_interval_distribution() {
        // Bucketed: the delta of a snapshot pair sees only the new samples.
        let mut h = Histogram::bucketed(5);
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let base = h.clone();
        for v in [1000u64, 2000, 3000, 4000] {
            h.record(v);
        }
        let d = h.delta_since(&base);
        assert_eq!(d.count(), 4);
        let mut d2 = d.clone();
        let p50 = d2.percentile(0.5).unwrap();
        assert!((1900..=2000).contains(&p50), "p50 of delta was {p50}");
        let dmin = d.min().unwrap();
        assert!(dmin >= 968, "delta min {dmin} leaked baseline samples");
        // Empty delta: same snapshot twice.
        assert_eq!(h.delta_since(&h.clone()).count(), 0);

        // Exact mode falls back to a multiset difference.
        let mut e: Histogram = [5u64, 5, 7].into_iter().collect();
        let ebase = e.clone();
        e.record(9);
        e.record(5);
        let ed = e.delta_since(&ebase);
        let mut got: Vec<u64> = ed.samples().to_vec();
        got.sort_unstable();
        assert_eq!(got, vec![5, 9]);
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h: Histogram = (1..=100).collect();
        assert_eq!(h.count(), 100);
        assert_eq!(h.mean(), Some(50.5));
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert_eq!(h.percentile(0.5), Some(50));
        assert_eq!(h.percentile(0.99), Some(99));
        assert_eq!(h.percentile(1.0), Some(100));
        assert_eq!(h.percentile(0.0), Some(1));
    }

    #[test]
    fn histogram_empty() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.fraction_at_most(10), 0.0);
    }

    #[test]
    fn histogram_fraction_at_most() {
        let h: Histogram = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10].into_iter().collect();
        assert_eq!(h.fraction_at_most(4), 0.4);
        assert_eq!(h.fraction_at_most(0), 0.0);
        assert_eq!(h.fraction_at_most(10), 1.0);
    }

    #[test]
    fn histogram_merge_and_duration() {
        let mut a = Histogram::new();
        a.record_duration(SimDuration::from_micros(2));
        let b: Histogram = vec![1000].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(1000));
        assert_eq!(a.max(), Some(2000));
    }

    #[test]
    fn histogram_percentile_after_interleaved_records() {
        let mut h = Histogram::new();
        h.record(5);
        assert_eq!(h.percentile(0.5), Some(5));
        h.record(1); // invalidates sort
        assert_eq!(h.percentile(0.0), Some(1));
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_bad_q() {
        let mut h: Histogram = vec![1].into_iter().collect();
        let _ = h.percentile(1.5);
    }

    #[test]
    fn histogram_extend() {
        let mut h = Histogram::new();
        h.extend([3u64, 1, 2]);
        assert_eq!(h.count(), 3);
        assert_eq!(h.percentile(1.0), Some(3));
    }

    #[test]
    fn bucketed_tracks_exact_extremes_and_mean() {
        let mut h = Histogram::bucketed(5);
        assert!(h.is_bucketed());
        for v in 1..=100_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100_000);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100_000));
        assert_eq!(h.mean(), Some(50_000.5));
        assert!(h.samples().is_empty());
    }

    #[test]
    fn bucketed_percentile_within_relative_error() {
        let sub_bits = 5;
        let mut exact = Histogram::new();
        let mut bucketed = Histogram::bucketed(sub_bits);
        for v in (0..200_000u64).map(|i| i * 7 + 3) {
            exact.record(v);
            bucketed.record(v);
        }
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let e = exact.percentile(q).unwrap() as f64;
            let b = bucketed.percentile(q).unwrap() as f64;
            // Lower-edge convention: the bucketed answer sits at most one
            // bucket width (2^-sub_bits relative) below the exact one.
            assert!(b <= e, "q={q}: bucketed {b} above exact {e}");
            assert!(
                e - b <= e / f64::from(1u32 << sub_bits) + 1.0,
                "q={q}: bucketed {b} too far below exact {e}"
            );
        }
    }

    #[test]
    fn bucketed_memory_is_bounded_by_value_range() {
        let mut h = Histogram::bucketed(5);
        for i in 0..1_000_000u64 {
            h.record(i % 4096);
        }
        // 4096 = 2^12: at most (12 - 5 + 1) * 32 + 32 buckets ever exist.
        match &h.repr {
            Repr::Bucketed(b) => assert!(b.counts.len() <= 320, "{}", b.counts.len()),
            Repr::Exact { .. } => panic!("expected bucketed repr"),
        }
        assert_eq!(h.count(), 1_000_000);
    }

    #[test]
    fn bucketed_small_values_stay_exact() {
        let mut h = Histogram::bucketed(6);
        for v in [0u64, 1, 2, 3, 60, 63] {
            h.record(v);
        }
        // Everything below 2^6 has its own bucket: percentiles are exact.
        assert_eq!(h.percentile(0.0), Some(0));
        assert_eq!(h.percentile(0.5), Some(2));
        assert_eq!(h.percentile(1.0), Some(63));
        assert_eq!(h.fraction_at_most(3), 4.0 / 6.0);
    }

    #[test]
    fn bucketed_merge_same_resolution_adds_counts() {
        let mut a = Histogram::bucketed(5);
        let mut b = Histogram::bucketed(5);
        a.record(10);
        a.record(1_000);
        b.record(500_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(500_000));
    }

    #[test]
    fn merge_across_modes_preserves_count_and_extremes() {
        let mut exact = Histogram::new();
        exact.record(7);
        let mut bucketed = Histogram::bucketed(5);
        bucketed.record(3);
        bucketed.record(90_000);
        exact.merge(&bucketed);
        assert_eq!(exact.count(), 3);
        assert_eq!(exact.min(), Some(3));
        assert_eq!(exact.max(), Some(90_000));

        let mut bucketed2 = Histogram::bucketed(4);
        bucketed2.merge(&exact);
        assert_eq!(bucketed2.count(), 3);
        assert_eq!(bucketed2.min(), Some(3));
        assert_eq!(bucketed2.max(), Some(90_000));
    }

    #[test]
    fn online_stats_welford() {
        let mut s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.population_stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_single_sample_variance_zero() {
        let mut s = OnlineStats::new();
        s.record(42.0);
        assert_eq!(s.population_variance(), 0.0);
    }
}
