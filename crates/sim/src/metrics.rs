//! Measurement utilities shared by every experiment in the reproduction:
//! counters, sample histograms with percentiles, and online mean/variance.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A monotonically increasing event counter.
///
/// ```
/// use an2_sim::metrics::Counter;
/// let mut sent = Counter::new();
/// sent.add(3);
/// sent.incr();
/// assert_eq!(sent.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A histogram that records every sample, supporting exact means and
/// percentiles. Simulation scales in this repository stay well under a few
/// hundred million samples, so exact recording is affordable and avoids
/// bucket-resolution artifacts in latency tails.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Records a duration sample in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().map(|&s| s as f64).sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Largest sample.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) by the nearest-rank method, or `None`
    /// when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&mut self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "percentile out of range");
        self.ensure_sorted();
        if self.samples.is_empty() {
            return None;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).max(1) - 1;
        Some(self.samples[rank.min(self.samples.len() - 1)])
    }

    /// The fraction of samples `<= threshold`.
    pub fn fraction_at_most(&self, threshold: u64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let hits = self.samples.iter().filter(|&&s| s <= threshold).count();
        hits as f64 / self.samples.len() as f64
    }

    /// Read-only view of the raw samples (unsorted order not guaranteed).
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

impl Extend<u64> for Histogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

/// Online mean / variance / extremes over `f64` observations
/// (Welford's algorithm), for when storing every sample is wasteful.
///
/// ```
/// use an2_sim::metrics::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_stddev(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty statistics.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records an observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn population_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn population_stddev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// One named interval on the simulation timeline — a control-plane phase
/// (detect, converge, install, …) with explicit start/end stamps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSpan {
    /// Phase name (e.g. `"converge"`).
    pub name: String,
    /// When the phase began.
    pub started: crate::time::SimTime,
    /// When the phase ended; `None` while still open.
    pub ended: Option<crate::time::SimTime>,
}

impl PhaseSpan {
    /// The span's length, if it has ended.
    pub fn duration(&self) -> Option<SimDuration> {
        self.ended.map(|e| e.duration_since(self.started))
    }
}

/// Records named, possibly repeating phases against simulation time — the
/// per-phase instrumentation the embedded control plane feeds (failure
/// detection → protocol convergence → route installation) and experiments
/// read back as latency spans.
///
/// ```
/// use an2_sim::metrics::PhaseRecorder;
/// use an2_sim::{SimDuration, SimTime};
/// let mut r = PhaseRecorder::new();
/// let t0 = SimTime::ZERO;
/// r.begin("converge", t0);
/// r.end("converge", t0 + SimDuration::from_micros(5));
/// assert_eq!(r.spans().len(), 1);
/// assert_eq!(r.total("converge"), SimDuration::from_micros(5));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PhaseRecorder {
    spans: Vec<PhaseSpan>,
}

impl PhaseRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        PhaseRecorder { spans: Vec::new() }
    }

    /// Opens a new span named `name` at `now`. Phases may repeat; each
    /// `begin` appends a fresh span.
    pub fn begin(&mut self, name: &str, now: crate::time::SimTime) {
        self.spans.push(PhaseSpan {
            name: name.to_string(),
            started: now,
            ended: None,
        });
    }

    /// Closes the most recent open span named `name` at `now`. Unmatched
    /// ends are ignored (a phase aborted by a newer epoch simply stays
    /// open-ended).
    pub fn end(&mut self, name: &str, now: crate::time::SimTime) {
        if let Some(s) = self
            .spans
            .iter_mut()
            .rev()
            .find(|s| s.ended.is_none() && s.name == name)
        {
            s.ended = Some(now);
        }
    }

    /// Every recorded span, in begin order.
    pub fn spans(&self) -> &[PhaseSpan] {
        &self.spans
    }

    /// Closed spans named `name`, in begin order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a PhaseSpan> + 'a {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Sum of the durations of every *closed* span named `name`.
    pub fn total(&self, name: &str) -> SimDuration {
        self.spans_named(name)
            .filter_map(PhaseSpan::duration)
            .fold(SimDuration::ZERO, |acc, d| acc + d)
    }

    /// The last closed span named `name`, if any.
    pub fn last_closed(&self, name: &str) -> Option<&PhaseSpan> {
        self.spans
            .iter()
            .rfind(|s| s.name == name && s.ended.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h: Histogram = (1..=100).collect();
        assert_eq!(h.count(), 100);
        assert_eq!(h.mean(), Some(50.5));
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert_eq!(h.percentile(0.5), Some(50));
        assert_eq!(h.percentile(0.99), Some(99));
        assert_eq!(h.percentile(1.0), Some(100));
        assert_eq!(h.percentile(0.0), Some(1));
    }

    #[test]
    fn histogram_empty() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.fraction_at_most(10), 0.0);
    }

    #[test]
    fn histogram_fraction_at_most() {
        let h: Histogram = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10].into_iter().collect();
        assert_eq!(h.fraction_at_most(4), 0.4);
        assert_eq!(h.fraction_at_most(0), 0.0);
        assert_eq!(h.fraction_at_most(10), 1.0);
    }

    #[test]
    fn histogram_merge_and_duration() {
        let mut a = Histogram::new();
        a.record_duration(SimDuration::from_micros(2));
        let b: Histogram = vec![1000].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(1000));
        assert_eq!(a.max(), Some(2000));
    }

    #[test]
    fn histogram_percentile_after_interleaved_records() {
        let mut h = Histogram::new();
        h.record(5);
        assert_eq!(h.percentile(0.5), Some(5));
        h.record(1); // invalidates sort
        assert_eq!(h.percentile(0.0), Some(1));
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_bad_q() {
        let mut h: Histogram = vec![1].into_iter().collect();
        let _ = h.percentile(1.5);
    }

    #[test]
    fn histogram_extend() {
        let mut h = Histogram::new();
        h.extend([3u64, 1, 2]);
        assert_eq!(h.count(), 3);
        assert_eq!(h.percentile(1.0), Some(3));
    }

    #[test]
    fn online_stats_welford() {
        let mut s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.population_stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_single_sample_variance_zero() {
        let mut s = OnlineStats::new();
        s.record(42.0);
        assert_eq!(s.population_variance(), 0.0);
    }
}
