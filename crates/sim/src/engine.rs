//! The actor-based discrete-event engine.
//!
//! A [`World`] owns a set of actors and a priority queue of timed messages.
//! Running the world repeatedly pops the earliest message and delivers it to
//! its destination actor, which may send further messages at future instants.
//! Ties in delivery time are broken by send order, so a simulation is a pure
//! function of its seed and initial messages.
//!
//! This models AN2 faithfully: switches and line cards are independent nodes
//! that communicate only by messages with non-zero latency, and "parallel"
//! activity is interleaved by virtual time rather than by threads.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Identifies an actor within a [`World`].
///
/// Ids are assigned densely in registration order, which lets higher layers
/// maintain side tables indexed by `ActorId::index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub usize);

impl ActorId {
    /// The dense index of this actor.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// A node in the simulated distributed system.
///
/// Implementations receive messages through [`Actor::on_message`] and react
/// by mutating their own state and sending further messages via the
/// [`Context`]. There is no other channel between actors — exactly the
/// constraint the AN2 switches operate under.
pub trait Actor<M> {
    /// Handles one delivered message.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, msg: M);
}

/// Why [`World::run_until`] / [`World::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No messages remain in flight.
    Quiescent,
    /// The time limit was reached with messages still queued.
    TimeLimit,
    /// An actor called [`Context::stop`].
    Stopped,
}

struct QueuedEvent<M> {
    at: SimTime,
    seq: u64,
    to: ActorId,
    msg: M,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for QueuedEvent<M> {}
impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueuedEvent<M> {
    // Reversed so the BinaryHeap (a max-heap) pops the earliest event; ties
    // broken by send order for determinism.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A bucketed (time-wheel) event queue for dense, clock-driven workloads.
///
/// Events within the wheel's horizon (`slots × slot_width` of virtual time
/// ahead of the cursor) go into per-slot buckets — O(1) insertion instead of
/// the heap's O(log n). Events in the cursor's own slot live in a small
/// binary heap (`near`) that provides exact (time, seq) ordering within the
/// slot; events beyond the horizon wait in an overflow heap and are folded
/// in as the cursor reaches them. Delivery order is identical to the plain
/// heap's: time first, then send order.
struct TimeWheel<M> {
    /// Nanoseconds of virtual time covered by one bucket.
    slot_width: u64,
    /// Ring of future buckets; slot `s` maps to `buckets[s % buckets.len()]`.
    buckets: Vec<Vec<QueuedEvent<M>>>,
    /// Absolute slot index the cursor is parked on.
    cursor_slot: u64,
    /// Events in the cursor's slot (and stragglers sent for instants the
    /// cursor has already passed, which is legal while `now` lags behind).
    near: BinaryHeap<QueuedEvent<M>>,
    /// Events beyond the horizon.
    overflow: BinaryHeap<QueuedEvent<M>>,
    /// Events currently stored in `buckets` (not `near`/`overflow`).
    in_buckets: usize,
}

impl<M> TimeWheel<M> {
    fn new(slot_width: u64, slots: usize) -> Self {
        assert!(slot_width > 0, "time wheel slot width must be positive");
        assert!(slots > 1, "time wheel needs at least two slots");
        TimeWheel {
            slot_width,
            buckets: (0..slots).map(|_| Vec::new()).collect(),
            cursor_slot: 0,
            near: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            in_buckets: 0,
        }
    }

    #[inline]
    fn abs_slot(&self, at: SimTime) -> u64 {
        at.as_nanos() / self.slot_width
    }

    fn len(&self) -> usize {
        self.near.len() + self.overflow.len() + self.in_buckets
    }

    fn push(&mut self, ev: QueuedEvent<M>) {
        let slot = self.abs_slot(ev.at);
        if slot <= self.cursor_slot {
            // The cursor may have skipped ahead over empty slots while `now`
            // lags behind; such sends are still future events for the world.
            self.near.push(ev);
        } else if slot - self.cursor_slot < self.buckets.len() as u64 {
            let idx = (slot % self.buckets.len() as u64) as usize;
            self.buckets[idx].push(ev);
            self.in_buckets += 1;
        } else {
            self.overflow.push(ev);
        }
    }

    /// Advances the cursor until the slot heap holds the earliest pending
    /// event (no-op if it already does or the wheel is empty).
    fn prime(&mut self) {
        while self.near.is_empty() {
            if self.in_buckets == 0 {
                // Nothing within the horizon: jump straight to the overflow's
                // earliest slot, or stop if the wheel is empty.
                let Some(ev) = self.overflow.peek() else {
                    return;
                };
                self.cursor_slot = self.cursor_slot.max(self.abs_slot(ev.at));
            } else {
                self.cursor_slot += 1;
            }
            let idx = (self.cursor_slot % self.buckets.len() as u64) as usize;
            let drained = std::mem::take(&mut self.buckets[idx]);
            self.in_buckets -= drained.len();
            for ev in drained {
                debug_assert_eq!(self.abs_slot(ev.at), self.cursor_slot);
                self.near.push(ev);
            }
            while let Some(ev) = self.overflow.peek() {
                if self.abs_slot(ev.at) > self.cursor_slot {
                    break;
                }
                let ev = self.overflow.pop().expect("just peeked");
                self.near.push(ev);
            }
        }
    }

    fn next_time(&mut self) -> Option<SimTime> {
        self.prime();
        self.near.peek().map(|ev| ev.at)
    }

    fn pop(&mut self) -> Option<QueuedEvent<M>> {
        self.prime();
        self.near.pop()
    }
}

/// The world's pending-event store: a binary heap by default, or a
/// [`TimeWheel`] when constructed via [`World::with_time_wheel`].
enum EventQueue<M> {
    Heap(BinaryHeap<QueuedEvent<M>>),
    Wheel(TimeWheel<M>),
}

impl<M> EventQueue<M> {
    fn len(&self) -> usize {
        match self {
            EventQueue::Heap(h) => h.len(),
            EventQueue::Wheel(w) => w.len(),
        }
    }

    fn push(&mut self, ev: QueuedEvent<M>) {
        match self {
            EventQueue::Heap(h) => h.push(ev),
            EventQueue::Wheel(w) => w.push(ev),
        }
    }

    fn pop(&mut self) -> Option<QueuedEvent<M>> {
        match self {
            EventQueue::Heap(h) => h.pop(),
            EventQueue::Wheel(w) => w.pop(),
        }
    }

    /// Delivery time of the earliest pending event. `&mut` because the wheel
    /// advances its cursor to find it.
    fn next_time(&mut self) -> Option<SimTime> {
        match self {
            EventQueue::Heap(h) => h.peek().map(|ev| ev.at),
            EventQueue::Wheel(w) => w.next_time(),
        }
    }
}

/// A passive observer of engine activity — message sends and deliveries —
/// attached via [`World::attach_probe`]. Probes exist for instrumentation
/// (the `an2-trace` flight recorder bridges through this trait); they see
/// events strictly after the engine has committed them, receive no mutable
/// access to the world, and draw no randomness, so an observed run is
/// byte-identical to an unobserved one.
pub trait EngineProbe {
    /// A message was enqueued for delivery to `to` at virtual time `at`.
    fn on_send(&mut self, at: SimTime, to: ActorId);
    /// A message was delivered to `to` at virtual time `at`.
    fn on_deliver(&mut self, at: SimTime, to: ActorId);
}

/// The capabilities an actor has while handling a message: learn the time,
/// draw random numbers, and send messages.
pub struct Context<'w, M> {
    now: SimTime,
    me: ActorId,
    queue: &'w mut EventQueue<M>,
    seq: &'w mut u64,
    rng: &'w mut SimRng,
    stop: &'w mut bool,
    probe: &'w mut Option<Box<dyn EngineProbe>>,
}

impl<M> Context<'_, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the actor handling this message.
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// The world's random number generator.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Sends `msg` to `to`, to be delivered `delay` from now.
    pub fn send_after(&mut self, delay: SimDuration, to: ActorId, msg: M) {
        let seq = *self.seq;
        *self.seq += 1;
        let at = self.now + delay;
        self.queue.push(QueuedEvent { at, seq, to, msg });
        if let Some(p) = self.probe.as_mut() {
            p.on_send(at, to);
        }
    }

    /// Sends `msg` to this actor itself after `delay` — a timer.
    pub fn schedule(&mut self, delay: SimDuration, msg: M) {
        let me = self.me;
        self.send_after(delay, me, msg);
    }

    /// Requests that the run loop stop after this message completes.
    /// Remaining queued messages are preserved and the world can be resumed.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// A deterministic discrete-event world of actors exchanging timed messages.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
pub struct World<M> {
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    queue: EventQueue<M>,
    now: SimTime,
    seq: u64,
    rng: SimRng,
    delivered: u64,
    stop: bool,
    /// Instrumentation observer (`None` by default; every hook is gated on
    /// presence, mirroring the fabric's fault-layer pattern).
    probe: Option<Box<dyn EngineProbe>>,
}

impl<M> fmt::Debug for World<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("World")
            .field("actors", &self.actors.len())
            .field("queued", &self.queue.len())
            .field("now", &self.now)
            .field("delivered", &self.delivered)
            .finish()
    }
}

impl<M> World<M> {
    /// Creates an empty world whose randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        Self::build(seed, EventQueue::Heap(BinaryHeap::new()))
    }

    /// Like [`World::new`], but pre-reserves space for `actors` actors and
    /// `events` simultaneously-pending messages, so registration and the
    /// early event flurry of a large simulation don't pay reallocation
    /// costs.
    pub fn with_capacity(seed: u64, actors: usize, events: usize) -> Self {
        let mut w = Self::build(seed, EventQueue::Heap(BinaryHeap::with_capacity(events)));
        w.actors.reserve(actors);
        w
    }

    /// Like [`World::new`], but pending events are kept in a bucketed time
    /// wheel instead of a binary heap: `slots` buckets of `slot_width`
    /// virtual time each. Insertion within the wheel's horizon
    /// (`slots × slot_width` ahead) is O(1) versus the heap's O(log n);
    /// events beyond the horizon spill into an overflow heap and cost the
    /// same as before. Delivery order is identical to the default queue —
    /// time, then send order — so results are byte-for-byte the same.
    ///
    /// Choose `slot_width` near the dominant message latency (e.g. the cell
    /// slot time) and `slots` to cover the typical scheduling horizon.
    ///
    /// # Panics
    ///
    /// Panics if `slot_width` is zero or `slots < 2`.
    pub fn with_time_wheel(seed: u64, slot_width: SimDuration, slots: usize) -> Self {
        Self::build(
            seed,
            EventQueue::Wheel(TimeWheel::new(slot_width.as_nanos(), slots)),
        )
    }

    fn build(seed: u64, queue: EventQueue<M>) -> Self {
        World {
            actors: Vec::new(),
            queue,
            now: SimTime::ZERO,
            seq: 0,
            rng: SimRng::new(seed),
            delivered: 0,
            stop: false,
            probe: None,
        }
    }

    /// Attaches an [`EngineProbe`] that observes every send and delivery.
    /// Probes are observational only: attaching one never changes message
    /// order, timing, or the RNG stream.
    pub fn attach_probe(&mut self, probe: Box<dyn EngineProbe>) {
        self.probe = Some(probe);
    }

    /// Detaches and returns the probe, if one is attached.
    pub fn take_probe(&mut self) -> Option<Box<dyn EngineProbe>> {
        self.probe.take()
    }

    /// Registers an actor and returns its id. Ids are dense and sequential.
    pub fn add_actor(&mut self, actor: impl Actor<M> + 'static) -> ActorId {
        self.actors.push(Some(Box::new(actor)));
        ActorId(self.actors.len() - 1)
    }

    /// Registers a boxed actor (useful when the concrete type is erased).
    pub fn add_boxed_actor(&mut self, actor: Box<dyn Actor<M>>) -> ActorId {
        self.actors.push(Some(actor));
        ActorId(self.actors.len() - 1)
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages currently queued for future delivery.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The world's random number generator, e.g. for seeding workloads.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Enqueues `msg` for delivery to `to` at the current instant.
    pub fn send_now(&mut self, to: ActorId, msg: M) {
        self.send_at(self.now, to, msg);
    }

    /// Enqueues `msg` for delivery to `to` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past: virtual time only moves forward.
    pub fn send_at(&mut self, at: SimTime, to: ActorId, msg: M) {
        assert!(at >= self.now, "cannot schedule a message in the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(QueuedEvent { at, seq, to, msg });
        if let Some(p) = self.probe.as_mut() {
            p.on_send(at, to);
        }
    }

    /// Mutable access to an actor, downcast by the caller. Intended for test
    /// inspection and for harnesses that poke state between runs.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or the actor is currently being run
    /// (impossible from outside the world).
    pub fn actor_mut(&mut self, id: ActorId) -> &mut dyn Actor<M> {
        self.actors[id.0]
            .as_deref_mut()
            .expect("actor is currently executing")
    }

    /// Delivers one message if any is queued. Returns `false` when quiescent.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "event from the past");
        self.now = ev.at;
        self.delivered += 1;
        if let Some(p) = self.probe.as_mut() {
            p.on_deliver(ev.at, ev.to);
        }
        // Take the actor out so the context can borrow the queue mutably.
        let mut actor = self.actors[ev.to.0]
            .take()
            .unwrap_or_else(|| panic!("message delivered to running actor {}", ev.to));
        {
            let mut ctx = Context {
                now: self.now,
                me: ev.to,
                queue: &mut self.queue,
                seq: &mut self.seq,
                rng: &mut self.rng,
                stop: &mut self.stop,
                probe: &mut self.probe,
            };
            actor.on_message(&mut ctx, ev.msg);
        }
        self.actors[ev.to.0] = Some(actor);
        true
    }

    /// Runs until no messages remain or an actor stops the world.
    pub fn run(&mut self) -> StopReason {
        self.run_until(SimTime::from_nanos(u64::MAX))
    }

    /// Runs until the queue empties, an actor calls [`Context::stop`], or the
    /// next message would be delivered after `deadline`.
    ///
    /// On [`StopReason::TimeLimit`] the clock is advanced to `deadline` and
    /// pending messages stay queued, so the world can be resumed.
    pub fn run_until(&mut self, deadline: SimTime) -> StopReason {
        self.stop = false;
        loop {
            match self.queue.next_time() {
                None => return StopReason::Quiescent,
                Some(at) if at > deadline => {
                    self.now = deadline;
                    return StopReason::TimeLimit;
                }
                Some(_) => {}
            }
            self.step();
            if self.stop {
                return StopReason::Stopped;
            }
        }
    }

    /// Runs for `span` of virtual time from the current instant.
    pub fn run_for(&mut self, span: SimDuration) -> StopReason {
        self.run_until(self.now + span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Msg {
        Tick,
        Echo(u32),
    }

    struct Counter {
        ticks: u32,
        period: SimDuration,
        limit: u32,
    }

    impl Actor<Msg> for Counter {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, msg: Msg) {
            if let Msg::Tick = msg {
                self.ticks += 1;
                if self.ticks < self.limit {
                    ctx.schedule(self.period, Msg::Tick);
                }
            }
        }
    }

    #[test]
    fn timer_loop_advances_time() {
        let mut w = World::new(1);
        let a = w.add_actor(Counter {
            ticks: 0,
            period: SimDuration::from_micros(10),
            limit: 5,
        });
        w.send_now(a, Msg::Tick);
        assert_eq!(w.run(), StopReason::Quiescent);
        assert_eq!(w.now(), SimTime::from_nanos(40_000));
        assert_eq!(w.delivered(), 5);
    }

    struct Recorder {
        seen: std::rc::Rc<std::cell::RefCell<Vec<(u64, u32)>>>,
    }

    impl Actor<Msg> for Recorder {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, msg: Msg) {
            if let Msg::Echo(v) = msg {
                self.seen.borrow_mut().push((ctx.now().as_nanos(), v));
            }
        }
    }

    #[test]
    fn ties_delivered_in_send_order() {
        let mut w = World::new(1);
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let r = w.add_actor(Recorder { seen: seen.clone() });
        let t = SimTime::from_nanos(100);
        w.send_at(t, r, Msg::Echo(1));
        w.send_at(t, r, Msg::Echo(2));
        w.send_at(t, r, Msg::Echo(3));
        w.run();
        assert_eq!(
            *seen.borrow(),
            vec![(100, 1), (100, 2), (100, 3)],
            "equal-time messages arrive in send order"
        );
        assert_eq!(w.delivered(), 3);
        assert_eq!(w.now(), t);
    }

    #[test]
    fn actor_mut_allows_external_inspection() {
        // actor_mut hands back the trait object between runs; drive a
        // counter and then poke another message at it.
        let mut w = World::new(1);
        let a = w.add_actor(Counter {
            ticks: 0,
            period: SimDuration::from_nanos(5),
            limit: 2,
        });
        w.send_now(a, Msg::Tick);
        w.run();
        let _actor: &mut dyn Actor<Msg> = w.actor_mut(a);
        w.send_now(a, Msg::Tick);
        w.run();
        assert_eq!(w.delivered(), 3);
    }

    struct Stopper;
    impl Actor<Msg> for Stopper {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _msg: Msg) {
            ctx.stop();
        }
    }

    #[test]
    fn stop_preserves_queue() {
        let mut w = World::new(1);
        let s = w.add_actor(Stopper);
        w.send_at(SimTime::from_nanos(10), s, Msg::Tick);
        w.send_at(SimTime::from_nanos(20), s, Msg::Tick);
        assert_eq!(w.run(), StopReason::Stopped);
        assert_eq!(w.pending(), 1);
        assert_eq!(w.run(), StopReason::Stopped);
        assert_eq!(w.run(), StopReason::Quiescent);
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut w = World::new(1);
        let a = w.add_actor(Counter {
            ticks: 0,
            period: SimDuration::from_millis(1),
            limit: 100,
        });
        w.send_now(a, Msg::Tick);
        let r = w.run_until(SimTime::from_nanos(4_500_000));
        assert_eq!(r, StopReason::TimeLimit);
        assert_eq!(w.now(), SimTime::from_nanos(4_500_000));
        assert!(w.pending() > 0);
        // Resumable.
        assert_eq!(w.run(), StopReason::Quiescent);
        assert_eq!(w.delivered(), 100);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn send_in_past_panics() {
        let mut w: World<Msg> = World::new(1);
        let a = w.add_actor(Stopper);
        w.send_at(SimTime::from_nanos(50), a, Msg::Tick);
        w.run();
        w.send_at(SimTime::from_nanos(10), a, Msg::Tick);
    }

    struct PingPong {
        peer: Option<ActorId>,
        hops: u32,
    }
    impl Actor<Msg> for PingPong {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _msg: Msg) {
            self.hops += 1;
            if self.hops <= 4 {
                if let Some(p) = self.peer {
                    ctx.send_after(SimDuration::from_nanos(7), p, Msg::Tick);
                }
            }
        }
    }

    #[test]
    fn two_actor_exchange() {
        let mut w = World::new(1);
        let a = w.add_actor(PingPong {
            peer: None,
            hops: 0,
        });
        let b = w.add_actor(PingPong {
            peer: Some(a),
            hops: 0,
        });
        // Wire a's peer after creation via a second world: simpler to resend.
        // a has no peer, so b->a->(stops). Exercise with b first.
        w.send_now(b, Msg::Tick);
        w.run();
        assert_eq!(w.delivered(), 2); // b, then a (a has no peer to reply to)
        assert_eq!(w.now(), SimTime::from_nanos(7));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn trace(seed: u64) -> (u64, u64) {
            let mut w = World::new(seed);
            let a = w.add_actor(Counter {
                ticks: 0,
                period: SimDuration::from_nanos(13),
                limit: 50,
            });
            w.send_now(a, Msg::Tick);
            w.run();
            (w.now().as_nanos(), w.delivered())
        }
        assert_eq!(trace(99), trace(99));
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut w = World::with_capacity(1, 8, 1024);
        let a = w.add_actor(Counter {
            ticks: 0,
            period: SimDuration::from_micros(10),
            limit: 5,
        });
        w.send_now(a, Msg::Tick);
        assert_eq!(w.run(), StopReason::Quiescent);
        assert_eq!(w.now(), SimTime::from_nanos(40_000));
        assert_eq!(w.delivered(), 5);
    }

    /// An actor that fans pseudo-random-delay messages back at itself and a
    /// peer — enough scheduling irregularity to exercise every queue path.
    struct Chatter {
        peer: ActorId,
        remaining: u32,
    }
    impl Actor<Msg> for Chatter {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _msg: Msg) {
            if self.remaining == 0 {
                return;
            }
            self.remaining -= 1;
            let jitter = ctx.rng().gen_range(5_000) as u64;
            ctx.schedule(SimDuration::from_nanos(jitter), Msg::Tick);
            let peer = self.peer;
            ctx.send_after(SimDuration::from_nanos(jitter / 3), peer, Msg::Echo(0));
        }
    }

    fn chatter_trace(mut w: World<Msg>) -> (u64, u64, Vec<(u64, u32)>) {
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let r = w.add_actor(Recorder { seen: seen.clone() });
        let a = w.add_actor(Chatter {
            peer: r,
            remaining: 400,
        });
        let b = w.add_actor(Chatter {
            peer: r,
            remaining: 400,
        });
        w.send_now(a, Msg::Tick);
        w.send_at(SimTime::from_nanos(3), b, Msg::Tick);
        assert_eq!(w.run(), StopReason::Quiescent);
        let trace = seen.borrow().clone();
        (w.now().as_nanos(), w.delivered(), trace)
    }

    #[test]
    fn time_wheel_trace_identical_to_heap() {
        // The wheel must deliver the exact event sequence the heap does —
        // same final clock, same count, same per-message timestamps.
        let heap = chatter_trace(World::new(42));
        // Narrow slots force many cursor advances; wide ones exercise the
        // intra-slot heap; tiny wheels exercise the overflow path heavily.
        for (width, slots) in [(64, 1024), (1_000, 16), (10_000, 4), (1, 2)] {
            let wheel = chatter_trace(World::with_time_wheel(
                42,
                SimDuration::from_nanos(width),
                slots,
            ));
            assert_eq!(heap, wheel, "wheel({width}ns x {slots}) diverged");
        }
    }

    #[test]
    fn time_wheel_run_until_resumes() {
        let mut w = World::with_time_wheel(1, SimDuration::from_micros(1), 64);
        let a = w.add_actor(Counter {
            ticks: 0,
            period: SimDuration::from_millis(1),
            limit: 100,
        });
        w.send_now(a, Msg::Tick);
        // Every period is far beyond the 64 µs horizon: all overflow.
        let r = w.run_until(SimTime::from_nanos(4_500_000));
        assert_eq!(r, StopReason::TimeLimit);
        assert_eq!(w.now(), SimTime::from_nanos(4_500_000));
        assert!(w.pending() > 0);
        // Sending after the cursor has jumped ahead must still work.
        w.send_at(SimTime::from_nanos(4_600_000), a, Msg::Echo(1));
        assert_eq!(w.run(), StopReason::Quiescent);
        assert_eq!(w.delivered(), 101);
    }

    #[test]
    fn time_wheel_equal_time_send_order_preserved() {
        let mut w = World::with_time_wheel(1, SimDuration::from_nanos(50), 8);
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let r = w.add_actor(Recorder { seen: seen.clone() });
        let t = SimTime::from_nanos(100);
        w.send_at(t, r, Msg::Echo(1));
        w.send_at(t, r, Msg::Echo(2));
        w.send_at(t, r, Msg::Echo(3));
        w.run();
        assert_eq!(*seen.borrow(), vec![(100, 1), (100, 2), (100, 3)]);
    }

    #[test]
    #[should_panic(expected = "slot width must be positive")]
    fn time_wheel_zero_width_rejected() {
        let _: World<Msg> = World::with_time_wheel(1, SimDuration::ZERO, 8);
    }
}
