//! Deterministic random numbers.
//!
//! AN2's crossbar scheduler depends on randomness for fairness (the *grant*
//! step of parallel iterative matching picks a requester uniformly at random),
//! and the paper's iteration-count bound holds *because* of that randomness.
//! For the reproduction we need randomness that is (a) statistically decent
//! and (b) exactly reproducible, so every experiment takes a seed and derives
//! all of its streams from it.
//!
//! The generator is xoshiro256**, seeded through splitmix64 — the standard
//! construction recommended by its authors. It also implements
//! [`rand::RngCore`] so it can drive distributions from the `rand` crate.

use rand::RngCore;

/// A small, fast, seedable PRNG (xoshiro256**) with support for deriving
/// independent child streams.
///
/// ```
/// use an2_sim::SimRng;
/// let mut rng = SimRng::new(7);
/// let a = rng.next_u64();
/// let b = SimRng::new(7).next_u64();
/// assert_eq!(a, b); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed. Any seed (including 0) yields
    /// a well-mixed internal state.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child generator, keyed by `stream`.
    ///
    /// Children with different keys (or from generators in different states)
    /// produce effectively independent streams; this is how the engine gives
    /// each actor its own RNG without cross-contaminating event orders.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::new(base ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Derives `n` independent child generators, keyed `0..n`.
    ///
    /// This is the canonical way to hand every entity in a collection its
    /// own stream: both data-plane engines fork one stream per switch with
    /// this helper, so a given `(seed, switch index)` pair names the same
    /// stream no matter which engine — or how many shards — consumes it.
    pub fn fork_n(&mut self, n: usize) -> Vec<SimRng> {
        (0..n).map(|i| self.fork(i as u64)).collect()
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform integer in `[0, bound)` using Lemire's method (no modulo
    /// bias).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_range: bound must be positive");
        let bound = bound as u64;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// A uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(slice.len())])
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            slice.swap(i, self.gen_range(i + 1));
        }
    }

    /// A sample from the geometric distribution on {1, 2, ...} with success
    /// probability `p`: the number of Bernoulli(p) trials up to and including
    /// the first success. Used for bursty on/off traffic sources.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p <= 1`.
    pub fn gen_geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "gen_geometric: p must be in (0, 1]");
        if p >= 1.0 {
            return 1;
        }
        let u = self.gen_f64().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()).floor() as u64 + 1
    }

    /// A sample from the exponential distribution with the given mean.
    /// Used for Poisson arrival processes.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        let u = self.gen_f64().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        SimRng::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_independent_of_parent_continuation() {
        let mut parent = SimRng::new(9);
        let mut child = parent.fork(0);
        let child_vals: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        let parent_vals: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        assert_ne!(child_vals, parent_vals);
    }

    #[test]
    fn fork_streams_with_distinct_keys_differ() {
        let mut p1 = SimRng::new(9);
        let mut p2 = SimRng::new(9);
        let mut a = p1.fork(1);
        let mut b = p2.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_n_matches_sequential_forks() {
        let mut a = SimRng::new(33);
        let streams = a.fork_n(4);
        let mut b = SimRng::new(33);
        for (i, s) in streams.iter().enumerate() {
            assert_eq!(*s, b.fork(i as u64));
        }
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = SimRng::new(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit in 1000 draws");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_range_zero_panics() {
        SimRng::new(0).gen_range(0);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SimRng::new(77);
        let n = 16;
        let draws = 160_000;
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[rng.gen_range(n)] += 1;
        }
        let expect = draws / n;
        for &c in &counts {
            // 10% tolerance is ~13 sigma at this sample size; failures mean a
            // real bias, not noise.
            assert!(
                (c as f64 - expect as f64).abs() < expect as f64 * 0.10,
                "bucket count {c} too far from {expect}"
            );
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::new(42);
        for _ in 0..1_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = SimRng::new(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SimRng::new(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SimRng::new(11);
        assert_eq!(rng.choose::<u32>(&[]), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
        let mut v: Vec<u32> = (0..32).collect();
        let orig = v.clone();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert_ne!(
            v, orig,
            "a 32-element shuffle is astronomically unlikely to be identity"
        );
    }

    #[test]
    fn geometric_mean_close() {
        let mut rng = SimRng::new(21);
        let p = 0.25;
        let n = 50_000;
        let total: u64 = (0..n).map(|_| rng.gen_geometric(p)).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - 1.0 / p).abs() < 0.1,
            "geometric mean {mean} vs {}",
            1.0 / p
        );
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::new(22);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| rng.gen_exp(3.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "exp mean {mean}");
    }

    #[test]
    fn rng_core_fill_bytes() {
        let mut rng = SimRng::new(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
