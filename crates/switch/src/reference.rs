//! The pre-slab switch data plane, preserved verbatim as an oracle.
//!
//! This is the map-based implementation the slab rewrite in
//! `crate::switch` replaced: per-input `BTreeMap<VcId, VecDeque<_>>`
//! queues, a `BTreeMap` routing table and a `BTreeMap` credit table. It is
//! kept (a) as the baseline side of the criterion `fabric` benches and
//! (b) as the behavioural oracle for the reference-equivalence property
//! tests — both implementations must produce byte-identical departures and
//! consume the RNG stream identically on any seeded workload.
//!
//! Mirrors the PR 1 pattern of `an2_xbar::reference`. Do not optimise this
//! module; its value is that it stays exactly what shipped before.

use crate::{Departure, SwitchConfig, SwitchError};
use an2_cells::signal::TrafficClass;
use an2_cells::{Cell, VcId};
use an2_schedule::FrameSchedule;
use an2_sim::SimRng;
use an2_xbar::{CrossbarScheduler, DemandMatrix, Matching, Pim};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

#[derive(Debug, Clone)]
struct QueuedCell {
    cell: Cell,
    enqueued_slot: u64,
}

#[derive(Debug, Clone)]
struct Route {
    output: usize,
    class: TrafficClass,
}

/// The pre-slab AN2 switch. Behaviourally identical to [`crate::Switch`].
pub struct ReferenceSwitch {
    cfg: SwitchConfig,
    routing: BTreeMap<VcId, Route>,
    /// Best-effort queues: per input port, per circuit.
    best_effort: Vec<BTreeMap<VcId, VecDeque<QueuedCell>>>,
    /// Guaranteed queues: per input port, per circuit (separate pools, §4).
    guaranteed: Vec<BTreeMap<VcId, VecDeque<QueuedCell>>>,
    /// Cells for circuits with no routing entry yet: "they will be buffered
    /// until the routing table entry is filled in" (§2).
    pending: BTreeMap<VcId, VecDeque<(usize, QueuedCell)>>,
    schedule: FrameSchedule,
    pim: Pim,
    slot: u64,
    /// Credit balances gating best-effort circuits on their outbound link
    /// (§5). Circuits without an entry are ungated (e.g. the final hop to a
    /// host, whose controller always has buffers).
    credits: BTreeMap<VcId, u32>,
}

impl fmt::Debug for ReferenceSwitch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReferenceSwitch")
            .field("ports", &self.cfg.ports)
            .field("slot", &self.slot)
            .field("routes", &self.routing.len())
            .finish()
    }
}

impl ReferenceSwitch {
    /// Creates an idle switch.
    pub fn new(cfg: SwitchConfig) -> Self {
        let ports = cfg.ports;
        let frame = cfg.frame_slots;
        let pim = Pim::new(cfg.pim_iterations);
        ReferenceSwitch {
            cfg,
            routing: BTreeMap::new(),
            best_effort: vec![BTreeMap::new(); ports],
            guaranteed: vec![BTreeMap::new(); ports],
            pending: BTreeMap::new(),
            schedule: FrameSchedule::new(ports, frame),
            pim,
            slot: 0,
            credits: BTreeMap::new(),
        }
    }

    /// Gates a best-effort circuit's outbound transmissions behind a credit
    /// balance (§5). The fabric sets this to the downstream buffer count at
    /// circuit setup.
    pub fn set_credits(&mut self, vc: VcId, credits: u32) {
        self.credits.insert(vc, credits);
    }

    /// Removes the credit gate for a circuit (used on teardown).
    pub fn clear_credits(&mut self, vc: VcId) {
        self.credits.remove(&vc);
    }

    /// One credit returned from downstream: a buffer was freed there.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is ungated — a stray credit indicates a fabric
    /// accounting bug.
    pub fn add_credit(&mut self, vc: VcId) {
        let c = self
            .credits
            .get_mut(&vc)
            .expect("credit for an ungated circuit");
        *c += 1;
    }

    /// The circuit's current credit balance (`None` = ungated).
    pub fn credit_balance(&self, vc: VcId) -> Option<u32> {
        self.credits.get(&vc).copied()
    }

    fn has_credit(&self, vc: VcId) -> bool {
        self.credits.get(&vc).is_none_or(|&c| c > 0)
    }

    /// Ports on this switch.
    pub fn ports(&self) -> usize {
        self.cfg.ports
    }

    /// The current slot index.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// The guaranteed-traffic frame schedule (for reservation surgery).
    pub fn schedule_mut(&mut self) -> &mut FrameSchedule {
        &mut self.schedule
    }

    /// Read access to the frame schedule.
    pub fn schedule(&self) -> &FrameSchedule {
        &self.schedule
    }

    /// Installs a routing-table entry: cells of `vc` leave on `output`.
    /// Cells that arrived before the entry existed are released from the
    /// pending buffer.
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range port or a duplicate entry.
    pub fn install_route(
        &mut self,
        vc: VcId,
        output: usize,
        class: TrafficClass,
    ) -> Result<(), SwitchError> {
        if output >= self.cfg.ports {
            return Err(SwitchError::BadPort(output));
        }
        if self.routing.contains_key(&vc) {
            return Err(SwitchError::RouteExists(vc));
        }
        self.routing.insert(vc, Route { output, class });
        if let Some(held) = self.pending.remove(&vc) {
            for (input, qc) in held {
                self.queue_for(vc, input).push_back(qc);
            }
        }
        Ok(())
    }

    /// Removes a routing entry (circuit teardown or page-out, §2), dropping
    /// any queued cells of the circuit. Returns how many cells were
    /// discarded.
    pub fn remove_route(&mut self, vc: VcId) -> usize {
        self.routing.remove(&vc);
        let mut dropped = 0;
        for input in 0..self.cfg.ports {
            dropped += self.best_effort[input].remove(&vc).map_or(0, |q| q.len());
            dropped += self.guaranteed[input].remove(&vc).map_or(0, |q| q.len());
        }
        dropped + self.pending.remove(&vc).map_or(0, |q| q.len())
    }

    /// The output port a circuit is routed to, if any.
    pub fn route_of(&self, vc: VcId) -> Option<usize> {
        self.routing.get(&vc).map(|r| r.output)
    }

    fn queue_for(&mut self, vc: VcId, input: usize) -> &mut VecDeque<QueuedCell> {
        let class = self.routing[&vc].class;
        let pool = match class {
            TrafficClass::BestEffort => &mut self.best_effort[input],
            TrafficClass::Guaranteed { .. } => &mut self.guaranteed[input],
        };
        pool.entry(vc).or_default()
    }

    /// Accepts a cell on an input port. Routed cells join their circuit's
    /// queue; unrouted cells wait in the pending buffer.
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range input port.
    pub fn enqueue(&mut self, input: usize, cell: Cell) -> Result<(), SwitchError> {
        if input >= self.cfg.ports {
            return Err(SwitchError::BadPort(input));
        }
        let vc = cell.vc();
        let qc = QueuedCell {
            cell,
            enqueued_slot: self.slot,
        };
        if self.routing.contains_key(&vc) {
            self.queue_for(vc, input).push_back(qc);
        } else {
            self.pending.entry(vc).or_default().push_back((input, qc));
        }
        Ok(())
    }

    /// Cells queued for a circuit at an input port (any pool).
    pub fn backlog(&self, input: usize, vc: VcId) -> usize {
        self.best_effort[input].get(&vc).map_or(0, |q| q.len())
            + self.guaranteed[input].get(&vc).map_or(0, |q| q.len())
    }

    /// Total cells buffered anywhere in the switch.
    pub fn total_backlog(&self) -> usize {
        let pools = self.best_effort.iter().chain(self.guaranteed.iter());
        pools
            .map(|p| p.values().map(VecDeque::len).sum::<usize>())
            .sum::<usize>()
            + self.pending.values().map(VecDeque::len).sum::<usize>()
    }

    /// Whether a queued cell is old enough to have cleared the cut-through
    /// pipeline.
    fn eligible(&self, qc: &QueuedCell) -> bool {
        self.slot >= qc.enqueued_slot + self.cfg.pipeline_slots
    }

    /// The oldest eligible guaranteed cell at `input` routed to `output`.
    fn take_guaranteed(&mut self, input: usize, output: usize) -> Option<QueuedCell> {
        let best_vc = self.guaranteed[input]
            .iter()
            .filter(|(vc, q)| {
                self.routing.get(vc).map(|r| r.output) == Some(output)
                    && q.front().is_some_and(|qc| self.eligible(qc))
            })
            .min_by_key(|(_, q)| q.front().map(|qc| qc.enqueued_slot))
            .map(|(&vc, _)| vc)?;
        self.guaranteed[input]
            .get_mut(&best_vc)
            .and_then(VecDeque::pop_front)
    }

    /// The oldest eligible, credit-holding best-effort cell at `input`
    /// routed to `output`. Consumes one credit for the chosen circuit.
    fn take_best_effort(&mut self, input: usize, output: usize) -> Option<QueuedCell> {
        let best_vc = self.best_effort[input]
            .iter()
            .filter(|(vc, q)| {
                self.routing.get(vc).map(|r| r.output) == Some(output)
                    && self.has_credit(**vc)
                    && q.front().is_some_and(|qc| self.eligible(qc))
            })
            .min_by_key(|(_, q)| q.front().map(|qc| qc.enqueued_slot))
            .map(|(&vc, _)| vc)?;
        if let Some(c) = self.credits.get_mut(&best_vc) {
            *c -= 1;
        }
        self.best_effort[input]
            .get_mut(&best_vc)
            .and_then(VecDeque::pop_front)
    }

    /// Advances one cell slot: serves the frame schedule first, donates idle
    /// reserved slots, runs PIM for best-effort traffic over the remaining
    /// ports, and returns every departing cell.
    pub fn step(&mut self, rng: &mut SimRng) -> Vec<Departure> {
        let n = self.cfg.ports;
        let frame_slot = (self.slot % self.cfg.frame_slots as u64) as u32;
        let mut departures = Vec::new();
        let mut crossbar = Matching::empty(n);

        // Phase 1 — guaranteed traffic takes its reserved pairings (§4).
        for input in 0..n {
            if let Some(output) = self.schedule.output_in_slot(frame_slot, input) {
                if let Some(qc) = self.take_guaranteed(input, output) {
                    crossbar.set(input, output);
                    departures.push(Departure {
                        output,
                        cell: qc.cell,
                        enqueued_slot: qc.enqueued_slot,
                        trace: 0,
                    });
                }
                // "Best-effort cells can use an allocated slot if no cell
                // from the scheduled virtual circuit is present" — by not
                // claiming the pair here, it stays free for phase 2.
            }
        }

        // Phase 2 — PIM over everything still free (§3). Demand counts only
        // eligible cells whose route leads to a free output.
        let mut demand = DemandMatrix::new(n);
        for input in 0..n {
            if !crossbar.input_free(input) {
                continue;
            }
            for (vc, q) in &self.best_effort[input] {
                let Some(route) = self.routing.get(vc) else {
                    continue;
                };
                if !crossbar.output_free(route.output) || !self.has_credit(*vc) {
                    continue;
                }
                let eligible = q
                    .iter()
                    .filter(|qc| self.slot >= qc.enqueued_slot + self.cfg.pipeline_slots)
                    .count() as u64;
                if eligible > 0 {
                    demand.add(input, route.output, eligible);
                }
            }
            // Guaranteed circuits with backlog may also use free slots via
            // the matching (they behave like best-effort for excess cells
            // *of an already-reserved circuit* only through their schedule;
            // the paper gives spare slots to best-effort cells, so
            // guaranteed queues wait for their reservations).
        }
        let matching = self.pim.schedule(&demand, rng);
        for (input, output) in matching.iter() {
            let qc = self
                .take_best_effort(input, output)
                .expect("PIM matched a pair with demand");
            crossbar.set(input, output);
            departures.push(Departure {
                output,
                cell: qc.cell,
                enqueued_slot: qc.enqueued_slot,
                trace: 0,
            });
        }

        self.slot += 1;
        departures
    }
}
