//! # an2-switch — the AN2 switch data plane
//!
//! One AN2 switch: up to 16 line cards around a 16×16 crossbar, with
//!
//! * a **routing table** mapping virtual-circuit ids to output ports (§2),
//! * **random-access input buffers** — per-circuit queues at each input, so
//!   a blocked circuit never blocks others (§3, §5),
//! * a **frame schedule** granting guaranteed circuits their reserved slots
//!   (§4), with unused reserved slots donated to best-effort traffic,
//! * **parallel iterative matching** filling every remaining slot with
//!   best-effort cells (§3), and
//! * a **cut-through pipeline** of ~2 µs: "In the absence of contention, the
//!   first bit of a packet leaves the switch 2 microseconds after it
//!   arrives" (§1).
//!
//! The switch is slot-synchronous: [`Switch::step`] advances one cell slot,
//! consuming queued cells and producing departures. Credit-based flow
//! control between switches lives one level up (the fabric in the `an2`
//! crate), which gates cell admission using [`Switch::backlog`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod reference;
mod switch;

pub use switch::{Departure, Switch, SwitchConfig, SwitchError};
