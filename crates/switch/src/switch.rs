//! The slot-synchronous switch model.

use an2_cells::signal::TrafficClass;
use an2_cells::{Cell, VcId};
use an2_schedule::FrameSchedule;
use an2_sim::SimRng;
use an2_xbar::{CrossbarScheduler, DemandMatrix, Matching, Pim};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Configuration of one switch.
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// Line cards / crossbar ports (AN2: 16).
    pub ports: usize,
    /// Slots per guaranteed-traffic frame (AN2: 1024).
    pub frame_slots: u32,
    /// PIM iterations per slot (AN2 hardware: 3).
    pub pim_iterations: usize,
    /// Cut-through pipeline depth in slots: a cell arriving in slot `t` may
    /// first cross the crossbar in slot `t + pipeline_slots`. Three ~681 ns
    /// slots ≈ the paper's 2 µs (§1).
    pub pipeline_slots: u64,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            ports: 16,
            frame_slots: 1024,
            pim_iterations: 3,
            pipeline_slots: 3,
        }
    }
}

/// Errors from switch operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwitchError {
    /// The port number exceeds the switch's port count.
    BadPort(usize),
    /// The circuit already has a routing-table entry.
    RouteExists(VcId),
}

impl fmt::Display for SwitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchError::BadPort(p) => write!(f, "port {p} out of range"),
            SwitchError::RouteExists(vc) => write!(f, "{vc} already routed"),
        }
    }
}

impl std::error::Error for SwitchError {}

/// A cell leaving the switch this slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Departure {
    /// Output port the cell leaves on.
    pub output: usize,
    /// The cell itself.
    pub cell: Cell,
    /// The slot in which the cell entered this switch (for latency
    /// accounting).
    pub enqueued_slot: u64,
}

#[derive(Debug, Clone)]
struct QueuedCell {
    cell: Cell,
    enqueued_slot: u64,
}

#[derive(Debug, Clone)]
struct Route {
    output: usize,
    class: TrafficClass,
}

/// One AN2 switch. See the [crate documentation](crate) for the model.
pub struct Switch {
    cfg: SwitchConfig,
    routing: BTreeMap<VcId, Route>,
    /// Best-effort queues: per input port, per circuit.
    best_effort: Vec<BTreeMap<VcId, VecDeque<QueuedCell>>>,
    /// Guaranteed queues: per input port, per circuit (separate pools, §4).
    guaranteed: Vec<BTreeMap<VcId, VecDeque<QueuedCell>>>,
    /// Cells for circuits with no routing entry yet: "they will be buffered
    /// until the routing table entry is filled in" (§2).
    pending: BTreeMap<VcId, VecDeque<(usize, QueuedCell)>>,
    schedule: FrameSchedule,
    pim: Pim,
    slot: u64,
    /// Credit balances gating best-effort circuits on their outbound link
    /// (§5). Circuits without an entry are ungated (e.g. the final hop to a
    /// host, whose controller always has buffers).
    credits: BTreeMap<VcId, u32>,
}

impl fmt::Debug for Switch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Switch")
            .field("ports", &self.cfg.ports)
            .field("slot", &self.slot)
            .field("routes", &self.routing.len())
            .finish()
    }
}

impl Switch {
    /// Creates an idle switch.
    pub fn new(cfg: SwitchConfig) -> Self {
        let ports = cfg.ports;
        let frame = cfg.frame_slots;
        let pim = Pim::new(cfg.pim_iterations);
        Switch {
            cfg,
            routing: BTreeMap::new(),
            best_effort: vec![BTreeMap::new(); ports],
            guaranteed: vec![BTreeMap::new(); ports],
            pending: BTreeMap::new(),
            schedule: FrameSchedule::new(ports, frame),
            pim,
            slot: 0,
            credits: BTreeMap::new(),
        }
    }

    /// Gates a best-effort circuit's outbound transmissions behind a credit
    /// balance (§5). The fabric sets this to the downstream buffer count at
    /// circuit setup.
    pub fn set_credits(&mut self, vc: VcId, credits: u32) {
        self.credits.insert(vc, credits);
    }

    /// Removes the credit gate for a circuit (used on teardown).
    pub fn clear_credits(&mut self, vc: VcId) {
        self.credits.remove(&vc);
    }

    /// One credit returned from downstream: a buffer was freed there.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is ungated — a stray credit indicates a fabric
    /// accounting bug.
    pub fn add_credit(&mut self, vc: VcId) {
        let c = self
            .credits
            .get_mut(&vc)
            .expect("credit for an ungated circuit");
        *c += 1;
    }

    /// The circuit's current credit balance (`None` = ungated).
    pub fn credit_balance(&self, vc: VcId) -> Option<u32> {
        self.credits.get(&vc).copied()
    }

    fn has_credit(&self, vc: VcId) -> bool {
        self.credits.get(&vc).is_none_or(|&c| c > 0)
    }

    /// Ports on this switch.
    pub fn ports(&self) -> usize {
        self.cfg.ports
    }

    /// The current slot index.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// The guaranteed-traffic frame schedule (for reservation surgery).
    pub fn schedule_mut(&mut self) -> &mut FrameSchedule {
        &mut self.schedule
    }

    /// Read access to the frame schedule.
    pub fn schedule(&self) -> &FrameSchedule {
        &self.schedule
    }

    /// Installs a routing-table entry: cells of `vc` leave on `output`.
    /// Cells that arrived before the entry existed are released from the
    /// pending buffer.
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range port or a duplicate entry.
    pub fn install_route(
        &mut self,
        vc: VcId,
        output: usize,
        class: TrafficClass,
    ) -> Result<(), SwitchError> {
        if output >= self.cfg.ports {
            return Err(SwitchError::BadPort(output));
        }
        if self.routing.contains_key(&vc) {
            return Err(SwitchError::RouteExists(vc));
        }
        self.routing.insert(vc, Route { output, class });
        if let Some(held) = self.pending.remove(&vc) {
            for (input, qc) in held {
                self.queue_for(vc, input).push_back(qc);
            }
        }
        Ok(())
    }

    /// Removes a routing entry (circuit teardown or page-out, §2), dropping
    /// any queued cells of the circuit. Returns how many cells were
    /// discarded.
    pub fn remove_route(&mut self, vc: VcId) -> usize {
        self.routing.remove(&vc);
        let mut dropped = 0;
        for input in 0..self.cfg.ports {
            dropped += self.best_effort[input].remove(&vc).map_or(0, |q| q.len());
            dropped += self.guaranteed[input].remove(&vc).map_or(0, |q| q.len());
        }
        dropped + self.pending.remove(&vc).map_or(0, |q| q.len())
    }

    /// The output port a circuit is routed to, if any.
    pub fn route_of(&self, vc: VcId) -> Option<usize> {
        self.routing.get(&vc).map(|r| r.output)
    }

    fn queue_for(&mut self, vc: VcId, input: usize) -> &mut VecDeque<QueuedCell> {
        let class = self.routing[&vc].class;
        let pool = match class {
            TrafficClass::BestEffort => &mut self.best_effort[input],
            TrafficClass::Guaranteed { .. } => &mut self.guaranteed[input],
        };
        pool.entry(vc).or_default()
    }

    /// Accepts a cell on an input port. Routed cells join their circuit's
    /// queue; unrouted cells wait in the pending buffer.
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range input port.
    pub fn enqueue(&mut self, input: usize, cell: Cell) -> Result<(), SwitchError> {
        if input >= self.cfg.ports {
            return Err(SwitchError::BadPort(input));
        }
        let vc = cell.vc();
        let qc = QueuedCell {
            cell,
            enqueued_slot: self.slot,
        };
        if self.routing.contains_key(&vc) {
            self.queue_for(vc, input).push_back(qc);
        } else {
            self.pending.entry(vc).or_default().push_back((input, qc));
        }
        Ok(())
    }

    /// Cells queued for a circuit at an input port (any pool).
    pub fn backlog(&self, input: usize, vc: VcId) -> usize {
        self.best_effort[input].get(&vc).map_or(0, |q| q.len())
            + self.guaranteed[input].get(&vc).map_or(0, |q| q.len())
    }

    /// Total cells buffered anywhere in the switch.
    pub fn total_backlog(&self) -> usize {
        let pools = self.best_effort.iter().chain(self.guaranteed.iter());
        pools
            .map(|p| p.values().map(VecDeque::len).sum::<usize>())
            .sum::<usize>()
            + self.pending.values().map(VecDeque::len).sum::<usize>()
    }

    /// Whether a queued cell is old enough to have cleared the cut-through
    /// pipeline.
    fn eligible(&self, qc: &QueuedCell) -> bool {
        self.slot >= qc.enqueued_slot + self.cfg.pipeline_slots
    }

    /// The oldest eligible guaranteed cell at `input` routed to `output`.
    fn take_guaranteed(&mut self, input: usize, output: usize) -> Option<QueuedCell> {
        let best_vc = self.guaranteed[input]
            .iter()
            .filter(|(vc, q)| {
                self.routing.get(vc).map(|r| r.output) == Some(output)
                    && q.front().is_some_and(|qc| self.eligible(qc))
            })
            .min_by_key(|(_, q)| q.front().map(|qc| qc.enqueued_slot))
            .map(|(&vc, _)| vc)?;
        self.guaranteed[input]
            .get_mut(&best_vc)
            .and_then(VecDeque::pop_front)
    }

    /// The oldest eligible, credit-holding best-effort cell at `input`
    /// routed to `output`. Consumes one credit for the chosen circuit.
    fn take_best_effort(&mut self, input: usize, output: usize) -> Option<QueuedCell> {
        let best_vc = self.best_effort[input]
            .iter()
            .filter(|(vc, q)| {
                self.routing.get(vc).map(|r| r.output) == Some(output)
                    && self.has_credit(**vc)
                    && q.front().is_some_and(|qc| self.eligible(qc))
            })
            .min_by_key(|(_, q)| q.front().map(|qc| qc.enqueued_slot))
            .map(|(&vc, _)| vc)?;
        if let Some(c) = self.credits.get_mut(&best_vc) {
            *c -= 1;
        }
        self.best_effort[input]
            .get_mut(&best_vc)
            .and_then(VecDeque::pop_front)
    }

    /// Advances one cell slot: serves the frame schedule first, donates idle
    /// reserved slots, runs PIM for best-effort traffic over the remaining
    /// ports, and returns every departing cell.
    pub fn step(&mut self, rng: &mut SimRng) -> Vec<Departure> {
        let n = self.cfg.ports;
        let frame_slot = (self.slot % self.cfg.frame_slots as u64) as u32;
        let mut departures = Vec::new();
        let mut crossbar = Matching::empty(n);

        // Phase 1 — guaranteed traffic takes its reserved pairings (§4).
        for input in 0..n {
            if let Some(output) = self.schedule.output_in_slot(frame_slot, input) {
                if let Some(qc) = self.take_guaranteed(input, output) {
                    crossbar.set(input, output);
                    departures.push(Departure {
                        output,
                        cell: qc.cell,
                        enqueued_slot: qc.enqueued_slot,
                    });
                }
                // "Best-effort cells can use an allocated slot if no cell
                // from the scheduled virtual circuit is present" — by not
                // claiming the pair here, it stays free for phase 2.
            }
        }

        // Phase 2 — PIM over everything still free (§3). Demand counts only
        // eligible cells whose route leads to a free output.
        let mut demand = DemandMatrix::new(n);
        for input in 0..n {
            if !crossbar.input_free(input) {
                continue;
            }
            for (vc, q) in &self.best_effort[input] {
                let Some(route) = self.routing.get(vc) else {
                    continue;
                };
                if !crossbar.output_free(route.output) || !self.has_credit(*vc) {
                    continue;
                }
                let eligible = q
                    .iter()
                    .filter(|qc| self.slot >= qc.enqueued_slot + self.cfg.pipeline_slots)
                    .count() as u64;
                if eligible > 0 {
                    demand.add(input, route.output, eligible);
                }
            }
            // Guaranteed circuits with backlog may also use free slots via
            // the matching (they behave like best-effort for excess cells
            // *of an already-reserved circuit* only through their schedule;
            // the paper gives spare slots to best-effort cells, so
            // guaranteed queues wait for their reservations).
        }
        let matching = self.pim.schedule(&demand, rng);
        for (input, output) in matching.iter() {
            let qc = self
                .take_best_effort(input, output)
                .expect("PIM matched a pair with demand");
            crossbar.set(input, output);
            departures.push(Departure {
                output,
                cell: qc.cell,
                enqueued_slot: qc.enqueued_slot,
            });
        }

        self.slot += 1;
        departures
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use an2_cells::CellKind;
    use an2_cells::PAYLOAD_BYTES;

    fn cfg_small() -> SwitchConfig {
        SwitchConfig {
            ports: 4,
            frame_slots: 8,
            pim_iterations: 3,
            pipeline_slots: 3,
        }
    }

    fn cell(vc: u32) -> Cell {
        Cell::new(VcId::new(vc), CellKind::Data, [0; PAYLOAD_BYTES])
    }

    fn run_slots(sw: &mut Switch, rng: &mut SimRng, slots: u64) -> Vec<Departure> {
        let mut out = Vec::new();
        for _ in 0..slots {
            out.extend(sw.step(rng));
        }
        out
    }

    #[test]
    fn cut_through_latency_is_pipeline_depth() {
        // E2: an uncontended cell leaves pipeline_slots after arrival —
        // 3 slots ≈ 2 µs at 622 Mb/s.
        let mut sw = Switch::new(cfg_small());
        sw.install_route(VcId::new(1), 2, TrafficClass::BestEffort)
            .unwrap();
        sw.enqueue(0, cell(1)).unwrap();
        let mut rng = SimRng::new(1);
        let mut deps = Vec::new();
        for s in 0..10u64 {
            for d in sw.step(&mut rng) {
                deps.push((s, d));
            }
        }
        assert_eq!(deps.len(), 1);
        let (departed_slot, d) = &deps[0];
        assert_eq!(*departed_slot, 3, "pipeline is 3 slots");
        assert_eq!(d.output, 2);
        assert_eq!(d.enqueued_slot, 0);
    }

    #[test]
    fn unrouted_cells_wait_for_route_install() {
        // §2: cells arriving before the setup completes "will be buffered
        // until the routing table entry is filled in."
        let mut sw = Switch::new(cfg_small());
        sw.enqueue(1, cell(9)).unwrap();
        let mut rng = SimRng::new(2);
        assert!(run_slots(&mut sw, &mut rng, 5).is_empty());
        assert_eq!(sw.total_backlog(), 1);
        sw.install_route(VcId::new(9), 3, TrafficClass::BestEffort)
            .unwrap();
        let deps = run_slots(&mut sw, &mut rng, 10);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].output, 3);
    }

    #[test]
    fn route_management_errors() {
        let mut sw = Switch::new(cfg_small());
        assert_eq!(
            sw.install_route(VcId::new(1), 9, TrafficClass::BestEffort),
            Err(SwitchError::BadPort(9))
        );
        sw.install_route(VcId::new(1), 1, TrafficClass::BestEffort)
            .unwrap();
        assert_eq!(
            sw.install_route(VcId::new(1), 2, TrafficClass::BestEffort),
            Err(SwitchError::RouteExists(VcId::new(1)))
        );
        assert_eq!(sw.route_of(VcId::new(1)), Some(1));
        assert!(sw.enqueue(7, cell(1)).is_err());
        assert!(SwitchError::BadPort(9).to_string().contains("9"));
    }

    #[test]
    fn remove_route_drops_queued_cells() {
        let mut sw = Switch::new(cfg_small());
        sw.install_route(VcId::new(5), 0, TrafficClass::BestEffort)
            .unwrap();
        sw.enqueue(1, cell(5)).unwrap();
        sw.enqueue(1, cell(5)).unwrap();
        assert_eq!(sw.remove_route(VcId::new(5)), 2);
        assert_eq!(sw.total_backlog(), 0);
        assert_eq!(sw.route_of(VcId::new(5)), None);
    }

    #[test]
    fn blocked_circuit_does_not_block_others() {
        // Random-access input buffers (§3): vc1 and vc2 share input 0; vc1's
        // output is monopolized by guaranteed traffic, vc2 still flows.
        let mut sw = Switch::new(cfg_small());
        sw.install_route(VcId::new(1), 1, TrafficClass::BestEffort)
            .unwrap();
        sw.install_route(VcId::new(2), 2, TrafficClass::BestEffort)
            .unwrap();
        // A guaranteed circuit from input 3 hogs output 1 every slot.
        sw.install_route(
            VcId::new(7),
            1,
            TrafficClass::Guaranteed { cells_per_frame: 8 },
        )
        .unwrap();
        for s in 0..8 {
            sw.schedule_mut().insert(3, 1).unwrap();
            let _ = s;
        }
        let mut rng = SimRng::new(3);
        // Keep the guaranteed queue full so output 1 is always taken.
        for _ in 0..40 {
            sw.enqueue(3, cell(7)).unwrap();
        }
        sw.enqueue(0, cell(1)).unwrap(); // blocked behind guaranteed hog
        sw.enqueue(0, cell(2)).unwrap(); // must still flow to output 2
        let deps = run_slots(&mut sw, &mut rng, 20);
        assert!(
            deps.iter().any(|d| d.cell.vc() == VcId::new(2)),
            "vc2 was blocked by vc1's contention: head-of-line blocking!"
        );
    }

    #[test]
    fn guaranteed_gets_reserved_slots_under_congestion() {
        // Input 0 carries a guaranteed circuit to output 1 with 4/8 slots
        // reserved; inputs 2 and 3 flood output 1 with best-effort. The
        // guaranteed circuit still gets its 4 cells per frame.
        let mut sw = Switch::new(cfg_small());
        sw.install_route(
            VcId::new(1),
            1,
            TrafficClass::Guaranteed { cells_per_frame: 4 },
        )
        .unwrap();
        for _ in 0..4 {
            sw.schedule_mut().insert(0, 1).unwrap();
        }
        sw.install_route(VcId::new(2), 1, TrafficClass::BestEffort)
            .unwrap();
        sw.install_route(VcId::new(3), 1, TrafficClass::BestEffort)
            .unwrap();
        let mut rng = SimRng::new(4);
        // Saturate all sources for 10 frames.
        let mut gt_delivered = 0;
        for slot in 0..80u64 {
            sw.enqueue(0, cell(1)).unwrap();
            sw.enqueue(2, cell(2)).unwrap();
            sw.enqueue(3, cell(3)).unwrap();
            for d in sw.step(&mut rng) {
                if d.cell.vc() == VcId::new(1) {
                    gt_delivered += 1;
                }
            }
            let _ = slot;
        }
        // 10 frames × 4 reserved = 40, minus pipeline warm-up of the first
        // frame; at least 9 frames' worth must get through.
        assert!(
            gt_delivered >= 36,
            "guaranteed circuit got only {gt_delivered} of ~40 reserved slots"
        );
    }

    #[test]
    fn idle_reserved_slots_are_donated_to_best_effort() {
        // §4: "best-effort cells can use an allocated slot if no cell from
        // the scheduled virtual circuit is present at the switch."
        let mut sw = Switch::new(cfg_small());
        // Guaranteed circuit (input 0 → output 1) reserves every slot but
        // sends nothing.
        sw.install_route(
            VcId::new(1),
            1,
            TrafficClass::Guaranteed { cells_per_frame: 8 },
        )
        .unwrap();
        for _ in 0..8 {
            sw.schedule_mut().insert(0, 1).unwrap();
        }
        // Best-effort from input 2 to output 1.
        sw.install_route(VcId::new(2), 1, TrafficClass::BestEffort)
            .unwrap();
        let mut rng = SimRng::new(5);
        for _ in 0..20 {
            sw.enqueue(2, cell(2)).unwrap();
        }
        let deps = run_slots(&mut sw, &mut rng, 20);
        assert!(
            deps.iter().filter(|d| d.cell.vc() == VcId::new(2)).count() >= 15,
            "idle reserved slots must be usable by best-effort traffic"
        );
    }

    #[test]
    fn full_permutation_throughput() {
        // All four inputs send to distinct outputs: one cell per input per
        // slot must flow once the pipeline fills.
        let mut sw = Switch::new(cfg_small());
        for i in 0..4u32 {
            sw.install_route(
                VcId::new(i + 1),
                ((i + 1) % 4) as usize,
                TrafficClass::BestEffort,
            )
            .unwrap();
        }
        let mut rng = SimRng::new(6);
        let mut delivered = 0;
        for _ in 0..100u64 {
            for i in 0..4 {
                sw.enqueue(i as usize, cell(i + 1)).unwrap();
            }
            delivered += sw.step(&mut rng).len();
        }
        assert!(delivered >= 4 * (100 - 4), "delivered {delivered}");
    }

    #[test]
    fn per_vc_fifo_order_is_preserved() {
        let mut sw = Switch::new(cfg_small());
        sw.install_route(VcId::new(1), 1, TrafficClass::BestEffort)
            .unwrap();
        let mut payload = [0u8; PAYLOAD_BYTES];
        let mut rng = SimRng::new(7);
        for k in 0..10u8 {
            payload[0] = k;
            sw.enqueue(0, Cell::new(VcId::new(1), CellKind::Data, payload))
                .unwrap();
        }
        let deps = run_slots(&mut sw, &mut rng, 20);
        let order: Vec<u8> = deps.iter().map(|d| d.cell.payload[0]).collect();
        assert_eq!(order, (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn backlog_accounting() {
        let mut sw = Switch::new(cfg_small());
        sw.install_route(VcId::new(1), 1, TrafficClass::BestEffort)
            .unwrap();
        sw.enqueue(0, cell(1)).unwrap();
        sw.enqueue(0, cell(1)).unwrap();
        sw.enqueue(2, cell(1)).unwrap();
        assert_eq!(sw.backlog(0, VcId::new(1)), 2);
        assert_eq!(sw.backlog(2, VcId::new(1)), 1);
        assert_eq!(sw.total_backlog(), 3);
    }

    #[test]
    fn credit_gate_throttles_best_effort() {
        let mut sw = Switch::new(cfg_small());
        sw.install_route(VcId::new(1), 1, TrafficClass::BestEffort)
            .unwrap();
        sw.set_credits(VcId::new(1), 2);
        let mut rng = SimRng::new(8);
        for _ in 0..10 {
            sw.enqueue(0, cell(1)).unwrap();
        }
        let deps = run_slots(&mut sw, &mut rng, 20);
        assert_eq!(deps.len(), 2, "only two credits were available");
        assert_eq!(sw.credit_balance(VcId::new(1)), Some(0));
        // Returning credits releases more cells.
        sw.add_credit(VcId::new(1));
        sw.add_credit(VcId::new(1));
        sw.add_credit(VcId::new(1));
        let deps = run_slots(&mut sw, &mut rng, 10);
        assert_eq!(deps.len(), 3);
        // Ungating drains the rest.
        sw.clear_credits(VcId::new(1));
        let deps = run_slots(&mut sw, &mut rng, 10);
        assert_eq!(deps.len(), 5);
    }

    #[test]
    fn blocked_by_credits_does_not_block_other_circuits() {
        // The §5 property motivating per-VC buffers: one stalled circuit
        // must not affect others sharing its input and output.
        let mut sw = Switch::new(cfg_small());
        sw.install_route(VcId::new(1), 1, TrafficClass::BestEffort)
            .unwrap();
        sw.install_route(VcId::new(2), 1, TrafficClass::BestEffort)
            .unwrap();
        sw.set_credits(VcId::new(1), 0); // vc1 stalled: downstream is full
        let mut rng = SimRng::new(9);
        for _ in 0..5 {
            sw.enqueue(0, cell(1)).unwrap();
            sw.enqueue(0, cell(2)).unwrap();
        }
        let deps = run_slots(&mut sw, &mut rng, 15);
        assert_eq!(deps.len(), 5);
        assert!(deps.iter().all(|d| d.cell.vc() == VcId::new(2)));
    }

    #[test]
    #[should_panic(expected = "ungated circuit")]
    fn stray_credit_panics() {
        let mut sw = Switch::new(cfg_small());
        sw.add_credit(VcId::new(3));
    }

    #[test]
    fn debug_format_is_informative() {
        let sw = Switch::new(cfg_small());
        let s = format!("{sw:?}");
        assert!(s.contains("ports") && s.contains("4"));
    }

    #[test]
    fn two_guaranteed_circuits_share_a_reserved_pair_fairly() {
        // Two guaranteed circuits enter on the same input and leave on the
        // same output; the schedule reserves the pair every slot. The
        // oldest-cell rule shares the slots between them.
        let mut sw = Switch::new(cfg_small());
        for vc in [1u32, 2] {
            sw.install_route(
                VcId::new(vc),
                1,
                TrafficClass::Guaranteed { cells_per_frame: 4 },
            )
            .unwrap();
        }
        for _ in 0..8 {
            sw.schedule_mut().insert(0, 1).unwrap();
        }
        let mut rng = SimRng::new(12);
        let mut served = [0u64; 2];
        for _ in 0..80u64 {
            sw.enqueue(0, cell(1)).unwrap();
            sw.enqueue(0, cell(2)).unwrap();
            for d in sw.step(&mut rng) {
                served[(d.cell.vc().raw() - 1) as usize] += 1;
            }
        }
        let total = served[0] + served[1];
        assert!(total >= 70, "reserved slots must be used: {served:?}");
        let diff = served[0].abs_diff(served[1]);
        assert!(
            diff <= 2,
            "unfair split between co-scheduled circuits: {served:?}"
        );
    }

    #[test]
    fn schedule_removal_returns_slots_to_best_effort() {
        let mut sw = Switch::new(cfg_small());
        sw.install_route(
            VcId::new(1),
            1,
            TrafficClass::Guaranteed { cells_per_frame: 8 },
        )
        .unwrap();
        for _ in 0..8 {
            sw.schedule_mut().insert(0, 1).unwrap();
        }
        sw.install_route(VcId::new(2), 1, TrafficClass::BestEffort)
            .unwrap();
        let mut rng = SimRng::new(13);
        // Keep the guaranteed queue saturated: best-effort gets nothing.
        for _ in 0..30 {
            sw.enqueue(0, cell(1)).unwrap();
            sw.enqueue(2, cell(2)).unwrap();
        }
        let deps = run_slots(&mut sw, &mut rng, 10);
        assert!(deps.iter().all(|d| d.cell.vc() == VcId::new(1)));
        // Tear the reservation down: best-effort flows again.
        while sw.schedule_mut().remove(0, 1).is_some() {}
        sw.remove_route(VcId::new(1));
        let deps = run_slots(&mut sw, &mut rng, 40);
        assert!(
            deps.iter().any(|d| d.cell.vc() == VcId::new(2)),
            "best-effort must use the freed slots"
        );
    }
}
