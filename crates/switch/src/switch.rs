//! The slot-synchronous switch model, on dense slab storage.
//!
//! Per-circuit state is interned into a slab: the 24-bit VC id indexes a
//! flat `lookup` table of slot numbers, and everything about a circuit —
//! route, credit balance, per-input queues, pending buffer — lives in one
//! `VcSlot`. Cells are `Copy` and queued in a shared [`CellPool`]
//! (free-list arena), so the per-slot hot path relinks `u32` indices
//! instead of walking B-trees and touching the allocator.
//!
//! Per input port the switch keeps two *active lists* — slab slots with a
//! non-empty best-effort / guaranteed queue at that input, **sorted by raw
//! VC id**. The sort order matters: the pre-slab implementation iterated
//! `BTreeMap<VcId, _>` in ascending id order, and its oldest-cell
//! tie-breaks resolve toward the smallest id. The slab switch walks the
//! active lists in the same order, so departures, credit consumption and
//! PIM's RNG stream are byte-identical to [`crate::reference`] (enforced
//! by the reference-equivalence property tests in the `an2` crate).

use an2_cells::signal::TrafficClass;
use an2_cells::{Cell, CellPool, CellQueue, VcId};
use an2_schedule::FrameSchedule;
use an2_sim::SimRng;
use an2_trace::{Entity, TraceEvent, Tracer};
use an2_xbar::{CrossbarScheduler, DemandMatrix, Matching, Pim, Scratch};
use std::fmt;

/// Configuration of one switch.
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// Line cards / crossbar ports (AN2: 16).
    pub ports: usize,
    /// Slots per guaranteed-traffic frame (AN2: 1024).
    pub frame_slots: u32,
    /// PIM iterations per slot (AN2 hardware: 3).
    pub pim_iterations: usize,
    /// Cut-through pipeline depth in slots: a cell arriving in slot `t` may
    /// first cross the crossbar in slot `t + pipeline_slots`. Three ~681 ns
    /// slots ≈ the paper's 2 µs (§1).
    pub pipeline_slots: u64,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            ports: 16,
            frame_slots: 1024,
            pim_iterations: 3,
            pipeline_slots: 3,
        }
    }
}

/// Errors from switch operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwitchError {
    /// The port number exceeds the switch's port count.
    BadPort(usize),
    /// The circuit already has a routing-table entry.
    RouteExists(VcId),
}

impl fmt::Display for SwitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchError::BadPort(p) => write!(f, "port {p} out of range"),
            SwitchError::RouteExists(vc) => write!(f, "{vc} already routed"),
        }
    }
}

impl std::error::Error for SwitchError {}

/// A cell leaving the switch this slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Departure {
    /// Output port the cell leaves on.
    pub output: usize,
    /// The cell itself.
    pub cell: Cell,
    /// The slot in which the cell entered this switch (for latency
    /// accounting).
    pub enqueued_slot: u64,
    /// Path-trace id the cell carried through the switch (`0` = not
    /// sampled). Rides the queue's `aux` tag; see [`Switch::enqueue_traced`].
    pub trace: u32,
}

#[derive(Debug, Clone, Copy)]
struct Route {
    output: usize,
    class: TrafficClass,
}

/// The slab slot number a VC id maps to; `NO_SLOT` = never seen.
const NO_SLOT: u32 = u32::MAX;

/// Everything the switch knows about one circuit. A circuit's per-input
/// queues live in the switch-wide `queues` array (`si * ports + input`);
/// the class of the route says whether they hold best-effort or guaranteed
/// cells — a circuit has exactly one class at a time.
#[derive(Debug)]
struct VcSlot {
    vc: VcId,
    route: Option<Route>,
    /// Credit balance gating best-effort transmission (§5); `None` =
    /// ungated (e.g. the final hop to a host).
    credits: Option<u32>,
    /// Cells that arrived before the routing entry existed: "they will be
    /// buffered until the routing table entry is filled in" (§2). The
    /// queue's `aux` tag records the arrival input port.
    pending_q: CellQueue,
}

/// An active-list entry: the raw VC id in the high half (the sort key) and
/// the slab slot in the low half. Packing the key into the entry keeps the
/// hot binary searches inside the list's own cache lines instead of
/// chasing into the slab per probe.
///
/// The packing cannot collide: raw VC ids are 24-bit ([`VcId::MAX`]), so the
/// shifted key occupies bits 32..56 exactly, and slab indices are `u32`s
/// guarded against the `NO_SLOT` sentinel in `ensure_slot` — two entries are
/// equal iff both the id and the slot agree.
fn entry(vcs: &[VcSlot], si: u32) -> u64 {
    let raw = vcs[si as usize].vc.raw();
    debug_assert!(raw <= VcId::MAX, "VC id wider than the 24-bit key field");
    debug_assert_ne!(si, NO_SLOT, "NO_SLOT sentinel used as a slab index");
    ((raw as u64) << 32) | si as u64
}

/// The slab slot of an active-list entry.
fn entry_slot(e: u64) -> u32 {
    e as u32
}

/// One slot's oldest-eligible dequeue candidate for an (input, output) pair.
/// Valid only while `tag` equals the switch's current slot.
#[derive(Debug, Clone, Copy)]
struct OldestCand {
    tag: u64,
    stamp: u64,
    si: u32,
}

const STALE_CAND: OldestCand = OldestCand {
    tag: u64::MAX,
    stamp: 0,
    si: 0,
};

/// Inserts `si` into an active list kept sorted by raw VC id. No-op if
/// already present.
fn activate(list: &mut Vec<u64>, vcs: &[VcSlot], si: u32) {
    let e = entry(vcs, si);
    if let Err(pos) = list.binary_search(&e) {
        list.insert(pos, e);
    }
}

/// Removes `si` from an active list if present.
fn deactivate(list: &mut Vec<u64>, vcs: &[VcSlot], si: u32) {
    let e = entry(vcs, si);
    if let Ok(pos) = list.binary_search(&e) {
        list.remove(pos);
    }
}

/// One AN2 switch. See the [crate documentation](crate) for the model.
pub struct Switch {
    cfg: SwitchConfig,
    /// Raw VC id → slab slot (`NO_SLOT` when unseen). Grown on demand; ids
    /// are 24-bit so the worst case is bounded, and in practice the fabric
    /// hands out small sequential ids.
    lookup: Vec<u32>,
    vcs: Vec<VcSlot>,
    /// All per-circuit per-input queues, flattened at `si * ports + input`
    /// (one indexed load on the hot path instead of a chase through a
    /// per-circuit vector).
    queues: Vec<CellQueue>,
    /// Per input: packed entries (see [`entry`]) for slab slots with a
    /// non-empty best-effort queue there, sorted by raw VC id (see module
    /// docs).
    be_active: Vec<Vec<u64>>,
    /// Per input: packed entries for slab slots with a non-empty
    /// guaranteed queue there.
    gt_active: Vec<Vec<u64>>,
    pool: CellPool,
    schedule: FrameSchedule,
    pim: Pim,
    slot: u64,
    /// Per output port: the slot *until* which the port is claimed by
    /// control-cell transmission (exclusive). Data phases skip a claimed
    /// output, giving reconfiguration protocol cells §2's priority over both
    /// guaranteed reservations and best-effort matching. All zeros — the
    /// state when [`Switch::reserve_output`] is never called — is inert.
    ctrl_reserved: Vec<u64>,
    /// The earliest future slot at which stepping this switch could change
    /// anything: the next head-of-queue eligibility (enqueue stamp +
    /// pipeline depth, control-reservation expiry) among ineligible queued
    /// cells, the next slot itself whenever any cell moved or could have
    /// moved, or `u64::MAX` when nothing internally scheduled remains.
    /// External events (enqueues, credits, route/schedule changes) clamp it
    /// back down; the fabric skips `step` entirely while `slot` is below it.
    watermark: u64,
    /// Whether [`Switch::step_into`] may use the per-slot oldest-eligible
    /// cache (on by default; the unbatched baseline turns it off — results
    /// are byte-identical either way).
    batched: bool,
    /// Per (input, output): the oldest eligible best-effort candidate found
    /// while building this slot's demand (`tag` marks the slot it belongs
    /// to), replicating `take_oldest`'s min-stamp / lowest-VC-id tie-break
    /// so dequeues on matched pairs are O(1) lookups instead of rescans.
    oldest: Vec<OldestCand>,
    // Reused per-step buffers (allocation-free steady state).
    demand: DemandMatrix,
    matching: Matching,
    crossbar: Matching,
    scratch: Scratch,
    /// Flight-recorder handle, Option-gated like the fabric's fault layer.
    tracer: Option<Tracer>,
    /// The fabric-wide id trace events are attributed to.
    switch_id: u16,
}

impl fmt::Debug for Switch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Switch")
            .field("ports", &self.cfg.ports)
            .field("slot", &self.slot)
            .field(
                "routes",
                &self.vcs.iter().filter(|s| s.route.is_some()).count(),
            )
            .finish()
    }
}

impl Switch {
    /// Creates an idle switch.
    pub fn new(cfg: SwitchConfig) -> Self {
        let ports = cfg.ports;
        let frame = cfg.frame_slots;
        let pim = Pim::new(cfg.pim_iterations);
        Switch {
            cfg,
            lookup: Vec::new(),
            vcs: Vec::new(),
            queues: Vec::new(),
            be_active: vec![Vec::new(); ports],
            gt_active: vec![Vec::new(); ports],
            pool: CellPool::new(),
            schedule: FrameSchedule::new(ports, frame),
            pim,
            slot: 0,
            ctrl_reserved: vec![0; ports],
            watermark: 0,
            batched: true,
            oldest: vec![STALE_CAND; ports * ports],
            demand: DemandMatrix::new(ports),
            matching: Matching::empty(ports),
            crossbar: Matching::empty(ports),
            scratch: Scratch::new(),
            tracer: None,
            switch_id: 0,
        }
    }

    /// Attaches a flight recorder; enqueues, dequeues and credit spends are
    /// emitted attributed to `switch_id`, and the inner PIM scheduler emits
    /// its grants. Tracing observes decisions already made — it cannot
    /// change the matching, the credit accounting, or the RNG stream.
    pub fn attach_tracer(&mut self, tracer: Tracer, switch_id: u16) {
        self.pim.attach_tracer(tracer.clone(), switch_id);
        self.tracer = Some(tracer);
        self.switch_id = switch_id;
    }

    /// The slab slot for `vc`, interning it on first sight.
    fn ensure_slot(&mut self, vc: VcId) -> usize {
        let raw = vc.raw() as usize;
        if raw >= self.lookup.len() {
            self.lookup.resize(raw + 1, NO_SLOT);
        }
        if self.lookup[raw] == NO_SLOT {
            let si = self.vcs.len() as u32;
            // The slab index shares a u32 with the NO_SLOT sentinel and the
            // low half of packed active-list entries; 2³²−1 circuits on one
            // switch would alias both.
            assert_ne!(si, NO_SLOT, "slab full: index would alias NO_SLOT");
            self.lookup[raw] = si;
            self.vcs.push(VcSlot {
                vc,
                route: None,
                credits: None,
                pending_q: CellQueue::new(),
            });
            self.queues
                .extend((0..self.cfg.ports).map(|_| CellQueue::new()));
        }
        self.lookup[raw] as usize
    }

    /// The slab slot for `vc`, if it has ever been seen.
    fn slot_of(&self, vc: VcId) -> Option<usize> {
        self.lookup
            .get(vc.raw() as usize)
            .copied()
            .filter(|&s| s != NO_SLOT)
            .map(|s| s as usize)
    }

    /// Gates a best-effort circuit's outbound transmissions behind a credit
    /// balance (§5). The fabric sets this to the downstream buffer count at
    /// circuit setup.
    pub fn set_credits(&mut self, vc: VcId, credits: u32) {
        let si = self.ensure_slot(vc);
        self.vcs[si].credits = Some(credits);
        self.wake_at(self.slot);
    }

    /// Removes the credit gate for a circuit (used on teardown).
    pub fn clear_credits(&mut self, vc: VcId) {
        if let Some(si) = self.slot_of(vc) {
            self.vcs[si].credits = None;
            self.wake_at(self.slot);
        }
    }

    /// One credit returned from downstream: a buffer was freed there.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is ungated — a stray credit indicates a fabric
    /// accounting bug.
    pub fn add_credit(&mut self, vc: VcId) {
        let si = self.slot_of(vc);
        let c = si
            .and_then(|si| self.vcs[si].credits.as_mut())
            .expect("credit for an ungated circuit");
        *c += 1;
        self.wake_at(self.slot);
    }

    /// The circuit's current credit balance (`None` = ungated).
    pub fn credit_balance(&self, vc: VcId) -> Option<u32> {
        self.slot_of(vc).and_then(|si| self.vcs[si].credits)
    }

    /// As [`Switch::add_credit`] but silently ignoring ungated circuits;
    /// returns whether a credit was added. One slab lookup instead of the
    /// `credit_balance` + `add_credit` pair on the fabric's hot path.
    pub fn try_add_credit(&mut self, vc: VcId) -> bool {
        if let Some(c) = self
            .slot_of(vc)
            .and_then(|si| self.vcs[si].credits.as_mut())
        {
            *c += 1;
            self.wake_at(self.slot);
            true
        } else {
            false
        }
    }

    /// Ports on this switch.
    pub fn ports(&self) -> usize {
        self.cfg.ports
    }

    /// The current slot index.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Advances the slot counter by `n` without stepping, for callers that
    /// have proven the switch idle (zero backlog). Stepping an empty switch
    /// matches no ports, draws no randomness and emits nothing — its only
    /// effect is `slot += 1` — so fast-forwarding `n` idle slots is
    /// byte-identical to stepping them one at a time.
    ///
    /// # Panics
    ///
    /// Debug-asserts the backlog really is zero.
    pub fn advance_idle(&mut self, n: u64) {
        debug_assert_eq!(self.total_backlog(), 0, "advance_idle on a busy switch");
        self.slot += n;
    }

    /// The earliest future slot at which stepping this switch could change
    /// anything (see the `watermark` field); `u64::MAX` when no internally
    /// scheduled work remains. Recomputed by every [`Switch::step_into`] and
    /// clamped down by every externally visible mutation (enqueues, credits,
    /// routes, schedule access), so a caller that skips `step` while
    /// `slot < next_event_slot()` observes byte-identical behaviour: a
    /// below-watermark step matches no ports, draws no randomness and emits
    /// nothing.
    pub fn next_event_slot(&self) -> u64 {
        self.watermark
    }

    /// Clamps the watermark down to `slot` — called by every mutation that
    /// could make an earlier step productive.
    #[inline]
    fn wake_at(&mut self, slot: u64) {
        if slot < self.watermark {
            self.watermark = slot;
        }
    }

    /// Advances the slot counter to `target` without stepping, for callers
    /// that have proven the intervening slots unproductive via
    /// [`Switch::next_event_slot`]. Unlike [`Switch::advance_idle`] this is
    /// legal with cells buffered, as long as none becomes eligible before
    /// `target`.
    ///
    /// # Panics
    ///
    /// Debug-asserts `target` does not move backwards or past the watermark
    /// (a backlogged switch must step at its watermark slot).
    pub fn advance_to(&mut self, target: u64) {
        debug_assert!(target >= self.slot, "advance_to moved backwards");
        debug_assert!(
            self.watermark >= target || self.total_backlog() == 0,
            "advance_to past the next-event watermark of a backlogged switch"
        );
        self.slot = target;
    }

    /// Toggles the per-slot oldest-eligible dequeue cache (on by default).
    /// Purely an engine knob: results are byte-identical either way — the
    /// unbatched baseline exists so the equivalence tests and the N7
    /// experiment can prove it.
    pub fn set_batched(&mut self, on: bool) {
        self.batched = on;
    }

    /// Claims `output` for control-cell transmission through slot
    /// `until_slot` (exclusive): data traffic is not matched to the port
    /// while the claim is live, giving reconfiguration protocol bursts §2's
    /// priority over both guaranteed reservations and best-effort matching.
    /// Claims only extend (max of current and requested horizon), so
    /// back-to-back protocol messages compose. Never calling this is
    /// behaviour-identical to the pre-control-plane switch.
    pub fn reserve_output(&mut self, output: usize, until_slot: u64) {
        if let Some(r) = self.ctrl_reserved.get_mut(output) {
            *r = (*r).max(until_slot);
        }
    }

    /// The slot until which `output` is claimed by control cells
    /// (exclusive); `0` means never claimed.
    pub fn ctrl_reserved_until(&self, output: usize) -> u64 {
        self.ctrl_reserved.get(output).copied().unwrap_or(0)
    }

    /// The guaranteed-traffic frame schedule (for reservation surgery).
    /// Handing out the mutable borrow conservatively wakes the switch: a new
    /// reservation can make the very next slot productive.
    pub fn schedule_mut(&mut self) -> &mut FrameSchedule {
        self.wake_at(self.slot);
        &mut self.schedule
    }

    /// Read access to the frame schedule.
    pub fn schedule(&self) -> &FrameSchedule {
        &self.schedule
    }

    /// Installs a routing-table entry: cells of `vc` leave on `output`.
    /// Cells that arrived before the entry existed are released from the
    /// pending buffer.
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range port or a duplicate entry.
    pub fn install_route(
        &mut self,
        vc: VcId,
        output: usize,
        class: TrafficClass,
    ) -> Result<(), SwitchError> {
        if output >= self.cfg.ports {
            return Err(SwitchError::BadPort(output));
        }
        let si = self.ensure_slot(vc);
        if self.vcs[si].route.is_some() {
            return Err(SwitchError::RouteExists(vc));
        }
        self.vcs[si].route = Some(Route { output, class });
        // Release held cells in arrival order, preserving their stamps.
        let mut held = std::mem::take(&mut self.vcs[si].pending_q);
        while let Some((cell, stamp, input)) = self.pool.pop_front(&mut held) {
            let input = input as usize;
            let q = &mut self.queues[si * self.cfg.ports + input];
            let was_empty = q.is_empty();
            self.pool.push_back(q, cell, stamp, 0);
            if was_empty {
                let list = match class {
                    TrafficClass::BestEffort => &mut self.be_active[input],
                    TrafficClass::Guaranteed { .. } => &mut self.gt_active[input],
                };
                activate(list, &self.vcs, si as u32);
            }
        }
        // Released cells keep their arrival stamps, so the earliest any of
        // them (or a future enqueue) can move is now.
        self.wake_at(self.slot);
        Ok(())
    }

    /// Removes a routing entry (circuit teardown or page-out, §2), dropping
    /// any queued cells of the circuit. Returns how many cells were
    /// discarded.
    pub fn remove_route(&mut self, vc: VcId) -> usize {
        let Some(si) = self.slot_of(vc) else {
            return 0;
        };
        self.vcs[si].route = None;
        let mut dropped = 0;
        for input in 0..self.cfg.ports {
            let n = self
                .pool
                .clear(&mut self.queues[si * self.cfg.ports + input]);
            if n > 0 {
                deactivate(&mut self.be_active[input], &self.vcs, si as u32);
                deactivate(&mut self.gt_active[input], &self.vcs, si as u32);
            }
            dropped += n;
        }
        dropped + self.pool.clear(&mut self.vcs[si].pending_q)
    }

    /// The output port a circuit is routed to, if any.
    pub fn route_of(&self, vc: VcId) -> Option<usize> {
        self.slot_of(vc)
            .and_then(|si| self.vcs[si].route)
            .map(|r| r.output)
    }

    /// Accepts a cell on an input port. Routed cells join their circuit's
    /// queue; unrouted cells wait in the pending buffer.
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range input port.
    pub fn enqueue(&mut self, input: usize, cell: Cell) -> Result<(), SwitchError> {
        self.enqueue_traced(input, cell, 0)
    }

    /// As [`Switch::enqueue`] but tagging the cell with a path-trace id that
    /// rides the queue's `aux` word and comes back on the [`Departure`].
    /// Unrouted cells park in the pending buffer, whose `aux` records the
    /// arrival port instead — a sampled cell that beats its routing entry
    /// loses its id there (the [`TraceEvent::CellEnqueue`] record still
    /// captures the arrival).
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range input port.
    pub fn enqueue_traced(
        &mut self,
        input: usize,
        cell: Cell,
        trace: u32,
    ) -> Result<(), SwitchError> {
        if input >= self.cfg.ports {
            return Err(SwitchError::BadPort(input));
        }
        let si = self.ensure_slot(cell.vc());
        let slot = self.slot;
        let depth;
        match self.vcs[si].route {
            Some(route) => {
                let q = &mut self.queues[si * self.cfg.ports + input];
                let was_empty = q.is_empty();
                self.pool.push_back(q, cell, slot, trace);
                depth = q.len() as u32;
                if was_empty {
                    let list = match route.class {
                        TrafficClass::BestEffort => &mut self.be_active[input],
                        TrafficClass::Guaranteed { .. } => &mut self.gt_active[input],
                    };
                    activate(list, &self.vcs, si as u32);
                }
            }
            None => {
                let q = &mut self.vcs[si].pending_q;
                self.pool.push_back(q, cell, slot, input as u32);
                depth = q.len() as u32;
            }
        }
        if self.vcs[si].route.is_some() {
            // The cell becomes head-of-queue eligible one pipeline depth
            // from its arrival stamp at the earliest; unrouted cells wake
            // the switch through `install_route` instead.
            self.wake_at(slot + self.cfg.pipeline_slots);
        }
        if let Some(t) = &self.tracer {
            t.emit(TraceEvent::CellEnqueue {
                switch: self.switch_id,
                input: input as u16,
                vc: cell.vc().raw(),
                depth,
            });
            t.counter_add("switch.cells_enqueued", Entity::Switch(self.switch_id), 1);
            t.gauge_set(
                "switch.queue_depth",
                Entity::Switch(self.switch_id),
                self.pool.live() as i64,
            );
        }
        Ok(())
    }

    /// Cells of `vc` buffered anywhere in the switch: every input queue
    /// plus the unrouted pending buffer. This is the line-card occupancy a
    /// fault layer's shadow credit receiver must mirror.
    pub fn buffered_cells(&self, vc: VcId) -> usize {
        let Some(si) = self.slot_of(vc) else {
            return 0;
        };
        let mut n = self.vcs[si].pending_q.len();
        for input in 0..self.cfg.ports {
            n += self.queues[si * self.cfg.ports + input].len();
        }
        n
    }

    /// Drops every buffered cell — a line-card crash losing its cell
    /// memory. Routing tables, schedules and credit gates survive (a warm
    /// restart); only the buffered cells are gone. Returns how many cells
    /// each circuit lost, in slab order, so the fabric can charge the loss
    /// to the right circuits and shadow receivers.
    pub fn drop_queued_cells(&mut self) -> Vec<(VcId, usize)> {
        let mut out = Vec::new();
        for si in 0..self.vcs.len() {
            let mut n = self.pool.clear(&mut self.vcs[si].pending_q);
            for input in 0..self.cfg.ports {
                let dropped = self
                    .pool
                    .clear(&mut self.queues[si * self.cfg.ports + input]);
                if dropped > 0 {
                    deactivate(&mut self.be_active[input], &self.vcs, si as u32);
                    deactivate(&mut self.gt_active[input], &self.vcs, si as u32);
                }
                n += dropped;
            }
            if n > 0 {
                out.push((self.vcs[si].vc, n));
            }
        }
        out
    }

    /// Cells queued for a circuit at an input port (any pool).
    pub fn backlog(&self, input: usize, vc: VcId) -> usize {
        self.slot_of(vc)
            .map_or(0, |si| self.queues[si * self.cfg.ports + input].len())
    }

    /// Total cells buffered anywhere in the switch (including pending).
    pub fn total_backlog(&self) -> usize {
        // Every queue in the switch draws from the one pool, so its live
        // count *is* the total backlog.
        self.pool.live()
    }

    /// Advances one cell slot: serves the frame schedule first, donates idle
    /// reserved slots, runs PIM for best-effort traffic over the remaining
    /// ports, and returns every departing cell.
    pub fn step(&mut self, rng: &mut SimRng) -> Vec<Departure> {
        let mut departures = Vec::new();
        self.step_into(rng, &mut departures);
        departures
    }

    /// As [`Switch::step`], but appending into a caller-owned buffer —
    /// without clearing it, so the fabric's slot loop can batch several
    /// switches' departures into one reused allocation and commit them
    /// after the whole compute phase.
    pub fn step_into(&mut self, rng: &mut SimRng, departures: &mut Vec<Departure>) {
        let n = self.cfg.ports;
        let frame_slot = (self.slot % self.cfg.frame_slots as u64) as u32;
        self.crossbar.reset(n);

        // Phase 1 — guaranteed traffic takes its reserved pairings (§4).
        // With no guaranteed cell buffered anywhere the phase cannot touch
        // the crossbar (an idle reservation leaves its pair free), so an
        // all-best-effort switch skips the schedule lookups entirely.
        if self.gt_active.iter().any(|l| !l.is_empty()) {
            for input in 0..n {
                if let Some(output) = self.schedule.output_in_slot(frame_slot, input) {
                    if self.ctrl_reserved[output] > self.slot {
                        continue; // port carrying a control burst this slot
                    }
                    if let Some((cell, enqueued_slot, trace)) = take_oldest(
                        &mut self.pool,
                        &mut self.vcs,
                        &mut self.queues,
                        &mut self.gt_active[input],
                        self.slot,
                        self.cfg.pipeline_slots,
                        self.cfg.ports,
                        input,
                        output,
                        false,
                    ) {
                        self.crossbar.set(input, output);
                        if let Some(t) = &self.tracer {
                            t.emit(TraceEvent::CellDequeue {
                                switch: self.switch_id,
                                output: output as u16,
                                vc: cell.vc().raw(),
                                queued_slots: self.slot - enqueued_slot,
                            });
                            t.gauge_set(
                                "switch.queue_depth",
                                Entity::Switch(self.switch_id),
                                self.pool.live() as i64,
                            );
                        }
                        departures.push(Departure {
                            output,
                            cell,
                            enqueued_slot,
                            trace,
                        });
                    }
                    // "Best-effort cells can use an allocated slot if no cell
                    // from the scheduled virtual circuit is present" — by not
                    // claiming the pair here, it stays free for phase 2.
                }
            }
        }

        // Phase 2 — PIM over everything still free (§3). Demand marks the
        // (input, output) pairs with an eligible cell behind a free output.
        // Stamps are non-decreasing along each queue (FIFO of a monotone
        // clock), so eligibility is decided by the front cell alone — and
        // PIM's grant/accept rounds read only the request *masks*, never the
        // queue depths, so registering one cell per pair yields the same
        // matching and the same RNG stream as registering the full count.
        self.demand.clear();
        let mut any_demand = false;
        // The earliest future slot an entry examined here becomes eligible
        // (pipeline depth or reservation expiry) — the watermark candidate
        // when nothing moves this slot.
        let mut wake = u64::MAX;
        for input in 0..n {
            if !self.crossbar.input_free(input) {
                continue;
            }
            for &e in &self.be_active[input] {
                let si = entry_slot(e) as usize;
                let s = &self.vcs[si];
                let Some(route) = s.route else {
                    continue;
                };
                if !self.crossbar.output_free(route.output) || s.credits.is_some_and(|c| c == 0) {
                    // A claimed output means the crossbar is non-empty (the
                    // watermark lands on the next slot anyway); a starved
                    // circuit is woken by the credit's arrival.
                    continue;
                }
                // Active lists only hold non-empty queues, and the queue
                // handle mirrors its head stamp — no pool access needed.
                let stamp = self.queues[si * n + input].front_stamp();
                let eligible_at =
                    (stamp + self.cfg.pipeline_slots).max(self.ctrl_reserved[route.output]);
                if self.slot >= eligible_at {
                    if self.batched {
                        // Track the oldest eligible candidate per pair with
                        // `take_oldest`'s exact tie-break (strict improvement
                        // over a list sorted by VC id), so a matched pair
                        // dequeues without rescanning the active list.
                        let c = &mut self.oldest[input * n + route.output];
                        if c.tag != self.slot || stamp < c.stamp {
                            *c = OldestCand {
                                tag: self.slot,
                                stamp,
                                si: si as u32,
                            };
                        }
                    }
                    self.demand.add(input, route.output, 1);
                    any_demand = true;
                } else {
                    wake = wake.min(eligible_at);
                }
            }
            // Guaranteed circuits with backlog may also use free slots via
            // the matching (they behave like best-effort for excess cells
            // *of an already-reserved circuit* only through their schedule;
            // the paper gives spare slots to best-effort cells, so
            // guaranteed queues wait for their reservations).
        }
        // PIM on an empty demand matrix grants nothing and consumes no
        // randomness (no output has requesters), so skipping it — and the
        // walk over the stale matching — is observationally identical.
        if any_demand {
            self.pim
                .schedule_into(&self.demand, rng, &mut self.scratch, &mut self.matching);
            for (input, output) in self.matching.iter() {
                let (cell, enqueued_slot, trace) = if self.batched {
                    // The demand scan already found the oldest eligible
                    // circuit for this pair (same candidate set, same
                    // tie-break as `take_oldest`): dequeue it directly
                    // instead of rescanning the active list.
                    let c = self.oldest[input * n + output];
                    debug_assert_eq!(c.tag, self.slot, "stale cache for a matched pair");
                    let si = c.si;
                    if let Some(cr) = self.vcs[si as usize].credits.as_mut() {
                        *cr -= 1;
                    }
                    let q = &mut self.queues[si as usize * n + input];
                    let popped = self.pool.pop_front(q).expect("cached queue is non-empty");
                    if q.is_empty() {
                        deactivate(&mut self.be_active[input], &self.vcs, si);
                    }
                    Some(popped)
                } else {
                    take_oldest(
                        &mut self.pool,
                        &mut self.vcs,
                        &mut self.queues,
                        &mut self.be_active[input],
                        self.slot,
                        self.cfg.pipeline_slots,
                        self.cfg.ports,
                        input,
                        output,
                        true,
                    )
                }
                .expect("PIM matched a pair with demand");
                self.crossbar.set(input, output);
                if let Some(t) = &self.tracer {
                    t.emit(TraceEvent::CellDequeue {
                        switch: self.switch_id,
                        output: output as u16,
                        vc: cell.vc().raw(),
                        queued_slots: self.slot - enqueued_slot,
                    });
                    t.gauge_set(
                        "switch.queue_depth",
                        Entity::Switch(self.switch_id),
                        self.pool.live() as i64,
                    );
                    if let Some(balance) = self.credit_balance(cell.vc()) {
                        t.emit(TraceEvent::CreditConsume {
                            vc: cell.vc().raw(),
                            balance,
                        });
                    }
                }
                departures.push(Departure {
                    output,
                    cell,
                    enqueued_slot,
                    trace,
                });
            }
        }

        // Recompute the next-event watermark. Anything that moved or could
        // still move keeps the switch hot for the next slot: a claimed
        // crossbar pair, registered best-effort demand, or a guaranteed
        // backlog (frame reservations recur every frame, so a buffered
        // guaranteed cell is never more than one frame from service — we
        // conservatively stay slot-by-slot). Otherwise the earliest future
        // eligibility seen in the demand scan is the next event; external
        // arrivals clamp the watermark down through `wake_at`.
        let gt_busy = self.gt_active.iter().any(|l| !l.is_empty());
        self.slot += 1;
        self.watermark = if !self.crossbar.is_empty() || any_demand || gt_busy {
            self.slot
        } else {
            wake
        };
    }
}

/// Dequeues the oldest eligible cell at `input` routed to `output` from the
/// circuits on `active` (sorted by VC id, so ties on age resolve toward the
/// smallest id — the B-tree iteration order of the reference switch). With
/// `consume_credit`, skips credit-starved circuits and charges the winner.
#[allow(clippy::too_many_arguments)]
fn take_oldest(
    pool: &mut CellPool,
    vcs: &mut [VcSlot],
    queues: &mut [CellQueue],
    active: &mut Vec<u64>,
    slot: u64,
    pipeline_slots: u64,
    ports: usize,
    input: usize,
    output: usize,
    consume_credit: bool,
) -> Option<(Cell, u64, u32)> {
    let mut best: Option<(u32, u64)> = None;
    for &e in active.iter() {
        let si = entry_slot(e);
        let s = &vcs[si as usize];
        let routed_here = s.route.map(|r| r.output) == Some(output);
        if !routed_here || (consume_credit && s.credits.is_some_and(|c| c == 0)) {
            continue;
        }
        // Active lists only hold non-empty queues; the handle's mirrored
        // head stamp avoids a pool-node dereference per candidate.
        let stamp = queues[si as usize * ports + input].front_stamp();
        if slot < stamp + pipeline_slots {
            continue;
        }
        if best.is_none_or(|(_, b)| stamp < b) {
            best = Some((si, stamp));
        }
    }
    let (si, _) = best?;
    if consume_credit {
        if let Some(c) = vcs[si as usize].credits.as_mut() {
            *c -= 1;
        }
    }
    let q = &mut queues[si as usize * ports + input];
    let (cell, stamp, trace) = pool.pop_front(q).expect("chosen queue is non-empty");
    if q.is_empty() {
        deactivate(active, vcs, si);
    }
    Some((cell, stamp, trace))
}
#[cfg(test)]
mod tests {
    use super::*;
    use an2_cells::CellKind;
    use an2_cells::PAYLOAD_BYTES;

    fn cfg_small() -> SwitchConfig {
        SwitchConfig {
            ports: 4,
            frame_slots: 8,
            pim_iterations: 3,
            pipeline_slots: 3,
        }
    }

    fn cell(vc: u32) -> Cell {
        Cell::new(VcId::new(vc), CellKind::Data, [0; PAYLOAD_BYTES])
    }

    fn run_slots(sw: &mut Switch, rng: &mut SimRng, slots: u64) -> Vec<Departure> {
        let mut out = Vec::new();
        for _ in 0..slots {
            out.extend(sw.step(rng));
        }
        out
    }

    #[test]
    fn cut_through_latency_is_pipeline_depth() {
        // E2: an uncontended cell leaves pipeline_slots after arrival —
        // 3 slots ≈ 2 µs at 622 Mb/s.
        let mut sw = Switch::new(cfg_small());
        sw.install_route(VcId::new(1), 2, TrafficClass::BestEffort)
            .unwrap();
        sw.enqueue(0, cell(1)).unwrap();
        let mut rng = SimRng::new(1);
        let mut deps = Vec::new();
        for s in 0..10u64 {
            for d in sw.step(&mut rng) {
                deps.push((s, d));
            }
        }
        assert_eq!(deps.len(), 1);
        let (departed_slot, d) = &deps[0];
        assert_eq!(*departed_slot, 3, "pipeline is 3 slots");
        assert_eq!(d.output, 2);
        assert_eq!(d.enqueued_slot, 0);
    }

    #[test]
    fn reserved_output_defers_data_until_claim_expires() {
        // A control burst claims output 2 for slots 0..6; the best-effort
        // cell that would have left at slot 3 leaves at 6 instead.
        let mut sw = Switch::new(cfg_small());
        sw.install_route(VcId::new(1), 2, TrafficClass::BestEffort)
            .unwrap();
        sw.enqueue(0, cell(1)).unwrap();
        sw.reserve_output(2, 6);
        assert_eq!(sw.ctrl_reserved_until(2), 6);
        let mut rng = SimRng::new(1);
        let mut deps = Vec::new();
        for s in 0..10u64 {
            for d in sw.step(&mut rng) {
                deps.push((s, d.output));
            }
        }
        assert_eq!(deps, vec![(6, 2)]);
    }

    #[test]
    fn unrouted_cells_wait_for_route_install() {
        // §2: cells arriving before the setup completes "will be buffered
        // until the routing table entry is filled in."
        let mut sw = Switch::new(cfg_small());
        sw.enqueue(1, cell(9)).unwrap();
        let mut rng = SimRng::new(2);
        assert!(run_slots(&mut sw, &mut rng, 5).is_empty());
        assert_eq!(sw.total_backlog(), 1);
        sw.install_route(VcId::new(9), 3, TrafficClass::BestEffort)
            .unwrap();
        let deps = run_slots(&mut sw, &mut rng, 10);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].output, 3);
    }

    #[test]
    fn route_management_errors() {
        let mut sw = Switch::new(cfg_small());
        assert_eq!(
            sw.install_route(VcId::new(1), 9, TrafficClass::BestEffort),
            Err(SwitchError::BadPort(9))
        );
        sw.install_route(VcId::new(1), 1, TrafficClass::BestEffort)
            .unwrap();
        assert_eq!(
            sw.install_route(VcId::new(1), 2, TrafficClass::BestEffort),
            Err(SwitchError::RouteExists(VcId::new(1)))
        );
        assert_eq!(sw.route_of(VcId::new(1)), Some(1));
        assert!(sw.enqueue(7, cell(1)).is_err());
        assert!(SwitchError::BadPort(9).to_string().contains("9"));
    }

    #[test]
    fn remove_route_drops_queued_cells() {
        let mut sw = Switch::new(cfg_small());
        sw.install_route(VcId::new(5), 0, TrafficClass::BestEffort)
            .unwrap();
        sw.enqueue(1, cell(5)).unwrap();
        sw.enqueue(1, cell(5)).unwrap();
        assert_eq!(sw.remove_route(VcId::new(5)), 2);
        assert_eq!(sw.total_backlog(), 0);
        assert_eq!(sw.route_of(VcId::new(5)), None);
    }

    #[test]
    fn blocked_circuit_does_not_block_others() {
        // Random-access input buffers (§3): vc1 and vc2 share input 0; vc1's
        // output is monopolized by guaranteed traffic, vc2 still flows.
        let mut sw = Switch::new(cfg_small());
        sw.install_route(VcId::new(1), 1, TrafficClass::BestEffort)
            .unwrap();
        sw.install_route(VcId::new(2), 2, TrafficClass::BestEffort)
            .unwrap();
        // A guaranteed circuit from input 3 hogs output 1 every slot.
        sw.install_route(
            VcId::new(7),
            1,
            TrafficClass::Guaranteed { cells_per_frame: 8 },
        )
        .unwrap();
        for s in 0..8 {
            sw.schedule_mut().insert(3, 1).unwrap();
            let _ = s;
        }
        let mut rng = SimRng::new(3);
        // Keep the guaranteed queue full so output 1 is always taken.
        for _ in 0..40 {
            sw.enqueue(3, cell(7)).unwrap();
        }
        sw.enqueue(0, cell(1)).unwrap(); // blocked behind guaranteed hog
        sw.enqueue(0, cell(2)).unwrap(); // must still flow to output 2
        let deps = run_slots(&mut sw, &mut rng, 20);
        assert!(
            deps.iter().any(|d| d.cell.vc() == VcId::new(2)),
            "vc2 was blocked by vc1's contention: head-of-line blocking!"
        );
    }

    #[test]
    fn guaranteed_gets_reserved_slots_under_congestion() {
        // Input 0 carries a guaranteed circuit to output 1 with 4/8 slots
        // reserved; inputs 2 and 3 flood output 1 with best-effort. The
        // guaranteed circuit still gets its 4 cells per frame.
        let mut sw = Switch::new(cfg_small());
        sw.install_route(
            VcId::new(1),
            1,
            TrafficClass::Guaranteed { cells_per_frame: 4 },
        )
        .unwrap();
        for _ in 0..4 {
            sw.schedule_mut().insert(0, 1).unwrap();
        }
        sw.install_route(VcId::new(2), 1, TrafficClass::BestEffort)
            .unwrap();
        sw.install_route(VcId::new(3), 1, TrafficClass::BestEffort)
            .unwrap();
        let mut rng = SimRng::new(4);
        // Saturate all sources for 10 frames.
        let mut gt_delivered = 0;
        for slot in 0..80u64 {
            sw.enqueue(0, cell(1)).unwrap();
            sw.enqueue(2, cell(2)).unwrap();
            sw.enqueue(3, cell(3)).unwrap();
            for d in sw.step(&mut rng) {
                if d.cell.vc() == VcId::new(1) {
                    gt_delivered += 1;
                }
            }
            let _ = slot;
        }
        // 10 frames × 4 reserved = 40, minus pipeline warm-up of the first
        // frame; at least 9 frames' worth must get through.
        assert!(
            gt_delivered >= 36,
            "guaranteed circuit got only {gt_delivered} of ~40 reserved slots"
        );
    }

    #[test]
    fn idle_reserved_slots_are_donated_to_best_effort() {
        // §4: "best-effort cells can use an allocated slot if no cell from
        // the scheduled virtual circuit is present at the switch."
        let mut sw = Switch::new(cfg_small());
        // Guaranteed circuit (input 0 → output 1) reserves every slot but
        // sends nothing.
        sw.install_route(
            VcId::new(1),
            1,
            TrafficClass::Guaranteed { cells_per_frame: 8 },
        )
        .unwrap();
        for _ in 0..8 {
            sw.schedule_mut().insert(0, 1).unwrap();
        }
        // Best-effort from input 2 to output 1.
        sw.install_route(VcId::new(2), 1, TrafficClass::BestEffort)
            .unwrap();
        let mut rng = SimRng::new(5);
        for _ in 0..20 {
            sw.enqueue(2, cell(2)).unwrap();
        }
        let deps = run_slots(&mut sw, &mut rng, 20);
        assert!(
            deps.iter().filter(|d| d.cell.vc() == VcId::new(2)).count() >= 15,
            "idle reserved slots must be usable by best-effort traffic"
        );
    }

    #[test]
    fn full_permutation_throughput() {
        // All four inputs send to distinct outputs: one cell per input per
        // slot must flow once the pipeline fills.
        let mut sw = Switch::new(cfg_small());
        for i in 0..4u32 {
            sw.install_route(
                VcId::new(i + 1),
                ((i + 1) % 4) as usize,
                TrafficClass::BestEffort,
            )
            .unwrap();
        }
        let mut rng = SimRng::new(6);
        let mut delivered = 0;
        for _ in 0..100u64 {
            for i in 0..4 {
                sw.enqueue(i as usize, cell(i + 1)).unwrap();
            }
            delivered += sw.step(&mut rng).len();
        }
        assert!(delivered >= 4 * (100 - 4), "delivered {delivered}");
    }

    #[test]
    fn per_vc_fifo_order_is_preserved() {
        let mut sw = Switch::new(cfg_small());
        sw.install_route(VcId::new(1), 1, TrafficClass::BestEffort)
            .unwrap();
        let mut payload = [0u8; PAYLOAD_BYTES];
        let mut rng = SimRng::new(7);
        for k in 0..10u8 {
            payload[0] = k;
            sw.enqueue(0, Cell::new(VcId::new(1), CellKind::Data, payload))
                .unwrap();
        }
        let deps = run_slots(&mut sw, &mut rng, 20);
        let order: Vec<u8> = deps.iter().map(|d| d.cell.payload[0]).collect();
        assert_eq!(order, (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn backlog_accounting() {
        let mut sw = Switch::new(cfg_small());
        sw.install_route(VcId::new(1), 1, TrafficClass::BestEffort)
            .unwrap();
        sw.enqueue(0, cell(1)).unwrap();
        sw.enqueue(0, cell(1)).unwrap();
        sw.enqueue(2, cell(1)).unwrap();
        assert_eq!(sw.backlog(0, VcId::new(1)), 2);
        assert_eq!(sw.backlog(2, VcId::new(1)), 1);
        assert_eq!(sw.total_backlog(), 3);
    }

    #[test]
    fn credit_gate_throttles_best_effort() {
        let mut sw = Switch::new(cfg_small());
        sw.install_route(VcId::new(1), 1, TrafficClass::BestEffort)
            .unwrap();
        sw.set_credits(VcId::new(1), 2);
        let mut rng = SimRng::new(8);
        for _ in 0..10 {
            sw.enqueue(0, cell(1)).unwrap();
        }
        let deps = run_slots(&mut sw, &mut rng, 20);
        assert_eq!(deps.len(), 2, "only two credits were available");
        assert_eq!(sw.credit_balance(VcId::new(1)), Some(0));
        // Returning credits releases more cells.
        sw.add_credit(VcId::new(1));
        sw.add_credit(VcId::new(1));
        sw.add_credit(VcId::new(1));
        let deps = run_slots(&mut sw, &mut rng, 10);
        assert_eq!(deps.len(), 3);
        // Ungating drains the rest.
        sw.clear_credits(VcId::new(1));
        let deps = run_slots(&mut sw, &mut rng, 10);
        assert_eq!(deps.len(), 5);
    }

    #[test]
    fn blocked_by_credits_does_not_block_other_circuits() {
        // The §5 property motivating per-VC buffers: one stalled circuit
        // must not affect others sharing its input and output.
        let mut sw = Switch::new(cfg_small());
        sw.install_route(VcId::new(1), 1, TrafficClass::BestEffort)
            .unwrap();
        sw.install_route(VcId::new(2), 1, TrafficClass::BestEffort)
            .unwrap();
        sw.set_credits(VcId::new(1), 0); // vc1 stalled: downstream is full
        let mut rng = SimRng::new(9);
        for _ in 0..5 {
            sw.enqueue(0, cell(1)).unwrap();
            sw.enqueue(0, cell(2)).unwrap();
        }
        let deps = run_slots(&mut sw, &mut rng, 15);
        assert_eq!(deps.len(), 5);
        assert!(deps.iter().all(|d| d.cell.vc() == VcId::new(2)));
    }

    #[test]
    #[should_panic(expected = "ungated circuit")]
    fn stray_credit_panics() {
        let mut sw = Switch::new(cfg_small());
        sw.add_credit(VcId::new(3));
    }

    #[test]
    fn debug_format_is_informative() {
        let sw = Switch::new(cfg_small());
        let s = format!("{sw:?}");
        assert!(s.contains("ports") && s.contains("4"));
    }

    #[test]
    fn two_guaranteed_circuits_share_a_reserved_pair_fairly() {
        // Two guaranteed circuits enter on the same input and leave on the
        // same output; the schedule reserves the pair every slot. The
        // oldest-cell rule shares the slots between them.
        let mut sw = Switch::new(cfg_small());
        for vc in [1u32, 2] {
            sw.install_route(
                VcId::new(vc),
                1,
                TrafficClass::Guaranteed { cells_per_frame: 4 },
            )
            .unwrap();
        }
        for _ in 0..8 {
            sw.schedule_mut().insert(0, 1).unwrap();
        }
        let mut rng = SimRng::new(12);
        let mut served = [0u64; 2];
        for _ in 0..80u64 {
            sw.enqueue(0, cell(1)).unwrap();
            sw.enqueue(0, cell(2)).unwrap();
            for d in sw.step(&mut rng) {
                served[(d.cell.vc().raw() - 1) as usize] += 1;
            }
        }
        let total = served[0] + served[1];
        assert!(total >= 70, "reserved slots must be used: {served:?}");
        let diff = served[0].abs_diff(served[1]);
        assert!(
            diff <= 2,
            "unfair split between co-scheduled circuits: {served:?}"
        );
    }

    #[test]
    fn trace_id_rides_the_queue_and_tracing_changes_nothing() {
        use an2_trace::{Entity, TraceConfig, Tracer};
        let build = || {
            let mut sw = Switch::new(cfg_small());
            sw.install_route(VcId::new(1), 2, TrafficClass::BestEffort)
                .unwrap();
            sw.install_route(VcId::new(2), 1, TrafficClass::BestEffort)
                .unwrap();
            sw
        };
        let drive = |sw: &mut Switch, traced: bool| -> Vec<Departure> {
            let mut rng = SimRng::new(31);
            let mut out = Vec::new();
            for k in 0..30u32 {
                if traced {
                    sw.enqueue_traced(0, cell(1), 100 + k).unwrap();
                } else {
                    sw.enqueue(0, cell(1)).unwrap();
                }
                sw.enqueue(3, cell(2)).unwrap();
                out.extend(sw.step(&mut rng));
            }
            out
        };

        let mut plain = build();
        let baseline = drive(&mut plain, false);

        let tracer = Tracer::new(TraceConfig::default());
        let mut sw = build();
        sw.attach_tracer(tracer.clone(), 6);
        let traced = drive(&mut sw, true);

        // Same departures in the same order (ignoring the trace tag).
        assert_eq!(baseline.len(), traced.len());
        for (a, b) in baseline.iter().zip(&traced) {
            assert_eq!(
                (a.output, a.cell, a.enqueued_slot),
                (b.output, b.cell, b.enqueued_slot)
            );
        }
        // Tags survive the switch in FIFO order for the tagged circuit.
        let tags: Vec<u32> = traced
            .iter()
            .filter(|d| d.cell.vc() == VcId::new(1))
            .map(|d| d.trace)
            .collect();
        assert!(!tags.is_empty());
        assert!(tags.iter().enumerate().all(|(i, &t)| t == 100 + i as u32));
        // Untagged circuit departs with trace = 0.
        assert!(traced
            .iter()
            .filter(|d| d.cell.vc() == VcId::new(2))
            .all(|d| d.trace == 0));
        // Events and counters landed.
        assert_eq!(
            tracer.counter("switch.cells_enqueued", Entity::Switch(6)),
            60
        );
        let records = tracer.records();
        assert!(records.iter().any(|r| r.event.kind() == "cell_enqueue"));
        assert!(records.iter().any(|r| r.event.kind() == "cell_dequeue"));
        assert!(records.iter().any(|r| r.event.kind() == "xbar_grant"));
    }

    #[test]
    fn schedule_removal_returns_slots_to_best_effort() {
        let mut sw = Switch::new(cfg_small());
        sw.install_route(
            VcId::new(1),
            1,
            TrafficClass::Guaranteed { cells_per_frame: 8 },
        )
        .unwrap();
        for _ in 0..8 {
            sw.schedule_mut().insert(0, 1).unwrap();
        }
        sw.install_route(VcId::new(2), 1, TrafficClass::BestEffort)
            .unwrap();
        let mut rng = SimRng::new(13);
        // Keep the guaranteed queue saturated: best-effort gets nothing.
        for _ in 0..30 {
            sw.enqueue(0, cell(1)).unwrap();
            sw.enqueue(2, cell(2)).unwrap();
        }
        let deps = run_slots(&mut sw, &mut rng, 10);
        assert!(deps.iter().all(|d| d.cell.vc() == VcId::new(1)));
        // Tear the reservation down: best-effort flows again.
        while sw.schedule_mut().remove(0, 1).is_some() {}
        sw.remove_route(VcId::new(1));
        let deps = run_slots(&mut sw, &mut rng, 40);
        assert!(
            deps.iter().any(|d| d.cell.vc() == VcId::new(2)),
            "best-effort must use the freed slots"
        );
    }
}
