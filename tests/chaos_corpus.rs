//! Chaos-corpus replay: every schedule persisted under
//! `tests/chaos_corpus/` is a pinned regression. Each file must (a) parse,
//! (b) survive the strengthened oracle with zero violations, and (c)
//! replay byte-identically — the digest of two fresh runs of the same
//! schedule must agree.
//!
//! Files land here in two ways: seeded pins covering each campaign
//! scenario, and minimal repros written by the shrinker when a campaign
//! cell violates the oracle (in which case the fix that closes the bug
//! flips the file from "expected failure" to a pinned survivor before it
//! is committed).

use an2_chaos::corpus::load_dir;
use an2_chaos::oracle::run_schedule;
use std::path::Path;

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/chaos_corpus"))
}

#[test]
fn corpus_is_present_and_parses() {
    let corpus = load_dir(corpus_dir()).expect("corpus parses");
    assert!(
        corpus.len() >= 5,
        "expected the seeded corpus, found {} files",
        corpus.len()
    );
    for (path, schedule) in &corpus {
        assert!(
            !schedule.name.is_empty() && schedule.run_slots > 0,
            "{} is degenerate",
            path.display()
        );
    }
}

#[test]
fn corpus_replays_with_zero_violations_and_identical_digests() {
    let corpus = load_dir(corpus_dir()).expect("corpus parses");
    let mut failures = Vec::new();
    for (path, schedule) in &corpus {
        let first = run_schedule(schedule);
        if !first.violations.is_empty() {
            failures.push(format!(
                "{}: violations {:?}",
                path.display(),
                first.violations
            ));
            continue;
        }
        let second = run_schedule(schedule);
        if first.digest != second.digest {
            failures.push(format!(
                "{}: replay diverged ({:#x} vs {:#x})",
                path.display(),
                first.digest,
                second.digest
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "corpus regressions:\n{}",
        failures.join("\n")
    );
}

/// The same corpus, replayed under the arena rivals. The rivals have no
/// harness/canonical-path oracle, so the recorded legs are the
/// protocol-agnostic ones — per-slot invariants and the delivery floor —
/// and the replay-determinism contract (same schedule, same digest).
#[test]
fn corpus_replays_under_rival_protocols() {
    use an2::ProtocolKind;
    use an2_chaos::oracle::run_schedule_with;

    let corpus = load_dir(corpus_dir()).expect("corpus parses");
    let mut failures = Vec::new();
    for kind in [ProtocolKind::SpanningTree, ProtocolKind::PathVector] {
        for (i, (path, schedule)) in corpus.iter().enumerate() {
            let report = run_schedule_with(schedule, kind);
            if !report.violations.is_empty() {
                failures.push(format!(
                    "{} under {kind:?}: violations {:?}",
                    path.display(),
                    report.violations
                ));
                continue;
            }
            // Replay determinism, spot-checked on the first schedule per
            // rival (every run above already exercises the digest path).
            if i == 0 {
                let second = run_schedule_with(schedule, kind);
                if report.digest != second.digest {
                    failures.push(format!(
                        "{} under {kind:?}: replay diverged ({:#x} vs {:#x})",
                        path.display(),
                        report.digest,
                        second.digest
                    ));
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "rival corpus regressions:\n{}",
        failures.join("\n")
    );
}
