//! Integration: the distributed reconfiguration protocol's output feeds
//! up*/down* routing, exactly as in AN1/AN2 — the spanning tree built
//! during reconfiguration (§2) defines the link orientations that make
//! best-effort routing deadlock-free (§5).

use an2_reconfig::harness::ReconfigNet;
use an2_sim::SimRng;
use an2_topology::{generators, updown, SwitchId};

fn converged_net(topo: an2_topology::Topology, seed: u64) -> ReconfigNet {
    let mut net = ReconfigNet::with_defaults(topo, seed);
    net.run_to_quiescence();
    assert!(net.converged());
    net
}

#[test]
fn reconfig_tree_yields_deadlock_free_updown_routes() {
    let mut rng = SimRng::new(404);
    let topologies = vec![
        generators::ring(8),
        generators::torus(3, 4),
        generators::src_installation(10, 0),
        generators::random_connected(20, 15, &mut rng),
    ];
    for topo in topologies {
        let net = converged_net(topo, 5);
        let tree = net.spanning_tree(SwitchId(0));
        // The propagation-order tree, used for up*/down*, must make every
        // all-pairs route set free of dependency cycles.
        assert!(
            updown::all_pairs_updown_deadlock_free(net.topology(), &tree),
            "reconfiguration tree produced a deadlock-prone orientation"
        );
        // And every pair must be routable.
        for s in net.topology().switches() {
            for t in net.topology().switches() {
                let r = updown::route(net.topology(), &tree, s, t)
                    .expect("connected topology must route");
                assert!(updown::is_legal_path(&tree, &r));
            }
        }
    }
}

#[test]
fn updown_routes_recomputed_after_failure() {
    let mut net = converged_net(generators::src_installation(8, 0), 6);
    // Fail a backbone link, reconverge, rebuild the tree and routes.
    let link = net.topology().links_between(SwitchId(2), SwitchId(3))[0];
    net.kill_link(link);
    net.run_to_quiescence();
    assert!(net.converged());
    let tree = net.spanning_tree(SwitchId(0));
    for s in net.topology().switches() {
        assert!(tree.contains(s), "{s} missing after reconfiguration");
    }
    assert!(updown::all_pairs_updown_deadlock_free(
        net.topology(),
        &tree
    ));
    // Routes avoid the dead link: every hop must be a working adjacency.
    for s in net.topology().switches() {
        for t in net.topology().switches() {
            let r = updown::route(net.topology(), &tree, s, t).unwrap();
            for w in r.windows(2) {
                assert!(
                    !net.topology().links_between(w[0], w[1]).is_empty(),
                    "route uses dead adjacency {w:?}"
                );
            }
        }
    }
}

#[test]
fn propagation_tree_root_is_highest_tag_initiator() {
    // With simultaneous initiators, the surviving configuration's root is
    // its initiator, and all switches agree on it.
    let net = converged_net(generators::mesh(3, 3), 7);
    let tree0 = net.spanning_tree(SwitchId(0));
    let tree8 = net.spanning_tree(SwitchId(8));
    assert_eq!(tree0.root(), tree8.root());
    assert_eq!(tree0, tree8, "all switches reconstruct the same tree");
}

#[test]
fn updown_inflation_is_modest_on_realistic_installations() {
    // §5: "Up*/down* routing may eliminate some potential routes and thus
    // have a negative effect on performance. The impact depends on both
    // the topology and the workload." On a well-connected installation the
    // mean inflation stays small.
    let net = converged_net(generators::src_installation(12, 0), 8);
    let tree = net.spanning_tree(SwitchId(0));
    let inflation = updown::path_inflation(net.topology(), &tree).unwrap();
    assert!(
        inflation < 1.5,
        "mean up*/down* inflation {inflation:.3} is suspiciously high"
    );
    assert!(inflation >= 1.0);
}
