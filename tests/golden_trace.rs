//! Golden-trace test: replay the N4 failure scenario with the flight
//! recorder attached and assert the *recording* tells the paper's story —
//! the monitor's dead verdict, then the reconfiguration phase transitions
//! in golden order, the whole span under the 200 ms budget, and sampled
//! cells whose hop-by-hop journeys reconstruct end to end.

use an2::{
    sink, ControlPlaneConfig, FaultSpec, FlapEvent, Network, Phase, PhaseEdge, SkepticConfig,
    TraceConfig, TraceEvent, Tracer,
};
use an2_cells::{LinkRate, Packet};
use an2_sim::SimDuration;
use an2_topology::{LinkId, Node};
use an2_trace::ObservatoryConfig;

/// 200 ms, in nanoseconds of virtual time.
const BUDGET_NS: u64 = 200_000_000;

/// The first inter-switch link of the topology — the N4 victim.
fn backbone_link(net: &Network) -> LinkId {
    let topo = net.topology();
    topo.links()
        .find(|&l| {
            let (a, b) = topo.endpoints(l);
            matches!((a.node, b.node), (Node::Switch(_), Node::Switch(_)))
        })
        .expect("installation has no inter-switch link")
}

/// The N4 fail cell, traced: a backbone link dies for good at slot 40 000
/// under steady best-effort load, and the run continues until the embedded
/// control plane has converged on the survivor topology.
fn drive_failure() -> (Network, Tracer, LinkId, u64) {
    let mut net = Network::builder().src_installation(4, 8).seed(7).build();
    let victim = backbone_link(&net);
    let hosts: Vec<_> = net.hosts().collect();
    let mut circuits = Vec::new();
    for pair in hosts.chunks(2) {
        if let [a, b] = *pair {
            circuits.push(net.open_best_effort(a, b).expect("open circuit"));
        }
    }
    let down_at = 40_000u64;
    let mut spec = FaultSpec {
        check_invariants: true,
        ..Default::default()
    };
    spec.monitor.ping_interval = SimDuration::from_millis(1);
    spec.flaps.push(FlapEvent {
        link: victim,
        down_at,
        up_at: 1_000_000_000, // never within the horizon
    });
    net.attach_faults(&spec, 7);
    let tracer = net.attach_tracer(TraceConfig {
        ring_capacity: 1 << 18,
        ..TraceConfig::default()
    });
    net.enable_control_plane(ControlPlaneConfig::default());
    let mut tag = 0u8;
    while net.slot() < 160_000 {
        for &vc in &circuits {
            if !net.is_broken(vc) {
                let _ = net.send_packet(vc, Packet::from_bytes(vec![tag; 300]));
            }
        }
        tag = tag.wrapping_add(1);
        net.step(4_000);
    }
    net.step(25_000);
    assert!(net.control_converged(), "control plane never converged");
    (net, tracer, victim, down_at)
}

#[test]
fn n4_failure_leaves_a_golden_reconfig_trace() {
    let slot_ns = LinkRate::Mbps622.slot_duration().as_nanos();
    let (_net, tracer, victim, down_at) = drive_failure();
    let records = tracer.records();
    assert_eq!(
        tracer.events_dropped(),
        0,
        "ring evicted records; the golden comparison needs the whole run"
    );
    let fail_ns = down_at * slot_ns;

    // The recording opens with the boot reconfiguration.
    let first_phase = records
        .iter()
        .find_map(|r| match r.event {
            TraceEvent::ReconfigPhase { phase, edge, .. } => Some((phase, edge)),
            _ => None,
        })
        .expect("no reconfiguration phases recorded");
    assert_eq!(first_phase, (Phase::Converge, PhaseEdge::Begin));

    // The monitor's dead verdict for the victim is on the record, after
    // the flap fired.
    let verdict_ns = records
        .iter()
        .find_map(|r| match r.event {
            TraceEvent::MonitorVerdict { link, up: false } if link == victim.0 => Some(r.at_ns),
            _ => None,
        })
        .expect("no dead verdict recorded for the victim link");
    assert!(
        verdict_ns >= fail_ns,
        "verdict at {verdict_ns} ns precedes the failure at {fail_ns} ns"
    );

    // Golden phase sequence for the post-failure epoch: exactly
    // converge-begin, converge-end, install-begin, install-end, in order.
    let phases: Vec<(Phase, PhaseEdge, u64, u64)> = records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::ReconfigPhase {
                phase, edge, epoch, ..
            } => Some((phase, edge, epoch, r.at_ns)),
            _ => None,
        })
        .collect();
    let post_epoch = phases
        .iter()
        .find(|&&(p, e, _, ns)| p == Phase::Converge && e == PhaseEdge::Begin && ns >= fail_ns)
        .expect("no converge began after the failure")
        .2;
    let seq: Vec<(Phase, PhaseEdge)> = phases
        .iter()
        .filter(|&&(_, _, epoch, _)| epoch == post_epoch)
        .map(|&(p, e, _, _)| (p, e))
        .collect();
    assert_eq!(
        seq,
        vec![
            (Phase::Converge, PhaseEdge::Begin),
            (Phase::Converge, PhaseEdge::End),
            (Phase::Install, PhaseEdge::Begin),
            (Phase::Install, PhaseEdge::End),
        ],
        "post-failure epoch {post_epoch} broke the golden phase order"
    );

    // Every completed span beats the budget, and so does the full
    // converge-begin → install-end stretch of the post-failure epoch.
    let spans = sink::reconfig_spans(&records);
    for &(phase, epoch, begin, end) in &spans {
        assert!(
            end - begin < BUDGET_NS,
            "{} span of epoch {epoch} took {} ns (≥ 200 ms)",
            phase.name(),
            end - begin
        );
    }
    let conv_begin = spans
        .iter()
        .find(|&&(p, e, _, _)| p == Phase::Converge && e == post_epoch)
        .expect("post-failure converge span incomplete")
        .2;
    let inst_end = spans
        .iter()
        .find(|&&(p, e, _, _)| p == Phase::Install && e == post_epoch)
        .expect("post-failure install span incomplete")
        .3;
    assert!(inst_end > conv_begin, "install ended before converge began");
    assert!(
        inst_end - conv_begin < BUDGET_NS,
        "failure reconfiguration took {} ns (≥ 200 ms)",
        inst_end - conv_begin
    );

    // At least one sampled cell's journey reconstructs end to end:
    // injection, one or more hops, delivery — all under one trace id.
    let complete_journey = records.iter().any(|r| match r.event {
        TraceEvent::CellDeliver { trace_id, .. } if trace_id != 0 => {
            let injected = records.iter().any(
                |q| matches!(q.event, TraceEvent::CellInject { trace_id: t, .. } if t == trace_id),
            );
            let hopped = records.iter().any(
                |q| matches!(q.event, TraceEvent::CellHop { trace_id: t, .. } if t == trace_id),
            );
            injected && hopped
        }
        _ => false,
    });
    assert!(
        complete_journey,
        "no sampled cell journey reconstructs inject → hops → deliver"
    );

    // The Chrome export of this recording is well-formed and carries the
    // reconfig spans Perfetto will draw.
    let chrome = sink::chrome_trace(&records);
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.ends_with("]}"));
    assert!(
        chrome.contains("\"ph\":\"X\""),
        "no complete spans exported"
    );
}

/// The N4 flap-with-recovery cell, observed: the victim dies at 40 000,
/// recovers at 80 000, and a 50 ms skeptic holddown (longer than the
/// ~30 ms between the dead verdict and the recovery streak) quarantines
/// the readmission — so the recording carries quarantine edges, and the
/// observatory scrapes the 1 ms interval snapshots the counter tracks
/// render from.
fn drive_flap_with_recovery() -> (Network, Tracer, LinkId) {
    let mut net = Network::builder()
        .src_installation(4, 8)
        .seed(7)
        .skeptic(SkepticConfig {
            base_wait: SimDuration::from_millis(50),
            max_level: 3,
            ..SkepticConfig::default()
        })
        .build();
    let victim = backbone_link(&net);
    let hosts: Vec<_> = net.hosts().collect();
    let mut circuits = Vec::new();
    for pair in hosts.chunks(2) {
        if let [a, b] = *pair {
            circuits.push(net.open_best_effort(a, b).expect("open circuit"));
        }
    }
    let mut spec = FaultSpec {
        check_invariants: true,
        ..Default::default()
    };
    spec.monitor.ping_interval = SimDuration::from_millis(1);
    spec.flaps.push(FlapEvent {
        link: victim,
        down_at: 40_000,
        up_at: 80_000,
    });
    net.attach_faults(&spec, 7);
    let tracer = net.attach_observatory(
        TraceConfig {
            ring_capacity: 1 << 18,
            ..TraceConfig::default()
        },
        ObservatoryConfig::default(),
    );
    net.enable_control_plane(ControlPlaneConfig::default());
    let mut tag = 0u8;
    while net.slot() < 200_000 {
        for &vc in &circuits {
            if !net.is_broken(vc) {
                let _ = net.send_packet(vc, Packet::from_bytes(vec![tag; 300]));
            }
        }
        tag = tag.wrapping_add(1);
        net.step(4_000);
    }
    net.step(25_000);
    (net, tracer, victim)
}

#[test]
fn counter_tracks_render_and_skeptic_track_steps_at_quarantine_edges() {
    let slot_ns = LinkRate::Mbps622.slot_duration().as_nanos();
    let (_net, tracer, victim) = drive_flap_with_recovery();
    let records = tracer.records();
    let intervals = tracer.intervals();
    assert!(
        intervals.len() >= 100,
        "observatory scraped only {} intervals",
        intervals.len()
    );

    let chrome = sink::chrome_trace_with_counters(&records, &intervals, slot_ns);
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.ends_with("]}"));
    assert!(
        chrome.contains("\"ph\":\"C\""),
        "no counter samples exported"
    );
    assert!(
        chrome.contains("\"name\":\"queue_depth switch"),
        "no queue-depth track"
    );
    assert!(
        chrome.contains("\"name\":\"link_util_permille link"),
        "no link-utilization track"
    );

    // The quarantine edges on the record: at least one entry for the
    // victim, and the skeptic-level counter track must step at *exactly*
    // those timestamps — level on entry, zero on release, one sample per
    // recorded edge, none invented.
    let edges: Vec<(u64, u32, bool)> = records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::SkepticQuarantine {
                link,
                entered,
                level,
            } => {
                assert_eq!(link, victim.0, "quarantine on an unexpected link");
                Some((r.at_ns, level, entered))
            }
            _ => None,
        })
        .collect();
    assert!(
        edges.iter().any(|&(_, _, entered)| entered),
        "the flap recovery never entered quarantine"
    );
    let samples = chrome.matches("\"name\":\"skeptic_level link").count();
    assert_eq!(
        samples,
        edges.len(),
        "skeptic track has {samples} samples for {} recorded edges",
        edges.len()
    );
    for &(at_ns, level, entered) in &edges {
        let value = if entered { level } else { 0 };
        let needle = format!(
            "{{\"name\":\"skeptic_level link{}\",\"cat\":\"observatory\",\"ph\":\"C\",\"ts\":{}.{:03},\"pid\":1,\"args\":{{\"level\":{value}}}}}",
            victim.0,
            at_ns / 1000,
            at_ns % 1000,
        );
        assert!(
            chrome.contains(&needle),
            "no skeptic-level step at {at_ns} ns with level {value}"
        );
    }

    // The time-series dumps of the same intervals are well-formed and
    // carry the victim's utilization series.
    let jsonl = sink::timeseries_jsonl(&intervals);
    assert_eq!(jsonl.lines().count(), intervals.len());
    let csv = sink::timeseries_csv(&intervals);
    assert!(csv.starts_with("index,start_slot,end_slot,kind,name,entity,value"));
    assert!(
        csv.contains(&format!(",counter,link.cells,link{},", victim.0)),
        "victim link's utilization series missing from the CSV dump"
    );
}
