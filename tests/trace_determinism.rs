//! The flight recorder's central guarantee: observing a run does not change
//! it. A traced network digests byte-identical to an untraced one — same
//! per-circuit stats (including latency samples), same control-transport
//! counters, same fault counters, same reconfiguration log — across
//! topologies and seeds, with faults drawing randomness the whole time.
//! The same holds one tier up: the telemetry observatory (interval scraper
//! plus SLO watchdog) reads the registry every millisecond and runs its
//! detectors live, and still must leave every digest untouched.

use an2::{ControlPlaneConfig, FaultSpec, LossModel, Network, NetworkBuilder, TraceConfig};
use an2_cells::Packet;
use an2_sim::SimDuration;
use an2_trace::ObservatoryConfig;

fn fnv(h: &mut u64, x: u64) {
    for b in x.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x1_0000_01b3);
    }
}

/// How much observation the run carries.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// No tracer at all.
    Plain,
    /// Flight recorder attached.
    Traced,
    /// Flight recorder plus the observatory scraping every ~0.25 ms with
    /// the SLO watchdog live.
    Observed,
}

/// Lossy links plus a fast monitor, so the run exercises every RNG-adjacent
/// path the tracer instruments: fault draws, credit resync, verdicts.
fn spec() -> FaultSpec {
    let mut spec = FaultSpec {
        check_invariants: true,
        ..Default::default()
    };
    spec.default_link.loss = LossModel::Independent { p: 0.002 };
    spec.monitor.ping_interval = SimDuration::from_millis(1);
    spec
}

fn builder(topo: usize) -> NetworkBuilder {
    let b = Network::builder();
    match topo {
        0 => b.src_installation(4, 8),
        1 => b.src_installation(6, 12),
        _ => b.ring(4, 8),
    }
}

/// Runs the workload, optionally traced/observed, and digests everything
/// observable. Returns `(digest, delivered, events_recorded, intervals)`.
fn run(topo: usize, seed: u64, mode: Mode) -> (u64, u64, u64, u64) {
    let mut net = builder(topo).seed(seed).build();
    let hosts: Vec<_> = net.hosts().collect();
    let mut circuits = Vec::new();
    for pair in hosts.chunks(2) {
        if let [a, b] = *pair {
            if let Ok(vc) = net.open_best_effort(a, b) {
                circuits.push(vc);
            }
        }
    }
    net.attach_faults(&spec(), seed);
    let trace_cfg = TraceConfig {
        sample_every: 16,
        ..TraceConfig::default()
    };
    let tracer = match mode {
        Mode::Plain => None,
        Mode::Traced => Some(net.attach_tracer(trace_cfg)),
        Mode::Observed => Some(net.attach_observatory(
            trace_cfg,
            ObservatoryConfig {
                every_slots: 367,
                ..ObservatoryConfig::default()
            },
        )),
    };
    net.enable_control_plane(ControlPlaneConfig::default());
    let mut tag = 0u8;
    while net.slot() < 30_000 {
        for &vc in &circuits {
            if !net.is_broken(vc) {
                let _ = net.send_packet(vc, Packet::from_bytes(vec![tag; 300]));
            }
        }
        tag = tag.wrapping_add(1);
        net.step(3_000);
    }
    net.step(10_000);

    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut delivered = 0;
    for &vc in &circuits {
        if net.is_broken(vc) {
            continue;
        }
        let s = net.stats(vc);
        delivered += s.delivered_cells;
        for x in [
            s.sent_cells,
            s.delivered_cells,
            s.lost_cells,
            s.dropped_cells,
        ] {
            fnv(&mut digest, x);
        }
        for &sample in s.latency_slots.samples() {
            fnv(&mut digest, sample);
        }
    }
    let c = net.ctrl_counters();
    for x in [c.messages_sent, c.messages_lost, c.cells_sent] {
        fnv(&mut digest, x);
    }
    if let Some(f) = net.fault_counters() {
        for x in [
            f.cells_lost,
            f.cells_corrupted,
            f.credits_lost,
            f.markers_sent,
            f.resyncs_completed,
            f.crash_dropped_cells,
            f.invariant_violations,
        ] {
            fnv(&mut digest, x);
        }
    }
    fnv(&mut digest, net.reconfig_log().len() as u64);
    for e in net.reconfig_log() {
        fnv(&mut digest, e.slot());
    }
    let (events, intervals) = tracer
        .map(|t| (t.events_seen(), t.intervals_seen()))
        .unwrap_or((0, 0));
    (digest, delivered, events, intervals)
}

#[test]
fn traced_runs_are_byte_identical_to_untraced() {
    for topo in 0..3usize {
        for seed in [3u64, 17, 91] {
            let (plain, delivered, _, _) = run(topo, seed, Mode::Plain);
            let (traced, traced_delivered, events, _) = run(topo, seed, Mode::Traced);
            assert!(
                delivered > 0,
                "workload moved no traffic (topo {topo}, seed {seed})"
            );
            assert!(
                events > 0,
                "tracer recorded nothing (topo {topo}, seed {seed})"
            );
            assert_eq!(
                plain, traced,
                "tracing perturbed the run (topo {topo}, seed {seed})"
            );
            assert_eq!(delivered, traced_delivered);
        }
    }
}

#[test]
fn observed_runs_are_byte_identical_to_untraced() {
    for topo in 0..3usize {
        for seed in [3u64, 17, 91] {
            let (plain, delivered, _, _) = run(topo, seed, Mode::Plain);
            let (observed, observed_delivered, events, intervals) = run(topo, seed, Mode::Observed);
            assert!(
                events > 0,
                "tracer recorded nothing (topo {topo}, seed {seed})"
            );
            assert!(
                intervals >= 40,
                "observatory scraped only {intervals} intervals (topo {topo}, seed {seed})"
            );
            assert_eq!(
                plain, observed,
                "scraping or the watchdog perturbed the run (topo {topo}, seed {seed})"
            );
            assert_eq!(delivered, observed_delivered);
        }
    }
}
