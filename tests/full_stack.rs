//! Full-stack integration tests: many circuits, both traffic classes,
//! failures mid-stream, and conservation invariants across the network.

use an2::{Network, VcId};
use an2_cells::Packet;
use an2_sim::SimRng;
use an2_topology::SwitchId;
use an2_workload::{CbrStream, FileTransfer, PoissonMix, RpcPair};

#[test]
fn heavy_mixed_workload_conserves_cells() {
    let mut net = Network::builder()
        .src_installation(10, 20)
        .frame_slots(128)
        .seed(31)
        .build();
    let hosts: Vec<_> = net.hosts().collect();
    let mut vcs: Vec<VcId> = Vec::new();
    // 10 best-effort + 5 guaranteed circuits, criss-crossing.
    for k in 0..10 {
        vcs.push(net.open_best_effort(hosts[k], hosts[19 - k]).unwrap());
    }
    for k in 0..5 {
        vcs.push(net.open_guaranteed(hosts[k], hosts[k + 10], 16).unwrap());
    }
    let mut rng = SimRng::new(7);
    for _ in 0..200 {
        for &vc in &vcs {
            if rng.gen_bool(0.3) {
                let size = 40 + rng.gen_range(2000);
                net.send_packet(vc, Packet::from_bytes(vec![0xAA; size]))
                    .unwrap();
            }
        }
        net.step(300);
    }
    net.step(100_000); // drain
    for &vc in &vcs {
        let s = net.stats(vc);
        assert_eq!(
            s.sent_cells,
            s.delivered_cells + s.dropped_cells,
            "{vc}: cells leaked (sent {} delivered {} dropped {})",
            s.sent_cells,
            s.delivered_cells,
            s.dropped_cells
        );
        assert_eq!(s.dropped_cells, 0, "no failures injected: nothing may drop");
        assert_eq!(net.outbox_len(vc), 0, "outbox must drain");
    }
}

#[test]
fn workloads_compose_on_one_network() {
    let mut net = Network::builder()
        .src_installation(8, 12)
        .frame_slots(128)
        .seed(32)
        .build();
    let hosts: Vec<_> = net.hosts().collect();
    let gt = net.open_guaranteed(hosts[0], hosts[6], 32).unwrap();
    let mut cbr = CbrStream::new(gt, 480, 256);
    let ft_vc = net.open_best_effort(hosts[1], hosts[7]).unwrap();
    let mut ft = FileTransfer::new(ft_vc, 4800, 100, 4);
    let rpc_up = net.open_best_effort(hosts[2], hosts[8]).unwrap();
    let rpc_dn = net.open_best_effort(hosts[8], hosts[2]).unwrap();
    let mut rpc = RpcPair::new(hosts[2], hosts[8], rpc_up, rpc_dn, 96, 960);
    let bg_vcs: Vec<VcId> = (3..6)
        .map(|k| net.open_best_effort(hosts[k], hosts[k + 6]).unwrap())
        .collect();
    let mut bg = PoissonMix::new(bg_vcs, 0.1, 960, 8);

    for _ in 0..400 {
        cbr.tick(&mut net).unwrap();
        ft.tick(&mut net).unwrap();
        rpc.tick(&mut net).unwrap();
        bg.tick(&mut net);
        net.step(256);
    }
    net.step(50_000);

    assert!(cbr.sent() >= 390);
    assert_eq!(net.stats(gt).packets_delivered, cbr.sent());
    assert_eq!(ft.remaining(), 0);
    assert_eq!(net.stats(ft_vc).packets_delivered, 100);
    assert!(
        rpc.completed() >= 100,
        "RPCs completed: {}",
        rpc.completed()
    );
    assert!(bg.sent() > 50);
}

#[test]
fn repeated_failures_and_reroutes_keep_network_usable() {
    let mut net = Network::builder().src_installation(10, 10).seed(33).build();
    let hosts: Vec<_> = net.hosts().collect();
    let vcs: Vec<VcId> = (0..5)
        .map(|k| net.open_best_effort(hosts[k], hosts[k + 5]).unwrap())
        .collect();
    let mut rng = SimRng::new(9);
    let mut failures = 0;
    for round in 0..6 {
        for &vc in &vcs {
            if !net.is_broken(vc) {
                net.send_packet(vc, Packet::from_bytes(vec![round as u8; 500]))
                    .unwrap();
            }
        }
        net.step(2_000);
        // Fail a random still-working backbone link every round.
        let working: Vec<_> = net
            .topology()
            .links()
            .filter(|&l| {
                let (a, b) = net.topology().endpoints(l);
                matches!(
                    (a.node, b.node),
                    (an2_topology::Node::Switch(_), an2_topology::Node::Switch(_))
                ) && net.topology().link_state(l) == an2_topology::LinkState::Working
            })
            .collect();
        if let Some(&victim) = rng.choose(&working) {
            net.fail_link(victim);
            failures += 1;
        }
        net.step(5_000);
    }
    assert_eq!(failures, 6);
    // Most circuits should still be alive and able to deliver.
    let alive: Vec<_> = vcs.iter().filter(|&&vc| !net.is_broken(vc)).collect();
    assert!(
        !alive.is_empty(),
        "every circuit died after 6 link failures"
    );
    for &&vc in &alive {
        net.send_packet(vc, Packet::from_bytes(vec![0x77; 300]))
            .unwrap();
    }
    net.step(30_000);
    for &&vc in &alive {
        let s = net.stats(vc);
        assert!(s.packets_delivered > 0, "{vc} delivered nothing");
        assert_eq!(s.sent_cells, s.delivered_cells + s.dropped_cells);
    }
}

#[test]
fn large_network_scales() {
    // A 16-switch, 48-host installation with 24 concurrent circuits.
    let mut net = Network::builder().src_installation(16, 48).seed(34).build();
    let hosts: Vec<_> = net.hosts().collect();
    let vcs: Vec<VcId> = (0..24)
        .map(|k| net.open_best_effort(hosts[k], hosts[47 - k]).unwrap())
        .collect();
    for &vc in &vcs {
        for _ in 0..3 {
            net.send_packet(vc, Packet::from_bytes(vec![1; 1500]))
                .unwrap();
        }
    }
    net.step(60_000);
    for (k, &vc) in vcs.iter().enumerate() {
        assert_eq!(net.stats(vc).packets_delivered, 3, "circuit {k} incomplete");
    }
}

#[test]
fn guaranteed_rate_matching_prevents_buffer_growth() {
    // §5: guaranteed traffic "matches transmission rate with reserved
    // bandwidth so that buffer capacity is never exceeded". Saturate a
    // guaranteed circuit's source; the network's in-flight population must
    // stay bounded by the path's buffering, not grow with time.
    let mut net = Network::builder()
        .src_installation(6, 6)
        .frame_slots(64)
        .seed(35)
        .build();
    let hosts: Vec<_> = net.hosts().collect();
    let vc = net.open_guaranteed(hosts[0], hosts[3], 8).unwrap();
    // Offer far more than the reservation.
    for _ in 0..200 {
        net.send_packet(vc, Packet::from_bytes(vec![2; 480]))
            .unwrap();
    }
    let mut max_in_network = 0u64;
    for _ in 0..100 {
        net.step(64);
        let s = net.stats(vc);
        let in_network = s.sent_cells - s.delivered_cells - s.dropped_cells;
        max_in_network = max_in_network.max(in_network);
    }
    let p = net.circuit_path(vc).unwrap().len() as u64;
    // Sent cells enter the network at most 8/frame; each hop can hold at
    // most ~2 frames' worth transiently (§4's sizing argument).
    assert!(
        max_in_network <= (p + 2) * 2 * 64,
        "in-network population {max_in_network} grows unboundedly"
    );
    // The excess waits at the source controller.
    assert!(net.outbox_len(vc) > 0);
}

#[test]
fn alternate_host_link_used_when_primary_fails_before_open() {
    let mut net = Network::builder().src_installation(6, 6).seed(36).build();
    let hosts: Vec<_> = net.hosts().collect();
    let (primary, _) = net.topology().host_attachments(hosts[0])[0];
    net.fail_link(primary);
    // Opening after the failure must use the alternate.
    let vc = net.open_best_effort(hosts[0], hosts[3]).unwrap();
    net.send_packet(vc, Packet::from_bytes(vec![5; 800]))
        .unwrap();
    net.step(10_000);
    assert_eq!(net.stats(vc).packets_delivered, 1);
}

#[test]
fn broken_guaranteed_circuit_releases_bandwidth_for_others() {
    let mut net = Network::builder()
        .ring(4, 8)
        .frame_slots(32)
        .seed(37)
        .build();
    let hosts: Vec<_> = net.hosts().collect();
    let vc = net.open_guaranteed(hosts[0], hosts[2], 32).unwrap();
    // Sever the destination host: the circuit cannot be repaired.
    let (dst_link, _) = net.topology().host_attachments(hosts[2])[0];
    net.fail_link(dst_link);
    assert!(net.is_broken(vc));
    // Its backbone reservation was released: a fresh circuit between the
    // same source and another host sharing those links is admitted.
    let vc2 = net.open_guaranteed(hosts[0], hosts[1], 32);
    assert!(vc2.is_ok(), "released capacity must be reusable: {vc2:?}");
}

#[test]
fn ring_backbone_end_to_end_under_updown_consistency() {
    // The data-plane shortest-path routes used by the Network and the
    // control-plane up*/down* routes must both exist for every pair after
    // reconfiguration of the same topology.
    let net = Network::builder().ring(6, 6).seed(38).build();
    let topo = net.topology().clone();
    let tree = an2_topology::SpanningTree::bfs(&topo, SwitchId(0));
    for s in topo.switches() {
        for t in topo.switches() {
            assert!(an2_topology::paths::shortest_path(&topo, s, t).is_some());
            assert!(an2_topology::updown::route(&topo, &tree, s, t).is_some());
        }
    }
}
