//! Determinism guarantees: every layer of the reproduction is a pure
//! function of its seed, which is what makes EXPERIMENTS.md's numbers
//! reproducible on any machine.

use an2::Network;
use an2_cells::Packet;
use an2_reconfig::harness::ReconfigNet;
use an2_sim::SimRng;
use an2_topology::{generators, SwitchId};
use an2_xbar::simulate::{simulate, ArrivalGen, Arrivals, Discipline};
use an2_xbar::Pim;

#[test]
fn reconfiguration_is_deterministic() {
    let run = |seed: u64| {
        let mut net = ReconfigNet::with_defaults(generators::src_installation(12, 0), seed);
        net.run_to_quiescence();
        net.kill_switch(SwitchId(5));
        net.run_to_quiescence();
        (
            net.now().as_nanos(),
            net.total_messages(),
            net.total_initiated(),
        )
    };
    assert_eq!(run(9), run(9));
    // Different seeds still converge to correct views (checked elsewhere);
    // the *trace* may or may not differ — no assertion either way, since
    // reconfiguration has no randomized steps, only seed-independent races.
}

#[test]
fn switch_simulation_is_deterministic() {
    let run = |seed: u64| {
        let mut d = Discipline::Voq(Box::new(Pim::an2()));
        let mut gen = ArrivalGen::new(16, Arrivals::Uniform { load: 0.9 });
        let mut rng = SimRng::new(seed);
        let r = simulate(16, &mut d, &mut gen, 5_000, &mut rng);
        (r.delivered, r.offered, r.delay.samples().to_vec())
    };
    assert_eq!(run(4), run(4));
    assert_ne!(run(4).0, run(5).0, "different seeds give different traffic");
}

#[test]
fn network_traces_replay_exactly() {
    let run = |seed: u64| {
        let mut net = Network::builder()
            .src_installation(8, 12)
            .seed(seed)
            .build();
        let hosts: Vec<_> = net.hosts().collect();
        let a = net.open_best_effort(hosts[0], hosts[6]).unwrap();
        let b = net.open_guaranteed(hosts[1], hosts[7], 32).unwrap();
        for k in 0..20u8 {
            net.send_packet(a, Packet::from_bytes(vec![k; 777]))
                .unwrap();
            net.send_packet(b, Packet::from_bytes(vec![k; 333]))
                .unwrap();
        }
        net.step(2_000);
        // Mid-run failure exercises reroute determinism too.
        let first = net.circuit_path(a).unwrap()[0];
        net.fail_switch(first);
        net.step(40_000);
        (
            net.stats(a).latency_slots.samples().to_vec(),
            net.stats(b).latency_slots.samples().to_vec(),
            net.stats(a).dropped_cells,
        )
    };
    assert_eq!(run(123), run(123));
}

#[test]
fn experiment_harness_is_deterministic() {
    // The E4 table regenerates bit-identically: the foundation of
    // EXPERIMENTS.md's recorded numbers.
    let (rows1, text1) = an2_bench_free::e4(&[8, 16], 500);
    let (rows2, text2) = an2_bench_free::e4(&[8, 16], 500);
    assert_eq!(text1, text2);
    assert_eq!(rows1, rows2);
}

/// Minimal local reimplementation of E4's measurement loop so this test
/// does not depend on the bench crate (dev-dependency direction).
mod an2_bench_free {
    use an2_sim::SimRng;
    use an2_xbar::{DemandMatrix, Pim};

    pub fn e4(sizes: &[usize], trials: u64) -> (Vec<(usize, u64, u64)>, String) {
        let mut rng = SimRng::new(42);
        let mut rows = Vec::new();
        let mut text = String::new();
        for &n in sizes {
            let mut total = 0u64;
            let mut within4 = 0u64;
            for _ in 0..trials {
                let mut d = DemandMatrix::new(n);
                for i in 0..n {
                    for o in 0..n {
                        if rng.gen_bool(0.75) {
                            d.add(i, o, 1);
                        }
                    }
                }
                let out = Pim::run_to_maximal(&d, &mut rng);
                total += out.productive_iterations as u64;
                if out.productive_iterations <= 4 {
                    within4 += 1;
                }
            }
            rows.push((n, total, within4));
            text.push_str(&format!("{n}:{total}:{within4};"));
        }
        (rows, text)
    }
}
