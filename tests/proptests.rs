//! Property-based tests over the core algorithms and invariants, spanning
//! crates. Each property is an explicit claim from the paper.

use an2_cells::{Cell, CellHeader, CellKind, Packet, Reassembler, Segmenter, VcId};
use an2_flow::{resync, CreditReceiver, CreditSender};
use an2_schedule::nested::NestedFrameSchedule;
use an2_schedule::{FrameSchedule, ReservationMatrix};
use an2_sim::SimRng;
use an2_topology::{generators, updown, SpanningTree, SwitchId};
use an2_xbar::{
    outputs_unique, reference, CrossbarScheduler, DemandMatrix, GreedyMaximal, Islip,
    MaximumMatching, Pim,
};
use proptest::prelude::*;

fn arb_demand(n: usize) -> impl Strategy<Value = DemandMatrix> {
    proptest::collection::vec(0u64..3, n * n)
        .prop_map(move |cells| DemandMatrix::from_table(n, &cells))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// §3: PIM's result is always a legal matching, and run to quiescence
    /// it is maximal.
    #[test]
    fn pim_always_legal_and_eventually_maximal(
        demand in arb_demand(8),
        seed in any::<u64>(),
    ) {
        let mut rng = SimRng::new(seed);
        let mut pim = Pim::an2();
        let m = pim.schedule(&demand, &mut rng);
        prop_assert!(m.is_legal(&demand));
        prop_assert!(outputs_unique(&m));
        let out = Pim::run_to_maximal(&demand, &mut rng);
        prop_assert!(out.matching.is_legal(&demand));
        prop_assert!(out.matching.is_maximal(&demand));
    }

    /// A maximal matching is at least half a maximum matching, and never
    /// larger.
    #[test]
    fn maximal_vs_maximum_bounds(demand in arb_demand(8), seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        let maximal = Pim::run_to_maximal(&demand, &mut rng).matching.len();
        let maximum = MaximumMatching::solve(&demand).len();
        prop_assert!(maximal <= maximum);
        prop_assert!(2 * maximal >= maximum);
    }

    /// §4 (Slepian–Duguid): any reservation set that over-commits no link
    /// is schedulable, and every insertion stays within 2N displacement
    /// moves.
    #[test]
    fn slepian_duguid_always_schedules_feasible_sets(
        seed in any::<u64>(),
        n in 2usize..8,
        frame in 2u32..12,
    ) {
        let mut rng = SimRng::new(seed);
        let mut res = ReservationMatrix::new(n, frame);
        let mut sched = FrameSchedule::new(n, frame);
        for _ in 0..(n as u32 * frame * 2) {
            let i = rng.gen_range(n);
            let o = rng.gen_range(n);
            if res.reserve(i, o, 1).is_ok() {
                let trace = sched.insert(i, o).expect("feasible must insert");
                prop_assert!(trace.swaps() <= 2 * n);
            }
        }
        prop_assert!(sched.satisfies(&res));
    }

    /// §5: up*/down* routes are legal and their channel-dependency graph is
    /// acyclic on arbitrary connected topologies.
    #[test]
    fn updown_deadlock_freedom_on_random_graphs(
        seed in any::<u64>(),
        n in 2usize..16,
        extra in 0usize..12,
    ) {
        let mut rng = SimRng::new(seed);
        let topo = generators::random_connected(n, extra, &mut rng);
        let tree = SpanningTree::bfs(&topo, SwitchId(0));
        prop_assert!(updown::all_pairs_updown_deadlock_free(&topo, &tree));
        for s in topo.switches() {
            for t in topo.switches() {
                let r = updown::route(&topo, &tree, s, t).expect("connected");
                prop_assert!(updown::is_legal_path(&tree, &r));
            }
        }
    }

    /// §1: controller segmentation/reassembly is the identity on packets.
    #[test]
    fn segmentation_reassembly_identity(
        data in proptest::collection::vec(any::<u8>(), 0..4000),
        vc_raw in 0u32..VcId::MAX,
    ) {
        let vc = VcId::new(vc_raw);
        let packet = Packet::from_bytes(data.clone());
        let cells = Segmenter::new(vc).segment(&packet);
        prop_assert_eq!(cells.len(), packet.cell_count());
        let mut r = Reassembler::new();
        let mut out = None;
        for c in &cells {
            out = r.push(c).expect("clean stream reassembles");
        }
        let (got_vc, got) = out.expect("complete");
        prop_assert_eq!(got_vc, vc);
        prop_assert_eq!(got.as_bytes(), &data[..]);
    }

    /// The ATM header round-trips through its wire form, and any single-bit
    /// corruption is caught by the HEC.
    #[test]
    fn header_roundtrip_and_hec(
        vc_raw in 0u32..VcId::MAX,
        kind_pick in 0usize..4,
        clp in any::<bool>(),
        flip_byte in 0usize..5,
        flip_bit in 0usize..8,
    ) {
        let kind = [CellKind::Data, CellKind::DataEnd, CellKind::Signal, CellKind::Management][kind_pick];
        let h = CellHeader { vc: VcId::new(vc_raw), kind, low_priority: clp };
        let mut wire = h.encode();
        prop_assert_eq!(CellHeader::decode(&wire).unwrap(), h);
        wire[flip_byte] ^= 1 << flip_bit;
        prop_assert!(CellHeader::decode(&wire).is_err());
    }

    /// §5: under any pattern of credit loss and any service order, the
    /// downstream buffer never overflows, and a resynchronization restores
    /// the full balance once the pipe drains.
    #[test]
    fn credit_protocol_never_overflows_and_resyncs(
        capacity in 1u32..16,
        ops in proptest::collection::vec((0u8..4, any::<bool>()), 0..200),
    ) {
        let mut sender = CreditSender::new(capacity);
        let mut receiver = CreditReceiver::new(capacity);
        let mut in_flight_cells = 0u32;
        for (op, lose_credit) in ops {
            match op {
                // Try to send a cell.
                0 => {
                    if sender.try_send() {
                        in_flight_cells += 1;
                    }
                }
                // Deliver one in-flight cell downstream: may never overflow.
                1 => {
                    if in_flight_cells > 0 {
                        in_flight_cells -= 1;
                        receiver.on_cell().expect("credit protocol prevents overflow");
                    }
                }
                // Forward downstream; credit possibly lost.
                2 => {
                    if let Some(epoch) = receiver.forward() {
                        if !lose_credit {
                            sender.on_credit_with_epoch(epoch);
                        }
                    }
                }
                // Random resync at any point is safe.
                _ => {
                    let m = resync::begin(&mut sender);
                    let rep = resync::handle_marker(&mut receiver, m);
                    resync::finish(&mut sender, rep);
                }
            }
        }
        // Drain: deliver and forward everything, then resync.
        while in_flight_cells > 0 {
            in_flight_cells -= 1;
            receiver.on_cell().expect("no overflow during drain");
        }
        while receiver.forward().is_some() {}
        let m = resync::begin(&mut sender);
        let rep = resync::handle_marker(&mut receiver, m);
        resync::finish(&mut sender, rep);
        prop_assert_eq!(sender.balance(), capacity);
    }

    /// Reconfiguration tags totally order concurrent configurations.
    #[test]
    fn tags_are_totally_ordered(
        e1 in 0u64..100, i1 in 0u16..32,
        e2 in 0u64..100, i2 in 0u16..32,
    ) {
        use an2_reconfig::Tag;
        let a = Tag { epoch: e1, initiator: SwitchId(i1) };
        let b = Tag { epoch: e2, initiator: SwitchId(i2) };
        // Antisymmetric and total:
        prop_assert_eq!(a == b, e1 == e2 && i1 == i2);
        prop_assert!(a < b || b < a || a == b);
        // Successor always dominates.
        prop_assert!(a.successor(SwitchId(i2)) > a);
    }

    /// Cell encode/decode identity through the full 53-byte wire form.
    #[test]
    fn cell_wire_roundtrip(
        vc_raw in 0u32..VcId::MAX,
        payload in proptest::collection::vec(any::<u8>(), 48),
    ) {
        let mut buf = [0u8; 48];
        buf.copy_from_slice(&payload);
        let cell = Cell::new(VcId::new(vc_raw), CellKind::DataEnd, buf);
        let decoded = Cell::decode(&cell.encode()).unwrap();
        prop_assert_eq!(decoded, cell);
    }

    /// iSLIP with enough iterations always produces a legal, maximal match,
    /// like PIM, without randomness.
    #[test]
    fn islip_always_legal_and_maximal(demand in arb_demand(8)) {
        let mut rng = SimRng::new(0);
        let mut islip = Islip::new(8, 8);
        let m = islip.schedule(&demand, &mut rng);
        prop_assert!(m.is_legal(&demand));
        prop_assert!(m.is_maximal(&demand));
        prop_assert!(outputs_unique(&m));
    }

    /// The bitmask fast-path schedulers are drop-in replacements: for any
    /// demand matrix and seed they consume the RNG stream exactly like the
    /// pre-refactor implementations (preserved in `an2_xbar::reference`)
    /// and return bit-identical matchings.
    #[test]
    fn bitmask_schedulers_match_reference(
        demand in arb_demand(8),
        seed in any::<u64>(),
    ) {
        let m = Pim::an2().schedule(&demand, &mut SimRng::new(seed));
        let r = reference::ReferencePim::an2().schedule(&demand, &mut SimRng::new(seed));
        prop_assert_eq!(m, r, "PIM diverged from reference");

        let m = GreedyMaximal::new().schedule(&demand, &mut SimRng::new(seed));
        let r = reference::ReferenceGreedy::new().schedule(&demand, &mut SimRng::new(seed));
        prop_assert_eq!(m, r, "greedy diverged from reference");

        let m = Islip::new(8, 3).schedule(&demand, &mut SimRng::new(seed));
        let r = reference::ReferenceIslip::new(8, 3).schedule(&demand, &mut SimRng::new(seed));
        prop_assert_eq!(m, r, "iSLIP diverged from reference");
    }

    /// Nested frame schedules grant exactly the reserved bandwidth whenever
    /// the headroom check admits the split.
    #[test]
    fn nested_frames_preserve_reservations(
        seed in any::<u64>(),
        per_pair in 1u32..4,
    ) {
        let n = 4;
        let frame = 64u32;
        let mut rng = SimRng::new(seed);
        let mut res = an2_schedule::ReservationMatrix::new(n, frame);
        for i in 0..n {
            for o in 0..n {
                if rng.gen_bool(0.5) {
                    let _ = res.reserve(i, o, per_pair);
                }
            }
        }
        let subframes = 4;
        prop_assume!(NestedFrameSchedule::fits(&res, subframes));
        let nested = NestedFrameSchedule::build(&res, subframes);
        for i in 0..n {
            for o in 0..n {
                prop_assert_eq!(nested.scheduled_cells(i, o), res.cells(i, o));
            }
        }
    }

    /// The link monitor's verdict only changes on the configured
    /// thresholds: arbitrary ping sequences never panic and transitions
    /// always alternate dead/working.
    #[test]
    fn monitor_transitions_alternate(
        outcomes in proptest::collection::vec(any::<bool>(), 0..500),
    ) {
        use an2_reconfig::monitor::{LinkMonitor, LinkVerdict, MonitorConfig};
        use an2_sim::{SimDuration, SimTime};
        let mut m = LinkMonitor::new(MonitorConfig::default());
        let mut now = SimTime::ZERO;
        let mut last: Option<LinkVerdict> = None;
        for ok in outcomes {
            now += SimDuration::from_millis(10);
            if let Some(t) = m.on_ping(ok, now) {
                if let Some(prev) = last {
                    prop_assert_ne!(prev, t.to, "consecutive transitions must alternate");
                }
                last = Some(t.to);
            }
        }
    }

    /// Packet cell counts follow the AAL5 arithmetic for any length.
    #[test]
    fn packet_cell_count_formula(len in 0usize..10_000) {
        let p = Packet::from_bytes(vec![0; len]);
        prop_assert_eq!(p.cell_count(), (len + 8).div_ceil(48));
        prop_assert_eq!(p.len(), len);
    }
}
