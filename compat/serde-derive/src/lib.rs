//! Inert `Serialize` / `Deserialize` derive macros.
//!
//! This build environment has no access to crates.io, so the real
//! `serde_derive` cannot be compiled. The repository derives the serde
//! traits purely as forward-looking annotations — nothing serializes
//! anything yet — so the derives expand to nothing. The `attributes(serde)`
//! declaration keeps `#[serde(...)]` helper attributes legal on annotated
//! items. Swap this crate for the real one in `[workspace.dependencies]`
//! when a registry is available.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
