//! Offline stand-in for the `bytes` crate.
//!
//! Provides the one type this workspace uses — [`Bytes`], an immutable,
//! cheaply-cloneable byte buffer — with the same observable semantics as the
//! registry crate for the operations exercised here (construction from
//! `Vec<u8>`/slices, `Deref<Target = [u8]>`, equality, hashing). Reference
//! counting makes `Clone` O(1), which matters because `Packet` is cloned
//! along every hop of the simulated network.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer (subset of `bytes::Bytes`).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes {
            data: v.as_bytes().into(),
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_equality() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![7; 1024]);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.data, &b.data));
    }
}
