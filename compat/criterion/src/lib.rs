//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The registry is unreachable in this build environment, so this shim
//! implements the criterion API surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `bench_with_input` / `sample_size`, `Bencher::iter`
//! and `iter_batched` — backed by a simple but honest measurement loop:
//!
//! 1. warm up, calibrating the per-sample iteration count to a time target;
//! 2. take `sample_count` timed samples;
//! 3. report the median, best, and mean ns/iteration on stdout.
//!
//! There is no statistical regression machinery; medians across ≥10 samples
//! are stable enough to compare implementations in the same process run.
//! Environment knobs: `AN2_BENCH_SAMPLE_MS` (per-sample budget, default 40)
//! and `AN2_BENCH_SAMPLES` (override sample count).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted, not acted on).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// Identifies one benchmark within a group, e.g. `insert/n16`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs timed iterations for one benchmark.
pub struct Bencher {
    sample_count: usize,
    /// Collected (iters, elapsed) samples.
    samples: Vec<(u64, Duration)>,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            sample_count,
            samples: Vec::new(),
        }
    }

    /// Times `routine`, called repeatedly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let budget = Duration::from_millis(env_u64("AN2_BENCH_SAMPLE_MS", 40));
        // Calibrate: double the iteration count until one batch fills ~1/4
        // of the sample budget.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed * 4 >= budget || iters >= u64::MAX / 2 {
                let per_iter = (elapsed.as_nanos() / iters as u128).max(1);
                iters = (budget.as_nanos() / per_iter).clamp(1, u64::MAX as u128) as u64;
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push((iters, start.elapsed()));
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let budget = Duration::from_millis(env_u64("AN2_BENCH_SAMPLE_MS", 40));
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed * 4 >= budget || iters >= 1 << 20 {
                let per_iter = (elapsed.as_nanos() / iters as u128).max(1);
                iters = (budget.as_nanos() / per_iter).clamp(1, 1 << 20) as u64;
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_count {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push((iters, start.elapsed()));
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<44} (no samples)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|(iters, d)| d.as_nanos() as f64 / *iters as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let best = per_iter[0];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{label:<44} median {median:>12.1} ns/iter   (best {best:.1}, mean {mean:.1}, \
             {} samples)",
            per_iter.len()
        );
    }
}

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    fn sample_count() -> usize {
        env_u64("AN2_BENCH_SAMPLES", 10) as usize
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name.to_string(), Self::sample_count(), f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_count: Self::sample_count(),
        }
    }
}

fn run_one(label: String, sample_count: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher::new(sample_count);
    f(&mut bencher);
    bencher.report(&label);
}

/// A group of benchmarks sharing a name prefix and sampling config.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_count: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(&mut self, name: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(format!("{}/{}", self.name, name), self.sample_count, f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            format!("{}/{}", self.name, id.label),
            self.sample_count,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        std::env::set_var("AN2_BENCH_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
