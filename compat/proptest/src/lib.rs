//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API this workspace uses — the
//! [`proptest!`] macro, [`Strategy`](strategy::Strategy) with `prop_map`,
//! integer-range and tuple strategies, [`any`], `collection::vec`, and the
//! `prop_assert*` / `prop_assume` macros — on top of a small deterministic
//! generator. Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the panicking assertion and
//!   its case index; inputs are reproducible because every case's seed is
//!   derived from the test's module path, name, and index.
//! * **Assertions panic** instead of returning `Err`, which produces the
//!   same test outcome under `cargo test`.
//!
//! Swap the `[workspace.dependencies]` path entry for the registry crate to
//! restore shrinking; test sources need no changes.

#![forbid(unsafe_code)]

pub mod rng {
    //! Deterministic per-case random number generation.

    /// FNV-1a hash of a string, used to derive a per-test base seed.
    pub const fn fnv1a(s: &str) -> u64 {
        let bytes = s.as_bytes();
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut i = 0;
        while i < bytes.len() {
            hash ^= bytes[i] as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            i += 1;
        }
        hash
    }

    /// A splitmix64 generator: small, fast, and well-mixed from any seed.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for one test case, keyed by test identity and
        /// case index so every case draws an independent stream.
        pub fn for_case(base: u64, case: u64) -> Self {
            TestRng {
                state: base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)` (Lemire's method, no modulo bias).
        ///
        /// # Panics
        ///
        /// Panics if `bound == 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below: bound must be positive");
            let mut x = self.next_u64();
            let mut m = (x as u128) * (bound as u128);
            let mut lo = m as u64;
            if lo < bound {
                let threshold = bound.wrapping_neg() % bound;
                while lo < threshold {
                    x = self.next_u64();
                    m = (x as u128) * (bound as u128);
                    lo = m as u64;
                }
            }
            (m >> 64) as u64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::rng::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// Generates values of one type from random bits.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Uniform in [0, 1): plenty for property inputs.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// The strategy returned by [`any`](crate::any).
    #[derive(Debug, Clone)]
    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// A strategy producing unconstrained values of `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::ops::Range;

    /// Length specification for [`vec()`]: an exact length or a half-open
    /// range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `elem`, with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Configuration for property-test execution.

    /// How many cases each property runs (subset of proptest's config).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares deterministic randomized property tests (see crate docs for the
/// differences from real proptest).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let base = $crate::rng::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for prop_case in 0..config.cases {
                    let mut prop_rng = $crate::rng::TestRng::for_case(base, prop_case as u64);
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut prop_rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_respect_range(
            v in crate::collection::vec(0u8..10, 2..6),
            exact in crate::collection::vec(any::<bool>(), 4),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(exact.len(), 4);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn map_and_tuples(pair in (0u8..4, any::<bool>()), n in (0u64..8).prop_map(|x| x * 2)) {
            prop_assert!(pair.0 < 4);
            prop_assert!(n % 2 == 0 && n < 16);
            prop_assume!(pair.1);
            prop_assert!(pair.1);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::rng::TestRng::for_case(crate::rng::fnv1a("x"), 7);
        let mut b = crate::rng::TestRng::for_case(crate::rng::fnv1a("x"), 7);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
