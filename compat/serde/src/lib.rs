//! Offline stand-in for the `serde` facade.
//!
//! The build environment has no registry access, so the real `serde` cannot
//! be resolved. This repo only *annotates* types with the serde derives (no
//! serializer is wired up anywhere), so an inert facade suffices: the
//! derive macros expand to nothing and the marker traits exist so that
//! `use serde::{Serialize, Deserialize}` keeps compiling. Replace the path
//! entry in `[workspace.dependencies]` with the registry crate to restore
//! real serialization support.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`. The inert derive does not
/// implement it; nothing in this workspace bounds on it.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
