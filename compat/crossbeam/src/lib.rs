//! Offline stand-in for `crossbeam`.
//!
//! The experiment harness only needs `crossbeam::thread::scope` — scoped
//! threads that may borrow from the caller's stack. Since Rust 1.63 the
//! standard library provides the same guarantee via `std::thread::scope`,
//! so this shim wraps it behind crossbeam's API shape (closures receive the
//! scope handle, `scope` returns a `Result`). Panics in spawned threads are
//! propagated by `std::thread::scope` when the scope exits rather than
//! surfaced through the returned `Result`; either way the process fails
//! loudly, which is what the harness wants.

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads (subset of `crossbeam::thread`).

    use std::any::Any;

    /// A scope in which borrowed-data threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread that may borrow from the enclosing scope. The
        /// closure receives the scope handle so it can spawn further
        /// threads, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning threads that borrow from the caller.
    /// All spawned threads are joined before `scope` returns.
    #[allow(clippy::unnecessary_wraps)] // Result shape mirrors crossbeam's API
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicU64::new(0);
        let counter_ref = &counter;
        let out = super::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    s.spawn(move |_| {
                        counter_ref.fetch_add(i, Ordering::Relaxed);
                        i * 2
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(out, 12);
        assert_eq!(counter.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn nested_spawn_through_scope_handle() {
        let out = super::thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
