//! Offline stand-in for the `rand` crate.
//!
//! `an2-sim`'s [`SimRng`](../an2_sim/struct.SimRng.html) implements
//! `rand::RngCore` so that it can drive `rand` distributions when the real
//! crate is present. With no registry access, this shim supplies the exact
//! trait surface (rand 0.8 vintage) so the impl keeps compiling; the
//! workspace's own generators never call through it.

#![forbid(unsafe_code)]

use std::fmt;

/// Error type for fallible RNG operations (never produced in this workspace).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator trait (subset of `rand 0.8`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}
