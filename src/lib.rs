//! Workspace root package for the AN2 reproduction.
//!
//! The library lives in `crates/an2`; this package hosts the cross-crate
//! integration tests (`tests/`) and the runnable examples (`examples/`).
