//! The paper's favourite demo (§1): "pulling the plug on an arbitrary
//! switch in SRC's main LAN. The network reconfigures in less than 200
//! milliseconds, and users see no service interruption."
//!
//! This example runs the demo twice:
//!
//! 1. On the control plane, with the distributed reconfiguration protocol
//!    of §2 (epoch tags, three phases) running in virtual time — printing
//!    how long topology re-acquisition takes.
//! 2. On the data plane, with live traffic across the failed switch being
//!    rerouted and delivery resuming.
//!
//! Run with: `cargo run --example failover`

use an2::Network;
use an2_cells::Packet;
use an2_reconfig::harness::ReconfigNet;
use an2_topology::{generators, SwitchId};

fn main() -> Result<(), an2::NetError> {
    // --- Part 1: reconfiguration timing --------------------------------
    let topo = generators::src_installation(12, 0);
    let mut recon = ReconfigNet::with_defaults(topo, 99);
    recon.run_to_quiescence();
    assert!(recon.converged());
    println!(
        "boot: {} switches converged at t = {} using {} messages",
        recon.topology().switch_count(),
        recon.now(),
        recon.total_messages(),
    );

    let victim = SwitchId(5);
    let t0 = recon.now();
    recon.kill_switch(victim);
    recon.run_to_quiescence();
    let survivor = SwitchId(0);
    assert!(recon.partition_converged(survivor));
    let elapsed = recon
        .last_completion(survivor)
        .expect("survivors completed")
        .duration_since(t0);
    println!(
        "plug pulled on {victim}: survivors reconverged in {elapsed} \
         (paper: < 200ms) — under the bound: {}",
        elapsed < an2_sim::SimDuration::from_millis(200),
    );

    // --- Part 2: live traffic across the failure -----------------------
    let mut net = Network::builder().src_installation(8, 8).seed(3).build();
    let hosts: Vec<_> = net.hosts().collect();
    let vc = net.open_best_effort(hosts[0], hosts[4])?;
    let path = net.circuit_path(vc).unwrap().to_vec();
    println!("\ncircuit {vc:?} runs via {path:?}");

    // Stream packets; pull the plug on the first switch mid-stream.
    for k in 0..5u8 {
        net.send_packet(vc, Packet::from_bytes(vec![k; 2000]))?;
    }
    net.step(2_000);
    let first_switch = path[0];
    println!("pulling the plug on {first_switch} with traffic in flight...");
    net.fail_switch(first_switch);
    assert!(!net.is_broken(vc), "dual-homed host must fail over");
    println!("rerouted via {:?}", net.circuit_path(vc).unwrap());

    for k in 5..10u8 {
        net.send_packet(vc, Packet::from_bytes(vec![k; 2000]))?;
    }
    net.step(60_000);
    let got = net.take_received(hosts[4]);
    let stats = net.stats(vc);
    println!(
        "delivered {} packets ({} cells; {} cells dropped in the failure, \
         {} packet(s) lost to the drop and left for retransmission)",
        got.len(),
        stats.delivered_cells,
        stats.dropped_cells,
        stats.packets_corrupted,
    );
    assert!(
        got.len() >= 8,
        "nearly all packets must survive the failover"
    );
    Ok(())
}
