//! A multimedia scenario (§1, §4): several video/audio streams reserve
//! guaranteed bandwidth while file transfers hammer the same links with
//! best-effort traffic. The demo shows that the streams' latency and jitter
//! stay inside the paper's p·(2f+l) bound regardless of the flood.
//!
//! Run with: `cargo run --example video_conference --release`

use an2::Network;
use an2_workload::{CbrStream, FileTransfer};

fn main() -> Result<(), an2::NetError> {
    let frame: u32 = 256;
    let mut net = Network::builder()
        .src_installation(8, 12)
        .frame_slots(frame)
        .link_latency_slots(2)
        .seed(7)
        .build();
    let hosts: Vec<_> = net.hosts().collect();

    // Three conference streams: ~1.5 Mb/s video each at 622 Mb/s links is
    // tiny; reserve 32 cells/frame (12.5%) to also cover audio + headroom.
    let mut streams = Vec::new();
    for k in 0..3 {
        let vc = net.open_guaranteed(hosts[k], hosts[k + 6], 32)?;
        // One 480-byte packet (11 cells) every 128 slots ≈ 28% of the
        // reservation.
        streams.push(CbrStream::new(vc, 480, 128));
    }

    // Competing bulk transfers between other hosts, sharing the backbone.
    let mut transfers = Vec::new();
    for k in 3..6 {
        let vc = net.open_best_effort(hosts[k], hosts[k + 6])?;
        transfers.push(FileTransfer::new(vc, 9600, 200, 8));
    }

    // Run one simulated second at 622 Mb/s (~1.47M slots is a lot; run
    // 200k slots ≈ 136 ms of traffic).
    let total_slots = 200_000u64;
    let tick = 128u64;
    for _ in 0..(total_slots / tick) {
        for s in &mut streams {
            s.tick(&mut net)?;
        }
        for t in &mut transfers {
            t.tick(&mut net)?;
        }
        net.step(tick);
    }
    net.step(10_000); // drain

    println!("after {total_slots} slots ({} of traffic):", net.now());
    for (k, s) in streams.iter().enumerate() {
        let stats = net.stats(s.vc());
        let p = net.circuit_path(s.vc()).unwrap().len() as u64;
        let bound = p * (2 * frame as u64 + 2);
        let max = stats.latency_slots.max().unwrap_or(0);
        let mean = stats.latency_slots.mean().unwrap_or(0.0);
        println!(
            "stream {k}: {} packets, cell latency mean {:.1} / max {} slots \
             (paper bound p(2f+l) = {bound}), jitter ok: {}",
            stats.packets_delivered,
            mean,
            max,
            max <= bound,
        );
        assert!(max <= bound + 24, "guaranteed latency bound violated");
        assert!(stats.packets_corrupted == 0);
    }
    for (k, t) in transfers.iter().enumerate() {
        let done = t.remaining() == 0;
        println!(
            "transfer {k}: {}",
            if done { "complete" } else { "still running" }
        );
    }
    Ok(())
}
