//! The paper's "later versions" features in action (§2, §5): idle virtual
//! circuits are paged out to reclaim switch resources and paged back in
//! transparently when traffic returns, and a link's buffer pool is
//! reallocated dynamically toward the circuits that actually use it.
//!
//! Run with: `cargo run --release --example resource_reclamation`

use an2::{Network, Packet};
use an2_flow::sharing::{AllocationPolicy, SharedLinkConfig, SharedLinkSim};
use an2_sim::SimRng;

fn main() -> Result<(), an2::NetError> {
    // --- Part 1: page-out / page-in -------------------------------------
    let mut net = Network::builder().src_installation(8, 16).seed(5).build();
    let hosts: Vec<_> = net.hosts().collect();
    let circuits: Vec<_> = (0..8)
        .map(|k| net.open_best_effort(hosts[k], hosts[15 - k]))
        .collect::<Result<_, _>>()?;
    for &vc in &circuits {
        net.send_packet(vc, Packet::from_bytes(vec![1; 1000]))?;
    }
    net.step(20_000);
    println!(
        "8 circuits opened and used once; all idle for {} slots now",
        15_000
    );
    let paged = net.page_out_idle(5_000);
    println!(
        "page_out_idle(5000) reclaimed {} circuits' routing entries and buffers",
        paged.len()
    );
    // A burst of new traffic pages them back in without any API ceremony.
    for &vc in &circuits {
        net.send_packet(vc, Packet::from_bytes(vec![2; 1000]))?;
    }
    net.step(20_000);
    let ok = circuits.iter().all(|&vc| {
        let s = net.stats(vc);
        s.packets_delivered == 2 && s.pages_out == 1 && s.pages_in == 1
    });
    println!("all circuits paged back in and delivered: {ok}\n");
    assert!(ok);

    // --- Part 2: dynamic buffer allocation ------------------------------
    // One link, 32 circuits, only 64 buffers (2 each statically — far below
    // the 16-slot round trip). Three circuits are hot.
    let demand: Vec<f64> = (0..32).map(|k| if k < 3 { 0.33 } else { 0.001 }).collect();
    for (name, policy) in [
        ("static equal shares", AllocationPolicy::Static),
        (
            "dynamic (EWMA)",
            AllocationPolicy::Dynamic {
                adapt_interval: 500,
                alpha: 0.3,
            },
        ),
    ] {
        let mut sim = SharedLinkSim::new(SharedLinkConfig {
            vcs: 32,
            total_buffers: 64,
            latency_slots: 8,
            demand: demand.clone(),
            policy,
        });
        let r = sim.run(60_000, &mut SimRng::new(9));
        println!(
            "{name:<22} link utilization {:.3} ({} reallocations)",
            r.utilization, r.reallocations
        );
    }
    println!(
        "\nsame memory, same demand: dynamic allocation lets the hot circuits\n\
         cover their round trip, which is how AN2 could 'support more virtual\n\
         circuits without adversely affecting performance' (§5)."
    );
    Ok(())
}
