//! A tour of §3: compare crossbar scheduling disciplines on a 16×16 switch
//! and reproduce the numbers the paper quotes — FIFO's 58% head-of-line
//! ceiling, PIM's convergence in ~log₂N iterations, and PIM ≈ output
//! queueing with k = 16.
//!
//! Run with: `cargo run --example switch_scheduler_lab --release`

use an2_sim::SimRng;
use an2_xbar::simulate::{simulate, ArrivalGen, Arrivals, Discipline};
use an2_xbar::{DemandMatrix, GreedyMaximal, Islip, Pim};

const N: usize = 16;
const SLOTS: u64 = 30_000;

fn measure(mut d: Discipline, load: f64, seed: u64) -> (f64, f64) {
    let mut gen = ArrivalGen::new(N, Arrivals::Uniform { load });
    let mut rng = SimRng::new(seed);
    let r = simulate(N, &mut d, &mut gen, SLOTS, &mut rng);
    (r.throughput(), r.mean_delay().unwrap_or(f64::NAN))
}

fn main() {
    println!("16x16 switch, uniform Bernoulli arrivals, {SLOTS} slots\n");
    println!(
        "{:<28} {:>8} {:>12}",
        "discipline @ load 0.95", "thruput", "mean delay"
    );
    let cases: Vec<(&str, Discipline)> = vec![
        ("FIFO input queues", Discipline::Fifo),
        ("VOQ + PIM (3 iter)", Discipline::Voq(Box::new(Pim::an2()))),
        ("VOQ + PIM (1 iter)", Discipline::Voq(Box::new(Pim::new(1)))),
        (
            "VOQ + iSLIP (3 iter)",
            Discipline::Voq(Box::new(Islip::new(N, 3))),
        ),
        (
            "VOQ + greedy maximal",
            Discipline::Voq(Box::new(GreedyMaximal::new())),
        ),
        (
            "output queueing k=4",
            Discipline::OutputQueued { speedup: 4 },
        ),
        (
            "output queueing k=16",
            Discipline::OutputQueued { speedup: 16 },
        ),
    ];
    for (name, d) in cases {
        let (tp, delay) = measure(d, 0.95, 11);
        println!("{name:<28} {tp:>8.3} {delay:>12.2}");
    }

    // FIFO saturation: the Karol et al. 58% ceiling (§3).
    let (tp, _) = measure(Discipline::Fifo, 1.0, 12);
    println!(
        "\nFIFO at saturation: {tp:.3} (theory: 2 - sqrt(2) = {:.3})",
        2.0 - 2f64.sqrt()
    );

    // PIM convergence (§3): expected iterations <= log2(N) + 4/3.
    let mut rng = SimRng::new(13);
    let trials = 10_000;
    let mut total_iters = 0usize;
    let mut within4 = 0usize;
    for _ in 0..trials {
        let mut demand = DemandMatrix::new(N);
        for i in 0..N {
            for o in 0..N {
                if rng.gen_bool(0.75) {
                    demand.add(i, o, 1);
                }
            }
        }
        let out = Pim::run_to_maximal(&demand, &mut rng);
        total_iters += out.productive_iterations;
        if out.productive_iterations <= 4 {
            within4 += 1;
        }
    }
    let mean = total_iters as f64 / trials as f64;
    let bound = (N as f64).log2() + 4.0 / 3.0;
    println!(
        "\nPIM iterations to maximal: mean {mean:.2} (paper bound {bound:.2}); \
         within 4 iterations {:.1}% (paper: >98%)",
        100.0 * within4 as f64 / trials as f64
    );
    assert!(mean <= bound);
}
