//! Quickstart: build a small AN2 installation, open a best-effort and a
//! guaranteed circuit, move some packets, and print what happened.
//!
//! Run with: `cargo run --example quickstart`

use an2::{Network, Packet};

fn main() -> Result<(), an2::NetError> {
    // A Figure 1–style installation: 6 switches in a redundant backbone,
    // 8 dual-homed workstations.
    let mut net = Network::builder()
        .src_installation(6, 8)
        .frame_slots(256)
        .seed(42)
        .build();
    let hosts: Vec<_> = net.hosts().collect();

    println!(
        "network: {} switches, {} hosts, {} links; slot = {}",
        net.topology().switch_count(),
        net.topology().host_count(),
        net.topology().link_count(),
        net.slot_duration(),
    );

    // A best-effort circuit (file transfer / RPC class, §1).
    let be = net.open_best_effort(hosts[0], hosts[5])?;
    println!(
        "best-effort circuit {be:?} via {:?}",
        net.circuit_path(be).unwrap()
    );

    // A guaranteed circuit with 64 cells per 256-slot frame (a 25% stream).
    let gt = net.open_guaranteed(hosts[1], hosts[6], 64)?;
    println!(
        "guaranteed circuit {gt:?} via {:?} (64 cells/frame reserved)",
        net.circuit_path(gt).unwrap()
    );

    // Send ten 1500-byte packets on each.
    for k in 0..10u8 {
        net.send_packet(be, Packet::from_bytes(vec![k; 1500]))?;
        net.send_packet(gt, Packet::from_bytes(vec![k; 1500]))?;
    }
    net.step(50_000);

    for (name, vc, dst) in [("best-effort", be, hosts[5]), ("guaranteed", gt, hosts[6])] {
        let received = net.take_received(dst);
        let stats = net.stats(vc);
        let mean = stats.latency_slots.mean().unwrap_or(0.0);
        println!(
            "{name}: {} packets received, {} cells, mean cell latency {:.1} slots \
             ({:.1} us at 622 Mb/s)",
            received.len(),
            stats.delivered_cells,
            mean,
            mean * net.slot_duration().as_nanos() as f64 / 1_000.0,
        );
        assert_eq!(received.len(), 10, "all packets must arrive");
    }
    Ok(())
}
